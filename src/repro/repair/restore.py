"""ARIES-style single-page restore: backup image + archived redo by LSN.

A page is rebuilt entirely outside the buffer pool: start from the newest
backup image (or from nothing — every page's birth is logged as a full
after-image by the B-tree's redo-only SMO records, so a page allocated
after the last backup is reconstructible from the archive alone), then
replay the archived records that touch the page, each guarded by the page
LSN exactly like recovery's redo pass.  The engine keeps serving other
pages throughout.

Timestamps: stamping is never logged, so replay recreates versions
TID-marked and the restore finishes with a stamping pass.  It deliberately
does **not** go through :meth:`TimestampManager.stamp_version` — that path
decrements the VTT reference count, and the versions being re-created here
were already counted once when the lost image was stamped live; a second
decrement would underflow.  Restore resolves and stamps directly, with the
same group-commit durability guard (never stamp a version whose commit
record is not yet durable).

The mappings needed here are guaranteed to still exist because PTT garbage
collection is gated on the backup horizon (see ``MediaRecoveryManager``):
any mapping old enough to have been collected belongs to versions that were
already stamped *inside* the backup image, which replay never revisits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.clock import Timestamp
from repro.errors import MediaRecoveryError, UnknownTransactionError
from repro.faults.failpoints import fire
from repro.storage.page import DataPage, Page, decode_page
from repro.storage.record import RecordVersion
from repro.wal.records import (
    CompensationRecord,
    InPlaceUpdate,
    LogRecord,
    MultiPageImage,
    StampOp,
    VersionOp,
    VersionOpKind,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.repair.manager import MediaRecoveryManager
    from repro.timestamp.manager import TimestampManager


@dataclass
class RestoreOutcome:
    """What one single-page restore did."""

    page_id: int
    page: Page | None        # None for an "unborn" (never-written) page
    source: str              # "backup", "log-only", or "unborn"
    base_lsn: int            # LSN of the starting image (0 for log-only)
    final_lsn: int
    records_replayed: int
    versions_stamped: int


def restore_page(manager: "MediaRecoveryManager", page_id: int) -> RestoreOutcome:
    """Rebuild ``page_id`` from backup + archive and write it back to disk.

    Returns the restored page object (decoded, current, clean — the caller
    may admit it to the buffer pool).  Raises :exc:`MediaRecoveryError`
    when the archive has no coverage for the page.
    """
    fire("repair.restore")
    archive = manager.archive
    page: Page | None = None
    base_lsn = 0
    source = "log-only"
    base_raw = manager.backup.image(page_id)
    if base_raw is not None and any(base_raw):
        page = decode_page(base_raw)
        base_lsn = page.lsn
        source = "backup"

    replayed = 0
    for record in archive.records_for(page_id, after_lsn=base_lsn):
        page, applied = _apply(page, page_id, record)
        replayed += applied

    if page is None:
        if replayed == 0:
            # No image and no records: the page was allocated but never
            # written (e.g. a backed-out time split abandons its history
            # pid) — its correct content *is* zeros.  Real pages always
            # leave a trace: every birth is logged as a full image, the
            # meta page is mirrored, and trimming only drops records the
            # backup already covers.
            fire("repair.restore.write")
            zeros = bytes(len(base_raw) if base_raw is not None
                          else manager.engine.disk.page_size)
            # The raw seam: write_page would stamp a checksum into the
            # image, and an unborn page's on-disk state is exactly zeros.
            manager.engine.disk._write(page_id, zeros)
            return RestoreOutcome(
                page_id=page_id, page=None, source="unborn",
                base_lsn=0, final_lsn=0, records_replayed=0,
                versions_stamped=0,
            )
        raise MediaRecoveryError(
            f"page {page_id}: no backup image and the archive holds no "
            f"records for it",
            page_id=page_id,
        )
    if page.page_id != page_id:
        raise MediaRecoveryError(
            f"restore of page {page_id} produced an image claiming to be "
            f"page {page.page_id}",
            page_id=page_id,
        )

    stamped = 0
    if isinstance(page, DataPage) and page.has_unstamped_records():
        stamped = _stamp_restored(manager.engine.tsmgr, page)
        if stamped:
            page.touch()

    fire("repair.restore.write")
    manager.engine.disk.write_page(page_id, page.to_bytes())
    return RestoreOutcome(
        page_id=page_id,
        page=page,
        source=source,
        base_lsn=base_lsn,
        final_lsn=page.lsn,
        records_replayed=replayed,
        versions_stamped=stamped,
    )


def _apply(
    page: Page | None, page_id: int, record: LogRecord
) -> tuple[Page | None, int]:
    """Apply one archived record to the page under reconstruction.

    Mirrors recovery's redo handlers, but operates on a detached page
    object instead of going through the buffer pool.
    """
    lsn = record.lsn
    if isinstance(record, (MultiPageImage, CompensationRecord)):
        for image_pid, image in record.images:
            if image_pid != page_id:
                continue
            if page is not None and page.lsn >= lsn:
                return page, 0
            page = decode_page(image)
            page.lsn = max(page.lsn, lsn)
            return page, 1
        return page, 0

    if page is None:
        # A non-image record cannot be the page's first archived action:
        # its birth image must have been trimmed past — coverage gap.
        raise MediaRecoveryError(
            f"page {page_id}: archive coverage gap — record at LSN {lsn} "
            f"predates any full image",
            page_id=page_id,
        )
    if page.lsn >= lsn:
        return page, 0
    if not isinstance(page, DataPage):
        raise MediaRecoveryError(
            f"page {page_id}: versioned record at LSN {lsn} targets a "
            f"non-data page",
            page_id=page_id,
        )

    if isinstance(record, VersionOp):
        page.insert_version(RecordVersion.new(
            record.key, record.payload, record.tid,
            delete_stub=record.kind == VersionOpKind.DELETE,
        ))
    elif isinstance(record, InPlaceUpdate):
        page.replace_payload_in_place(record.key, record.after)
    elif isinstance(record, StampOp):
        for version in page.chain(record.key):
            if not version.is_timestamped and version.tid == record.tid:
                version.stamp(Timestamp(record.ttime, record.sn))
                break
    page.lsn = lsn
    return page, 1


def _stamp_restored(tsmgr: "TimestampManager", page: DataPage) -> int:
    """Stamp committed-and-durable versions without touching VTT refcounts."""
    stamped = 0
    for version in page.unstamped_versions():
        try:
            ts, committed = tsmgr.resolve_with_fallback(
                version.tid, immortal=page.immortal
            )
        except UnknownTransactionError:
            # Defensive: the GC gate makes this unreachable for any page
            # the archive covers; leave the version for a later pass.
            continue
        if not committed:
            continue
        entry = tsmgr.vtt.get(version.tid)
        if entry is not None and entry.commit_lsn is not None \
                and entry.commit_lsn >= tsmgr.log.flushed_lsn:
            continue
        assert ts is not None
        version.stamp(ts)
        stamped += 1
    return stamped
