"""Media recovery and self-healing (log archiving, restore, scrub, quarantine).

PR 1 gave the engine *detection*: page checksums turn torn writes and
bit-rot into typed :class:`~repro.errors.ChecksumError`\\ s.  This package
adds *survival* — the missing half of media robustness:

* :class:`~repro.repair.archive.LogArchive` — a continuous archive of every
  durable log record, indexed by the pages each record touches;
* :class:`~repro.repair.archive.PageBackup` — a fuzzy online page backup,
  refreshed at flush checkpoints without stopping the engine;
* :func:`~repro.repair.restore.restore_page` — ARIES-style single-page
  restore: backup image + redo of archived records by page LSN;
* :class:`~repro.repair.scrub.Scrubber` — an incremental background pass
  over the disk that emits structured findings instead of raising;
* :class:`~repro.repair.quarantine.QuarantineManager` — graceful
  degradation when a page cannot (yet) be repaired: as-of reads are served
  from intact history pages, current reads return a typed
  :class:`~repro.repair.quarantine.Degraded` result;
* :class:`~repro.repair.manager.MediaRecoveryManager` — the wiring:
  log-force tap, buffer-pool fault handler, checkpoint-time backup refresh.

Everything here is off by default (``media_recovery=False`` on the engine),
so the figure benchmarks and the crash-point enumeration are unchanged.
"""

from repro.repair.archive import LogArchive, PageBackup
from repro.repair.manager import MediaRecoveryManager, RepairStats
from repro.repair.quarantine import Degraded, QuarantineEntry, QuarantineManager
from repro.repair.restore import RestoreOutcome, restore_page
from repro.repair.scrub import Scrubber, ScrubStats

__all__ = [
    "Degraded",
    "LogArchive",
    "MediaRecoveryManager",
    "PageBackup",
    "QuarantineEntry",
    "QuarantineManager",
    "RepairStats",
    "RestoreOutcome",
    "Scrubber",
    "ScrubStats",
    "restore_page",
]
