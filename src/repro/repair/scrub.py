"""The online scrubber: budgeted background verification of the disk.

Detection-by-crash (PR 1's checksums) only finds damage when a query
happens to read the page; latent corruption on cold pages survives until
the worst possible moment.  The scrubber closes that window: each
:meth:`Scrubber.step` verifies a bounded batch of pages straight from disk
— checksum, decode, structural self-check, and a dropped-write staleness
probe against the log archive — and emits structured
:class:`~repro.core.integrity.Finding`\\ s instead of raising.  When the
engine has a media-recovery manager attached, findings are dispatched to it
for immediate single-page repair.

The staleness probe is the only defense that catches *silently dropped*
writes (the fault model's ``dropped_write`` leaves the old, checksum-valid
image in place).  It is false-positive-free: a page that is not dirty in
the buffer pool has had its last write-back complete, so every archived
record for it must already be reflected in the disk image's LSN — a disk
LSN below the archive's newest LSN for that page proves a write was lost.
Dirty pages are skipped (their disk image is legitimately stale).

Scrub work is priced in the cost model (``scrub_page_ms`` — 0.0 by
default, so figure results are unchanged) and counted in the engine stats.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from dataclasses import dataclass

from repro.core.integrity import Finding, integrity_report
from repro.errors import ChecksumError, StorageError, TransientIOError
from repro.faults.failpoints import fire
from repro.storage.page import DataPage, decode_page

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import ImmortalDB

#: finding kinds the media-recovery manager can repair with a page restore
REPAIRABLE_KINDS = ("checksum", "decode", "layout", "stale")


@dataclass
class ScrubStats:
    steps: int = 0
    passes: int = 0
    pages_scanned: int = 0
    pages_skipped_dirty: int = 0
    findings: int = 0
    repairs_dispatched: int = 0


class Scrubber:
    """Incremental disk verifier with a page budget per step."""

    def __init__(self, engine: "ImmortalDB", *, pages_per_step: int = 8) -> None:
        self.engine = engine
        self.pages_per_step = pages_per_step
        self.cursor = 0
        self.stats = ScrubStats()
        engine.scrubber = self   # engine.stats() picks the counters up

    def step(self, budget: int | None = None) -> list[Finding]:
        """Scrub the next ``budget`` pages (wrapping); returns findings.

        Repairable findings are handed to the engine's media-recovery
        manager (if attached) before returning.
        """
        fire("repair.scrub")
        page_count = self.engine.disk.page_count
        budget = min(budget or self.pages_per_step, page_count)
        findings: list[Finding] = []
        for _ in range(budget):
            pid = self.cursor % page_count
            self.cursor = (self.cursor + 1) % page_count
            findings.extend(self._scrub_page(pid))
        self.stats.steps += 1
        self.stats.findings += len(findings)
        self._dispatch(findings)
        return findings

    def full_pass(self, *, deep: bool = False) -> list[Finding]:
        """Scrub every page once.  ``deep=True`` additionally runs the full
        in-memory integrity walk and appends its findings (not dispatched —
        cross-structure problems are not fixable by a page restore)."""
        self.cursor = 0
        page_count = self.engine.disk.page_count
        findings: list[Finding] = []
        scanned = 0
        while scanned < page_count:
            batch = min(self.pages_per_step, page_count - scanned)
            findings.extend(self.step(batch))
            scanned += batch
        if deep:
            findings.extend(integrity_report(self.engine).findings)
        self.stats.passes += 1
        return findings

    # ------------------------------------------------------------------

    def _scrub_page(self, pid: int) -> list[Finding]:
        engine = self.engine
        if engine.buffer.is_dirty(pid):
            # The disk image is legitimately behind the cached page; the
            # next flush rewrites it wholesale.
            self.stats.pages_skipped_dirty += 1
            return []
        free_list = getattr(engine.disk, "free_list", None)
        if free_list is not None and pid in free_list:
            # Archive migration zero-filled this page when it freed it; the
            # staleness probe below would otherwise flag it as a lost
            # sector (the log archive still holds its pre-migration
            # records).
            return []
        self.stats.pages_scanned += 1
        try:
            raw = engine.disk.read_page(pid)
        except ChecksumError as exc:
            return [Finding("checksum", f"page {pid}: {exc}", page_id=pid)]
        except TransientIOError as exc:
            # Transient by definition: not repairable, retried next pass.
            return [Finding("io", f"page {pid}: {exc}", page_id=pid)]
        except StorageError as exc:
            return [Finding("decode", f"page {pid}: {exc}", page_id=pid)]
        if not any(raw):
            # All zeros: either a page allocated and never written (a
            # backed-out time split abandons its freshly allocated history
            # pid) — benign — or a lost sector that zeroed a real page.
            # The page demonstrably had content iff the archive holds
            # records for it or the backup holds a non-zero image.
            repair = getattr(engine, "repair", None)
            if repair is not None:
                backup_raw = repair.backup.image(pid)
                if repair.archive.max_lsn_for(pid) > 0 or (
                    backup_raw is not None and any(backup_raw)
                ):
                    return [Finding(
                        "stale",
                        f"page {pid} image is all zeros but the page has "
                        f"archived history (lost sector)",
                        page_id=pid,
                    )]
            return []
        try:
            page = decode_page(raw)
        except StorageError as exc:
            return [Finding(
                "decode", f"page {pid} fails to decode: {exc}", page_id=pid
            )]
        findings: list[Finding] = []
        if page.page_id != pid:
            findings.append(Finding(
                "decode",
                f"page {pid} image claims to be page {page.page_id}",
                page_id=pid,
            ))
        elif isinstance(page, DataPage):
            for problem in page.self_check():
                findings.append(Finding(
                    "layout", f"page {pid}: {problem}", page_id=pid
                ))
        repair = getattr(engine, "repair", None)
        if repair is not None and not findings and pid == 0:
            # The meta page's writes are unlogged and its LSN stays 0, so
            # the LSN probes below are blind to it — and a lost sector
            # (all-zero image, checksum field 0) even skips checksum
            # verification and decodes as a valid empty meta page.  But the
            # backup mirrors the meta image on every save, so any
            # divergence from the mirror proves corruption.
            mirror = repair.backup.image(0)
            if mirror is not None and raw != mirror:
                findings.append(Finding(
                    "stale",
                    "page 0 diverges from its backup mirror "
                    "(meta writes are unlogged)",
                    page_id=0,
                ))
        if repair is not None and not findings:
            # The backup image's LSN also bounds staleness: it was captured
            # from this very disk, so the disk can never legitimately hold
            # an older image than the backup (matters once the archive has
            # been trimmed of records the backup already covers).
            expected = max(
                repair.archive.max_lsn_for(pid),
                repair.backup.image_lsn(pid),
            )
            if expected > page.lsn:
                findings.append(Finding(
                    "stale",
                    f"page {pid} image stops at LSN {page.lsn} but the "
                    f"archive holds its records up to LSN {expected} "
                    f"(dropped write)",
                    page_id=pid,
                ))
        return findings

    def _dispatch(self, findings: list[Finding]) -> None:
        repair = getattr(self.engine, "repair", None)
        if repair is None:
            return
        repaired: set[int] = set()
        for finding in findings:
            if finding.kind not in REPAIRABLE_KINDS:
                continue
            if finding.page_id in repaired:
                continue
            if repair.repair_page(finding.page_id):
                repaired.add(finding.page_id)
                self.stats.repairs_dispatched += 1
