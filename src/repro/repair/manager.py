"""MediaRecoveryManager: the wiring between engine and repair machinery.

Attachment points (all passive until a fault actually happens):

* ``log.post_force_hooks`` — the archive copies newly durable records after
  every physical force;
* ``checkpoints.post_checkpoint_hooks`` — flush checkpoints refresh the
  fuzzy page backup (every disk image is current right after one) and trim
  the archive of records the backup now covers;
* ``buffer.fault_handler`` — a page that fails verification on a buffer
  miss is restored in place (the caller gets the repaired page and never
  sees the fault) or, when that is impossible, quarantined behind a typed
  :exc:`~repro.errors.PageQuarantinedError`;
* ``engine._save_meta`` — the meta page's writes are unlogged, so the
  backup mirrors it on every save instead of relying on the archive.

GC interlock: restoring a page finishes with a stamping pass, which needs
the TID → timestamp mappings for every version replayed from the archive.
The engine therefore gates PTT garbage collection on
:attr:`backup_gc_horizon` — the redo scan start point as of the last backup
refresh.  A mapping is only collectable once the pages it stamped were
flushed *and* captured into the backup, at which point replay never
recreates those versions TID-marked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.clock import Timestamp
from repro.errors import (
    BufferPoolError,
    MediaRecoveryError,
    PageQuarantinedError,
    StorageError,
)
from repro.repair.archive import LogArchive, PageBackup
from repro.repair.quarantine import QuarantineManager
from repro.repair.restore import restore_page
from repro.timestamp.ptt import PTTNodePage
from repro.wal.records import CommitTxn, PTTDelete

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import ImmortalDB
    from repro.storage.page import Page


@dataclass
class RepairStats:
    page_faults: int = 0           # buffer misses that hit damaged pages
    pages_repaired: int = 0
    repair_records_replayed: int = 0
    repair_versions_stamped: int = 0
    repair_failures: int = 0
    pages_quarantined: int = 0
    degraded_reads: int = 0        # reads answered Degraded or via stale view
    backup_refreshes: int = 0


class MediaRecoveryManager:
    """Owns the archive, backup, quarantine, and the repair entry points."""

    def __init__(self, engine: "ImmortalDB", *, auto_repair: bool = True) -> None:
        self.engine = engine
        self.auto_repair = auto_repair
        self.archive = LogArchive()
        self.backup = PageBackup()
        self.quarantine = QuarantineManager()
        self.stats = RepairStats()
        #: redo scan start point at the last backup refresh — the PTT GC
        #: bound that keeps restore's stamping pass resolvable (0 = no
        #: refresh yet, nothing collectable).
        self.backup_gc_horizon = 0
        engine.log.post_force_hooks.append(self._on_force)
        engine.checkpoints.post_checkpoint_hooks.append(self._on_checkpoint)
        engine.buffer.fault_handler = self._page_fault
        # Seed coverage: whatever is already durable, plus current images.
        self.archive.capture(engine.log)
        self.backup.capture_all(engine.disk, engine.log.flushed_lsn)
        self.backup.captured_flushed_lsn = engine.log.flushed_lsn

    # -- hooks -------------------------------------------------------------

    def _on_force(self) -> None:
        self.archive.capture(self.engine.log)

    def _on_checkpoint(self, flush: bool) -> None:
        if flush:
            self.refresh_backup()

    def refresh_backup(self) -> None:
        """Capture a fresh fuzzy backup and trim the covered archive tail."""
        engine = self.engine
        self.archive.capture(engine.log)
        flushed = engine.log.flushed_lsn
        failed = self.backup.capture_all(engine.disk, flushed)
        for page_id in failed:
            # A page too damaged to even back up: repair it right now if
            # allowed — its older backup image plus the archive suffice.
            if self.auto_repair and self.repair_page(page_id):
                try:
                    self.backup.put(
                        page_id, engine.disk.read_page(page_id), flushed
                    )
                except StorageError:  # pragma: no cover - freshly rewritten
                    pass
        self.archive.trim_covered(
            self.backup.image_lsn, self.backup.ptt_floor()
        )
        self.backup.captured_flushed_lsn = flushed
        self.backup_gc_horizon = engine.checkpoints.redo_scan_start()
        self.stats.backup_refreshes += 1

    def mirror_meta(self) -> None:
        """Mirror the just-saved meta page (its writes are never logged)."""
        try:
            self.backup.put(
                0, self.engine.disk.read_page(0), self.engine.log.flushed_lsn
            )
        except StorageError:
            pass  # the scrubber / next fault will deal with it

    # -- repair entry points ----------------------------------------------

    def repair_page(self, page_id: int) -> bool:
        """Restore one page on disk; True on success.

        Used by the scrubber and the backup refresher.  The buffer pool is
        left alone: any cached clean frame already holds content at least
        as new as the restored image, and a dirty frame will overwrite the
        disk image on its next flush anyway.
        """
        try:
            outcome = restore_page(self, page_id)
        except (MediaRecoveryError, StorageError) as exc:
            self.stats.repair_failures += 1
            self.quarantine.quarantine(
                page_id, exc, stale_image=self.backup.image(page_id)
            )
            self.stats.pages_quarantined += 1
            return False
        self._account(outcome)
        self._finish_restore(page_id, outcome.page)
        buffer = self.engine.buffer
        if buffer.contains(page_id):
            # A cached frame is always at least as new as the restored
            # image; rewriting it through the normal flush path re-aligns
            # the disk with the cache (restore may have written an image
            # older than a clean frame's content for LSN-0 page types).
            buffer.mark_dirty(page_id)
            buffer.flush_page(page_id)
        return True

    def _page_fault(self, page_id: int, exc: Exception) -> "Page":
        """Buffer-pool fault handler: repair in place or quarantine.

        Returns the restored page (admitted by the buffer as a clean
        frame), or raises :exc:`PageQuarantinedError`.
        """
        self.stats.page_faults += 1
        if self.auto_repair:
            try:
                outcome = restore_page(self, page_id)
            except (MediaRecoveryError, StorageError) as repair_exc:
                self.stats.repair_failures += 1
                exc = repair_exc
            else:
                self._account(outcome)
                self._finish_restore(page_id, outcome.page)
                if outcome.page is not None:
                    return outcome.page
                # Restored to the unborn (all-zero) state: there is no
                # page object to serve — surface the plain never-written
                # error the caller expects from such a page.
                raise BufferPoolError(
                    f"page {page_id} is allocated but was never written"
                )
        self.quarantine.quarantine(
            page_id, exc, stale_image=self.backup.image(page_id)
        )
        self.stats.pages_quarantined += 1
        raise PageQuarantinedError(
            f"page {page_id} is quarantined: {exc}", page_id=page_id
        ) from exc

    def _account(self, outcome) -> None:
        self.stats.pages_repaired += 1
        self.stats.repair_records_replayed += outcome.records_replayed
        self.stats.repair_versions_stamped += outcome.versions_stamped
        self.quarantine.release(outcome.page_id)

    def _finish_restore(self, page_id: int, page: "Page") -> None:
        """Post-restore work for logically-logged page types.

        PTT node pages never appear in physical log records (commit records
        carry their mutations), so the physical restore only recovered the
        backup image; re-apply the archived mutations idempotently through
        the live PTT to close the gap.
        """
        if isinstance(page, PTTNodePage):
            self._refill_ptt(page_id)

    def _refill_ptt(self, page_id: int) -> None:
        ptt = self.engine.ptt
        for record in self.archive.ptt_records_after(
            self.backup.capture_lsn(page_id)
        ):
            if isinstance(record, CommitTxn):
                if ptt.lookup(record.tid) is None:
                    ptt.insert(
                        record.tid, Timestamp(record.ttime, record.sn),
                        rec_lsn=record.lsn,
                    )
            elif isinstance(record, PTTDelete):
                if ptt.lookup(record.subject_tid) is not None:
                    ptt.delete(record.subject_tid, rec_lsn=record.lsn)

    # -- crash semantics ---------------------------------------------------

    def on_crash(self) -> None:
        """A simulated crash wipes volatile state; archive and backup are
        durable media and survive (``captured_upto`` never exceeds the
        durable prefix, so the archive stays consistent with the truncated
        log)."""
        self.quarantine.clear()
