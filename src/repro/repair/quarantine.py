"""Quarantine and graceful degradation for unrepairable pages.

When a page faults and cannot (or may not — ``auto_repair=False``) be
restored, it is quarantined instead of poisoning every request that touches
it.  The quarantine entry keeps the newest stale backup image: it misses
only the changes made after its capture, so

* **as-of reads** whose horizon predates the stale image's start time can
  still be answered exactly — the image's history chain pointers and the
  (immutable) history pages behind them are intact;
* **current reads** that would need the lost tail return a typed
  :class:`Degraded` result instead of raising, so callers can distinguish
  "no such row" from "row unavailable until media recovery completes".

``Degraded`` is falsy on purpose: code that only asks "did I get a row?"
treats degraded service as a miss, while callers that care can
``isinstance``-check and surface the page id and reason.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.failpoints import fire
from repro.storage.page import Page, decode_page


@dataclass(frozen=True)
class Degraded:
    """A typed "the data exists but is temporarily unreadable" result."""

    page_id: int
    reason: str

    def __bool__(self) -> bool:
        return False


@dataclass
class QuarantineEntry:
    page_id: int
    error: str                       # what took the page out of service
    stale_image: bytes | None = None   # newest backup image, if any
    _decoded: Page | None = field(default=None, repr=False)

    def stale_page(self) -> Page | None:
        """The decoded stale backup image (cached), or None."""
        if self._decoded is None and self.stale_image is not None:
            self._decoded = decode_page(self.stale_image)
        return self._decoded


class QuarantineManager:
    """The set of pages currently out of service."""

    def __init__(self) -> None:
        self._entries: dict[int, QuarantineEntry] = {}
        self.total_quarantined = 0

    def quarantine(
        self, page_id: int, error: Exception | str,
        stale_image: bytes | None = None,
    ) -> QuarantineEntry:
        fire("repair.quarantine")
        entry = QuarantineEntry(
            page_id=page_id, error=str(error), stale_image=stale_image
        )
        if page_id not in self._entries:
            self.total_quarantined += 1
        self._entries[page_id] = entry
        return entry

    def get(self, page_id: int) -> QuarantineEntry | None:
        return self._entries.get(page_id)

    def release(self, page_id: int) -> bool:
        """The page was repaired; back in service."""
        return self._entries.pop(page_id, None) is not None

    def clear(self) -> None:
        self._entries.clear()

    def pages(self) -> list[int]:
        return sorted(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._entries
