"""The two durable halves of media recovery: log archive and page backup.

Media recovery needs exactly two things to rebuild any page (Mohan's
ARIES-style single-page restore, applied to the Immortal DB engine):

1. **A log archive** that is *contiguous* from some base LSN onward and
   indexed by page.  The WAL rule guarantees every on-disk page image has
   ``page.lsn <= flushed_lsn``, so an archive of the durable records is
   always sufficient to roll any backup (or surviving) image forward to
   the current durable state.  The archive copies frames from
   :meth:`LogManager.durable_frames` after every physical force — records
   become archivable the instant they become durable.

2. **A page backup** taken fuzzily online.  Right after a flush checkpoint
   every disk image is current, so capturing the raw pages then yields a
   consistent "backup as of flushed_lsn" without stopping the engine.
   Pages that fail verification at capture time keep their previous backup
   image (the archive bridges the gap).

Trimming is per page: a record becomes droppable once *every* page it
touches has a backup image at or past the record's LSN (replay always
starts at the image's own LSN, so such a record can never be replayed
again).  A page that failed capture keeps its older backup image, which
automatically retains the records bridging the gap.  A global cut-off
would never fire here because the meta page's writes are unlogged and its
image stays at LSN 0.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator

from repro.errors import StorageError
from repro.storage.constants import PageType
from repro.storage.page import Page
from repro.wal.records import CommitTxn, LogRecord, PTTDelete

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.disk import PageStore
    from repro.wal.log import LogManager

_LSN_OFFSET = 8  # page LSN lives at bytes [8:16) of the common page header


def _image_lsn(raw: bytes) -> int:
    return int.from_bytes(raw[_LSN_OFFSET:_LSN_OFFSET + 8], "big")


class LogArchive:
    """A per-page index over every durable, page-affecting log record.

    Only records that touch at least one page are stored physically;
    commit/abort bookkeeping records are never replayed during a
    single-page restore — restored versions are re-stamped from the PTT
    instead, exactly like the flush-time lazy timestamping path.

    One logical side channel: PTT mutations are logged logically (the
    commit record carries the entry; ``PTTDelete`` records GC) and PTT node
    pages never appear in any physical record.  The archive keeps those
    records separately so a damaged PTT page can be refilled by idempotent
    re-application on top of its stale backup image.
    """

    def __init__(self) -> None:
        self._lsns: list[int] = []          # ascending LSNs of stored records
        self._raws: list[bytes] = []        # codec bytes, parallel to _lsns
        self._by_page: dict[int, list[int]] = {}   # page_id -> indices
        self._ptt: list[tuple[int, bytes]] = []    # (lsn, raw) PTT mutations
        self.captured_upto = 0   # highest durable LSN seen (incl. skipped)
        self.records_archived = 0
        self.bytes_archived = 0
        self.records_trimmed = 0

    # -- capture -----------------------------------------------------------

    def capture(self, log: "LogManager") -> int:
        """Copy newly durable frames from the log; returns records stored."""
        stored = 0
        for lsn, raw in log.durable_frames(self.captured_upto):
            self.captured_upto = lsn
            record = LogRecord.decode(raw)
            pages = record.affected_pages()
            if not pages:
                if isinstance(record, PTTDelete) or (
                    isinstance(record, CommitTxn) and record.ptt
                ):
                    self._ptt.append((lsn, raw))
                    self.bytes_archived += len(raw)
                    stored += 1
                continue
            index = len(self._lsns)
            self._lsns.append(lsn)
            self._raws.append(raw)
            for page_id in pages:
                self._by_page.setdefault(page_id, []).append(index)
            self.bytes_archived += len(raw)
            stored += 1
        self.records_archived += stored
        return stored

    # -- queries -----------------------------------------------------------

    def records_for(
        self, page_id: int, after_lsn: int = 0
    ) -> Iterator[LogRecord]:
        """Archived records touching ``page_id`` with LSN > ``after_lsn``."""
        for index in self._by_page.get(page_id, ()):  # indices are ascending
            lsn = self._lsns[index]
            if lsn <= after_lsn:
                continue
            record = LogRecord.decode(self._raws[index])
            record.lsn = lsn
            yield record

    def max_lsn_for(self, page_id: int) -> int:
        """The newest archived LSN touching ``page_id`` (0 if none).

        The scrubber's staleness check: a page that is not dirty in the
        buffer pool whose disk image LSN is below this was the victim of a
        silently dropped write.
        """
        indices = self._by_page.get(page_id)
        return self._lsns[indices[-1]] if indices else 0

    def ptt_records_after(self, after_lsn: int = 0) -> Iterator[LogRecord]:
        """Archived PTT mutations (commit inserts / GC deletes), in LSN
        order, with LSN > ``after_lsn`` — the logical refill stream for a
        restored PTT page."""
        for lsn, raw in self._ptt:
            if lsn <= after_lsn:
                continue
            record = LogRecord.decode(raw)
            record.lsn = lsn
            yield record

    # -- trimming ----------------------------------------------------------

    def trim_covered(
        self, image_lsn: Callable[[int], int], ptt_floor: int = 0
    ) -> int:
        """Drop records fully covered by the backup; returns the count.

        ``image_lsn(page_id)`` is the LSN of the page's backup image (0 if
        none).  A record is droppable only when every page it touches has an
        image at or past the record's LSN — replay starts from the image's
        own LSN, so such a record can never be needed again.  ``ptt_floor``
        bounds the logical side channel: PTT mutations at or below it are
        reflected in every PTT page's backup image.
        """
        if ptt_floor:
            before = len(self._ptt)
            self._ptt = [(lsn, raw) for lsn, raw in self._ptt
                         if lsn > ptt_floor]
            self.records_trimmed += before - len(self._ptt)
        keep_lsns: list[int] = []
        keep_raws: list[bytes] = []
        rebuilt: dict[int, list[int]] = {}
        for lsn, raw in zip(self._lsns, self._raws):
            pages = LogRecord.decode(raw).affected_pages()
            if all(lsn <= image_lsn(page_id) for page_id in pages):
                continue
            index = len(keep_lsns)
            keep_lsns.append(lsn)
            keep_raws.append(raw)
            for page_id in pages:
                rebuilt.setdefault(page_id, []).append(index)
        dropped = len(self._lsns) - len(keep_lsns)
        self._lsns = keep_lsns
        self._raws = keep_raws
        self._by_page = rebuilt
        self.records_trimmed += dropped
        return dropped

    def __len__(self) -> int:
        return len(self._lsns)


class PageBackup:
    """Raw page images captured fuzzily at flush checkpoints.

    Backup media is modelled as separate from the data disk: a simulated
    crash of the engine does not touch it, and media faults on the data
    disk cannot corrupt it.
    """

    def __init__(self) -> None:
        self._images: dict[int, bytes] = {}
        # log.flushed_lsn when each page's current image was captured —
        # the refill floor for logically-logged (LSN-0) pages like the PTT.
        self._capture_lsn: dict[int, int] = {}
        self.captures = 0
        self.pages_captured = 0
        self.pages_skipped = 0
        self.captured_flushed_lsn = 0  # log.flushed_lsn at the last capture

    def put(self, page_id: int, raw: bytes, flushed_lsn: int = 0) -> None:
        self._images[page_id] = bytes(raw)
        self._capture_lsn[page_id] = flushed_lsn

    def image(self, page_id: int) -> bytes | None:
        return self._images.get(page_id)

    def image_lsn(self, page_id: int) -> int:
        raw = self._images.get(page_id)
        return _image_lsn(raw) if raw is not None else 0

    def capture_lsn(self, page_id: int) -> int:
        """``log.flushed_lsn`` when this page's image was captured (0 if
        never captured)."""
        return self._capture_lsn.get(page_id, 0)

    def ptt_floor(self) -> int:
        """The oldest capture LSN across PTT-page images (0 if none).

        Every archived PTT mutation at or below this LSN is reflected in
        every PTT page's backup image, so the logical side channel can be
        trimmed to it.
        """
        floors = [
            self._capture_lsn.get(page_id, 0)
            for page_id, raw in self._images.items()
            if Page.read_common_header(raw)[1] == PageType.PTT
        ]
        return min(floors) if floors else 0

    def capture_all(self, disk: "PageStore", flushed_lsn: int = 0) -> list[int]:
        """Capture every page's current image; returns page ids that failed.

        A page whose read fails verification keeps its previous backup
        image (and its previous capture LSN) — the archive still covers it
        from that older point forward.
        """
        failed: list[int] = []
        for page_id in range(disk.page_count):
            try:
                raw = disk.read_page(page_id)
            except StorageError:
                failed.append(page_id)
                continue
            self._images[page_id] = raw
            self._capture_lsn[page_id] = flushed_lsn
            self.pages_captured += 1
        self.captures += 1
        self.pages_skipped += len(failed)
        return failed

    def __len__(self) -> int:
        return len(self._images)
