"""Append-only archive store: blocks and manifest snapshots in one log.

The store is deliberately WAL-shaped.  It holds a single append-only
sequence of framed records of two kinds — **block** records (one archived
history page each, see :mod:`repro.archive.delta`) and **manifest**
records (a JSON snapshot of the run/ref tables) — with an explicit
durable/unsynced boundary:

* :meth:`append_block` / :meth:`append_manifest` only buffer;
* :meth:`sync` makes everything appended so far durable (file variant:
  write + flush + fsync);
* :meth:`crash` discards the unsynced tail, exactly like ``WriteAheadLog``
  in the fault harness.

Recovery needs no separate manifest file: reopening the store scans the
durable records and adopts the **last manifest snapshot**.  Records
appended after that snapshot are orphans — blocks nothing references, or
a manifest that never became the newest durable one — and are harmless:
the migration protocol (see :mod:`repro.archive.manager`) only links a
TSB-tree page to an archive ref *after* the manifest describing that ref
has been synced.

Records are addressed by **logical index** (their position in the record
sequence), which stays stable across reopen because the durable prefix is
immutable.  The file variant frames each record as
``type(1) length(4) crc32(4) payload`` and stops its opening scan at the
first torn or corrupt frame, mirroring how the WAL tolerates a torn tail.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field

from repro.clock import Timestamp
from repro.errors import StorageError

RECORD_BLOCK = 0
RECORD_MANIFEST = 1

_FRAME = struct.Struct(">BII")  # type, payload length, crc32(payload)

MANIFEST_FORMAT = 1


class ArchiveStoreError(StorageError):
    """The archive store or one of its records is unusable."""


@dataclass
class BlockMeta:
    """Location and fences of one block within a run."""

    record: int          # logical record index in the store
    length: int          # compressed payload bytes
    raw_bytes: int       # used_bytes of the archived page (pre-compression)
    key_low: bytes
    key_high: bytes
    t_low: Timestamp     # archived page's split_ts
    t_high: Timestamp    # archived page's end_ts (exclusive)

    def to_doc(self) -> list:
        return [
            self.record, self.length, self.raw_bytes,
            self.key_low.hex(), self.key_high.hex(),
            [self.t_low.ttime, self.t_low.sn],
            [self.t_high.ttime, self.t_high.sn],
        ]

    @classmethod
    def from_doc(cls, doc: list) -> "BlockMeta":
        record, length, raw_bytes, klo, khi, tlo, thi = doc
        return cls(
            record=record, length=length, raw_bytes=raw_bytes,
            key_low=bytes.fromhex(klo), key_high=bytes.fromhex(khi),
            t_low=Timestamp(tlo[0], tlo[1]), t_high=Timestamp(thi[0], thi[1]),
        )


@dataclass
class RunMeta:
    """One archive run: a fenced group of blocks at one merge level."""

    run_id: int
    level: int
    blocks: list[BlockMeta] = field(default_factory=list)

    @property
    def key_low(self) -> bytes:
        return min((b.key_low for b in self.blocks), default=b"")

    @property
    def key_high(self) -> bytes:
        return max((b.key_high for b in self.blocks), default=b"")

    @property
    def t_low(self) -> Timestamp:
        return min((b.t_low for b in self.blocks), default=Timestamp.MIN)

    @property
    def t_high(self) -> Timestamp:
        return max((b.t_high for b in self.blocks), default=Timestamp.MIN)

    @property
    def stored_bytes(self) -> int:
        return sum(b.length for b in self.blocks)

    @property
    def raw_bytes(self) -> int:
        return sum(b.raw_bytes for b in self.blocks)

    def to_doc(self) -> dict:
        return {
            "id": self.run_id,
            "level": self.level,
            "blocks": [b.to_doc() for b in self.blocks],
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "RunMeta":
        return cls(
            run_id=doc["id"],
            level=doc["level"],
            blocks=[BlockMeta.from_doc(b) for b in doc["blocks"]],
        )


class ArchiveStore:
    """The append-only record log, in-memory or file-backed.

    ``path=None`` keeps everything in memory (the crash-simulation case);
    otherwise records persist at ``path`` with the frame format above.
    Either way the records list holds every known record in order, and
    ``durable_count`` marks how many of them survive :meth:`crash`.
    """

    def __init__(self, path: str | None = None) -> None:
        self.path = path
        self._records: list[tuple[int, bytes]] = []
        self.durable_count = 0
        self._file = None
        if path is not None:
            self._open_file()

    # -- persistence -------------------------------------------------------

    def _open_file(self) -> None:
        # A sidecar left behind means a compaction wrote its replacement
        # log but crashed before the atomic swap: the live file is still
        # the authority, the sidecar is garbage.
        if os.path.exists(self.path + ".compact"):
            os.remove(self.path + ".compact")
        if os.path.exists(self.path):
            with open(self.path, "rb") as fh:
                data = fh.read()
            offset = 0
            while offset + _FRAME.size <= len(data):
                rtype, length, crc = _FRAME.unpack_from(data, offset)
                start = offset + _FRAME.size
                payload = data[start : start + length]
                if len(payload) != length or zlib.crc32(payload) != crc:
                    break  # torn tail: ignore it, like the WAL does
                self._records.append((rtype, payload))
                offset = start + length
            self.durable_count = len(self._records)
            # Reopen truncated to the clean prefix so appends land after it.
            self._file = open(self.path, "r+b")
            self._file.truncate(offset)
            self._file.seek(offset)
        else:
            self._file = open(self.path, "w+b")

    # -- appending ---------------------------------------------------------

    def _append(self, rtype: int, payload: bytes) -> int:
        self._records.append((rtype, payload))
        return len(self._records) - 1

    def append_block(self, payload: bytes) -> int:
        """Buffer one block record; returns its logical record index."""
        return self._append(RECORD_BLOCK, payload)

    def append_manifest(self, doc: dict) -> int:
        """Buffer one manifest snapshot record."""
        payload = json.dumps(doc, separators=(",", ":"), sort_keys=True).encode()
        return self._append(RECORD_MANIFEST, payload)

    def sync(self) -> None:
        """Make every buffered record durable (file: write+flush+fsync)."""
        if self._file is not None and self.durable_count < len(self._records):
            for rtype, payload in self._records[self.durable_count :]:
                self._file.write(
                    _FRAME.pack(rtype, len(payload), zlib.crc32(payload))
                )
                self._file.write(payload)
            self._file.flush()
            os.fsync(self._file.fileno())
        self.durable_count = len(self._records)

    def crash(self) -> None:
        """Simulate power loss: drop the unsynced tail."""
        del self._records[self.durable_count :]

    # -- compaction --------------------------------------------------------

    def rewrite_prepare(self, records: list[tuple[int, bytes]]) -> None:
        """Write the replacement log to a fsynced sidecar (file variant).

        First half of compaction's two-phase swap: after this returns the
        full replacement exists durably at ``path + ".compact"`` but the
        live log is untouched — a crash here is invisible (the sidecar is
        deleted on reopen).
        """
        if self._file is None:
            return
        with open(self.path + ".compact", "wb") as tmp:
            for rtype, payload in records:
                tmp.write(
                    _FRAME.pack(rtype, len(payload), zlib.crc32(payload))
                )
                tmp.write(payload)
            tmp.flush()
            os.fsync(tmp.fileno())

    def rewrite_commit(self, records: list[tuple[int, bytes]]) -> None:
        """Atomically adopt the prepared replacement log.

        File variant: ``os.replace`` of the sidecar over the live file —
        the filesystem guarantees readers see either the old log or the
        new one, never a splice.  The in-memory variant swaps the record
        list in one assignment, modelling the same atomicity.  Every
        adopted record is durable (the sidecar was fsynced), so
        ``durable_count`` covers the whole new sequence.
        """
        if self._file is not None:
            self._file.close()
            os.replace(self.path + ".compact", self.path)
            self._file = open(self.path, "r+b")
            self._file.seek(0, os.SEEK_END)
        self._records = [(rtype, payload) for rtype, payload in records]
        self.durable_count = len(self._records)

    # -- reading -----------------------------------------------------------

    def read_block(self, record: int) -> bytes:
        """Payload of block record ``record`` (durable or still buffered)."""
        if not 0 <= record < len(self._records):
            raise ArchiveStoreError(f"archive record {record} does not exist")
        rtype, payload = self._records[record]
        if rtype != RECORD_BLOCK:
            raise ArchiveStoreError(f"archive record {record} is not a block")
        return payload

    def last_manifest(self) -> dict | None:
        """The newest *durable* manifest snapshot, or None."""
        for rtype, payload in reversed(self._records[: self.durable_count]):
            if rtype == RECORD_MANIFEST:
                return json.loads(payload.decode())
        return None

    # -- accounting --------------------------------------------------------

    @property
    def record_count(self) -> int:
        return len(self._records)

    @property
    def appended_bytes(self) -> int:
        """Total payload bytes ever appended (live + dead + unsynced)."""
        return sum(len(payload) for _, payload in self._records)

    def close(self) -> None:
        if self._file is not None:
            self.sync()
            self._file.close()
            self._file = None
