"""Cold-history archive tiering (ROADMAP item: tier history out of the TSB store).

Historical pages are immutable once their time range closes, yet the seed
engine keeps them in the same page file — and the same buffer pool — as the
hot current-time working set.  This package migrates cold history pages into
an append-only, levelled archive store of delta-compressed blocks, reclaims
the TSB-tree pages through a free list, and serves archived pages back to
the read path transparently through the buffer pool's resolver seam.

Layout:

* :mod:`repro.archive.delta` — the block codec: one archived history page
  per block, version payloads delta-compressed against the per-key base
  version, whole block zlib-compressed.  Decoding reconstructs the exact
  page image.
* :mod:`repro.archive.store` — the append-only record store holding blocks
  and manifest snapshots, with an explicit durable/unsynced boundary so
  crash simulation and recovery behave like the WAL's.
* :mod:`repro.archive.manager` — migration policy and mechanism: candidate
  scan, crash-atomic per-page migration protocol, levelled run merging
  (the lstore ``MERGE_THRESHOLD`` idiom), the decoded-page cache behind
  ``BufferPool.archive_resolver``, and quarantine of damaged blocks.

Everything is opt-in behind ``ImmortalDB(archive=...)``; with the default
(``None``) the engine's behaviour and on-disk images are byte-identical to
the pre-archive engine.
"""

from repro.archive.manager import ArchiveConfig, ArchiveManager, ArchiveStats
from repro.archive.store import ArchiveStore, BlockMeta, RunMeta

__all__ = [
    "ArchiveConfig",
    "ArchiveManager",
    "ArchiveStats",
    "ArchiveStore",
    "BlockMeta",
    "RunMeta",
]
