"""Archive block codec: delta-compressed images of history pages.

One archive **block** is the complete, exactly-reconstructible content of
one migrated history page.  The encoding exploits the two redundancies a
slotted version-chain page carries:

* every version stores its full key, but a page holds few distinct keys —
  the block stores each key once and refers to it by index; and
* consecutive versions of one record typically differ in a few bytes
  (the varying-value-length methodology in PAPERS.md), so each non-base
  payload is stored as a (shared prefix, shared suffix, middle bytes)
  delta against the key's **base version** — the oldest version of that
  key in the page — falling back to raw bytes whenever the delta would
  not be smaller.

Versions are stored *positionally* (same order as ``DataPage.versions``),
so the intra-page VP chain indices — including ``VP_IN_HISTORY`` slot
numbers that point into the next page of the history chain — survive the
round trip untouched, and ``decode_block`` rebuilds a page whose
``to_bytes()`` image is byte-identical to the original's (modulo the page
id stamped into the header, which the caller chooses).

The assembled document is zlib-compressed as a whole; zlib then mops up
the remaining redundancy (repeated filler in payloads, runs of equal
header fields).
"""

from __future__ import annotations

import struct
import zlib

from repro.clock import Timestamp
from repro.errors import PageFormatError
from repro.storage.constants import DATA_HEADER_SIZE, SLOT_SIZE
from repro.storage.page import DataPage
from repro.storage.record import RecordVersion

BLOCK_MAGIC = b"IAB1"

# table_id(4) header_flags(1) lsn(8) split(8+4) end(8+4) history(4)
# next_leaf(4) page_size(4) nkeys(2) nversions(2) nslots(2)
_BLOCK_HEADER = struct.Struct(">IBQQIQIIIIHHH")

_RAW = 0     # payload mode: length-prefixed raw bytes
_DELTA = 1   # payload mode: (prefix, suffix, middle) vs the key's base payload

_VERSION_HEAD = struct.Struct(">BHQIHB")   # flags, vp, ttime_field, sn, key_idx, mode
_RAW_LEN = struct.Struct(">H")
_DELTA_HEAD = struct.Struct(">HHH")        # prefix_len, suffix_len, middle_len


def _common_affix(base: bytes, payload: bytes) -> tuple[int, int]:
    """Longest common prefix/suffix lengths of ``base`` and ``payload``."""
    limit = min(len(base), len(payload))
    prefix = 0
    while prefix < limit and base[prefix] == payload[prefix]:
        prefix += 1
    suffix = 0
    remaining = limit - prefix
    while suffix < remaining and base[-1 - suffix] == payload[-1 - suffix]:
        suffix += 1
    return prefix, suffix


def encode_block(page: DataPage) -> bytes:
    """Serialize a history page into a compressed archive block."""
    key_index: dict[bytes, int] = {}
    bases: dict[int, bytes] = {}
    body = bytearray()
    for version in page.versions:
        idx = key_index.setdefault(version.key, len(key_index))
        payload = version.payload
        base = bases.get(idx)
        if base is None:
            bases[idx] = payload
            mode, encoded = _RAW, _RAW_LEN.pack(len(payload)) + payload
        else:
            prefix, suffix = _common_affix(base, payload)
            middle = payload[prefix : len(payload) - suffix]
            if _DELTA_HEAD.size + len(middle) < _RAW_LEN.size + len(payload):
                mode = _DELTA
                encoded = _DELTA_HEAD.pack(prefix, suffix, len(middle)) + middle
            else:
                mode, encoded = _RAW, _RAW_LEN.pack(len(payload)) + payload
        body += _VERSION_HEAD.pack(
            version.flags, version.vp, version.ttime_field, version.sn, idx, mode
        )
        body += encoded
    keys = bytearray()
    for key in key_index:  # insertion order == index order
        keys += _RAW_LEN.pack(len(key)) + key
    header = _BLOCK_HEADER.pack(
        page.table_id, page.header_flags, page.lsn,
        page.split_ts.ttime, page.split_ts.sn,
        page.end_ts.ttime, page.end_ts.sn,
        page.history_page_id, page.next_leaf_id, page.page_size,
        len(key_index), len(page.versions), len(page.slots),
    )
    slots = struct.pack(f">{len(page.slots)}H", *page.slots)
    return zlib.compress(bytes(BLOCK_MAGIC + header + keys + body + slots), 6)


def decode_block(blob: bytes, page_id: int) -> DataPage:
    """Reconstruct the archived history page, stamped with ``page_id``."""
    try:
        doc = zlib.decompress(blob)
    except zlib.error as exc:
        raise PageFormatError(f"archive block is not valid zlib data: {exc}") from exc
    if doc[: len(BLOCK_MAGIC)] != BLOCK_MAGIC:
        raise PageFormatError("archive block has a bad magic number")
    try:
        (
            table_id, header_flags, lsn,
            split_ttime, split_sn, end_ttime, end_sn,
            history_page_id, next_leaf_id, page_size,
            nkeys, nversions, nslots,
        ) = _BLOCK_HEADER.unpack_from(doc, len(BLOCK_MAGIC))
        offset = len(BLOCK_MAGIC) + _BLOCK_HEADER.size
        keys: list[bytes] = []
        for _ in range(nkeys):
            (klen,) = _RAW_LEN.unpack_from(doc, offset)
            offset += _RAW_LEN.size
            keys.append(doc[offset : offset + klen])
            if len(keys[-1]) != klen:
                raise PageFormatError("archive block truncated in key table")
            offset += klen
        versions: list[RecordVersion] = []
        bases: dict[int, bytes] = {}
        for _ in range(nversions):
            flags, vp, ttime_field, sn, key_idx, mode = _VERSION_HEAD.unpack_from(
                doc, offset
            )
            offset += _VERSION_HEAD.size
            if key_idx >= nkeys:
                raise PageFormatError("archive block version references a bad key")
            if mode == _RAW:
                (plen,) = _RAW_LEN.unpack_from(doc, offset)
                offset += _RAW_LEN.size
                payload = doc[offset : offset + plen]
                if len(payload) != plen:
                    raise PageFormatError("archive block truncated in payload")
                offset += plen
            elif mode == _DELTA:
                prefix, suffix, mlen = _DELTA_HEAD.unpack_from(doc, offset)
                offset += _DELTA_HEAD.size
                middle = doc[offset : offset + mlen]
                if len(middle) != mlen:
                    raise PageFormatError("archive block truncated in delta")
                offset += mlen
                base = bases.get(key_idx)
                if base is None:
                    raise PageFormatError("archive block delta precedes its base")
                payload = (
                    base[:prefix] + middle + (base[len(base) - suffix :] if suffix else b"")
                )
            else:
                raise PageFormatError(f"archive block has payload mode {mode}")
            if key_idx not in bases:
                bases[key_idx] = payload
            versions.append(
                RecordVersion(keys[key_idx], payload, flags, vp, ttime_field, sn)
            )
        slots = list(struct.unpack_from(f">{nslots}H", doc, offset))
        offset += nslots * SLOT_SIZE
    except struct.error as exc:
        raise PageFormatError(f"archive block is truncated: {exc}") from exc
    for slot in slots:
        if slot >= nversions:
            raise PageFormatError("archive block slot points past version area")
    page = DataPage(page_id, is_history=True, page_size=page_size, table_id=table_id)
    page.header_flags = header_flags
    page.lsn = lsn
    page.split_ts = Timestamp(split_ttime, split_sn)
    page.end_ts = Timestamp(end_ttime, end_sn)
    page.history_page_id = history_page_id
    page.next_leaf_id = next_leaf_id
    page.versions = versions
    page.slots = slots
    page._slot_keys = [versions[h].key for h in slots]
    page._used = (
        DATA_HEADER_SIZE
        + sum(v.size_on_page for v in versions)
        + SLOT_SIZE * nslots
    )
    return page
