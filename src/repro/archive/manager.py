"""Archive manager: migration policy, crash atomicity, and the read seam.

Migration is a **budgeted background pass**, like the PR-4 scrubber: each
:meth:`ArchiveManager.step` archives at most ``pages_per_step`` cold
history pages, so the work rides along with checkpoints (``auto=True``)
without ever stalling the foreground.

A page is a migration candidate when its history is provably closed and
cold:

* it is a history page whose ``end_ts`` lies at or below the temperature
  horizon (``clock.now() - cold_ms``);
* every version is timestamped (lazy stamping finished — archived blocks
  are immutable, nobody will revisit them);
* its own history link already points off-tier (0 or an archive ref), so
  chains are peeled **oldest-tail first** and an archived page never
  points at a TSB-tree page; and
* its table has no TSB history index (TSB index terms store raw page
  ids; retargeting them is future work, documented in DESIGN.md).

Per-page migration protocol (crash-atomic; each numbered step has a
failpoint so the crashtest harness kills the process between any two):

1. ``archive.migrate.select`` — re-verify candidacy, flush the page if
   dirty (the archived image must match the durable one);
2. ``archive.migrate.append`` — encode the delta block, append it to the
   store, assign the next ref index;
3. ``archive.migrate.sync`` — append a manifest snapshot naming the new
   ref and **sync the store**.  From here the archive copy is durable;
4. ``archive.migrate.relink`` — rewrite every referrer's
   ``history_page_id`` from the raw pid to the ref pid, write-through;
5. ``archive.migrate.free`` — drop the old page's frame, zero-fill its
   disk image, and put the pid on the free list.

Why each intermediate crash state is consistent:

* crash before the sync — the block and manifest are an unsynced tail the
  store discards; every on-disk link still names the intact raw page.
* crash between sync and the last relink flush — some referrers name the
  ref (durably described by the synced manifest), the rest still name
  the raw page, which is untouched.  Both routes decode the same chain.
* crash after relinks, before/during the free — worst case a zero-filled
  page whose pid never reached a durable catalog: a leaked hole, never a
  dangling link, because relinked referrer images (carrying LSNs ≥ any
  record describing the old link) were flushed before the free, and redo
  only applies records newer than the page image's LSN.

Reads come back through the buffer pool's resolver seam
(``BufferPool.archive_resolver``): a ``history_page_id`` with
:data:`~repro.storage.constants.ARCHIVE_PID_BIT` set never enters the
frame table; the manager materializes the block (ref → run id + block →
decode) through its own small LRU of decoded pages, so ``page_for_time``,
the as-of route cache, history scans and the integrity walker all work
unchanged on either tier.  A block that fails to decode quarantines the
ref — reads degrade through the PR-5 ``Degraded`` path instead of
corrupting results.

Runs follow the lstore merge idiom (SNIPPETS.md #1): each step seals one
level-0 run; when ``merge_threshold`` live runs accumulate at a level,
their blocks are copied into one dense run at the next level and the refs
are remapped — the store stays append-only, superseded runs simply stop
being referenced.  The dead bytes those merges (and stale manifests) leave
behind are reclaimed by **compaction** (:meth:`ArchiveManager.compact`):
the live records are rewritten into a fresh log that atomically replaces
the old file, with ``archive.compact.*`` failpoints at every stage of the
prepare/swap protocol.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.archive.delta import decode_block, encode_block
from repro.archive.store import (
    RECORD_BLOCK,
    RECORD_MANIFEST,
    ArchiveStore,
    BlockMeta,
    RunMeta,
)
from repro.clock import TICK_MS, Timestamp
from repro.errors import PageQuarantinedError
from repro.faults.failpoints import fire
from repro.storage.constants import (
    ARCHIVE_PID_BIT,
    CHECKSUM_OFFSET,
    CHECKSUM_SIZE,
    NO_PAGE,
)
from repro.storage.freelist import PageFreeList
from repro.storage.page import DataPage, decode_page


@dataclass
class ArchiveConfig:
    """Knobs for cold-history tiering (see DESIGN.md "Cold-history tiering")."""

    cold_ms: float = 10_000.0   # history colder than this is migratable
    pages_per_step: int = 8     # migration budget per step (scrubber idiom)
    merge_threshold: int = 10   # live runs per level before a merge
    auto: bool = True           # run a step inside every checkpoint
    max_cached_pages: int = 128  # decoded-page LRU behind the resolver
    # Compaction: the append-only store accumulates dead records (blocks
    # superseded by merges, stale manifests).  When the dead fraction of
    # the store reaches this ratio, ``step`` rewrites it down to the live
    # records.  0.0 disables compaction entirely.
    compact_ratio: float = 0.0
    compact_min_bytes: int = 4096  # don't bother below this much dead weight


@dataclass
class ArchiveStats:
    """Cumulative archive counters (surfaced through ``ImmortalDB.stats``)."""

    pages_migrated: int = 0
    pages_freed: int = 0
    blocks_written: int = 0
    block_reads: int = 0
    merges: int = 0
    quarantined: int = 0
    compactions: int = 0
    bytes_reclaimed: int = 0


class ArchiveManager:
    """Owns the archive store, the ref table, and the migration pass."""

    def __init__(
        self,
        engine,
        config: ArchiveConfig | None = None,
        *,
        store_path: str | None = None,
    ) -> None:
        self.engine = engine
        self.config = config or ArchiveConfig()
        self.store = ArchiveStore(store_path)
        self.stats = ArchiveStats()
        self.runs: dict[int, RunMeta] = {}
        # refs[i] = (run_id, block_index); ref pid = ARCHIVE_PID_BIT | i.
        # Entries are remapped by merges but never removed: a ref pid stored
        # in a page header must stay resolvable forever.
        self.refs: list[tuple[int, int]] = []
        self.next_run_id = 1
        self.quarantined: set[int] = set()
        self._cache: OrderedDict[int, DataPage] = OrderedDict()
        # Wire the seams: reads resolve through us, frees feed allocation.
        engine.buffer.archive_resolver = self.materialize
        if engine.disk.free_list is None:
            engine.disk.free_list = PageFreeList()
        engine.disk.free_list.replace(engine.catalog.free_pids)
        self._load_manifest()

    # -- manifest ----------------------------------------------------------

    def _manifest_doc(self) -> dict:
        return {
            "format": 1,
            "next_run_id": self.next_run_id,
            "runs": [self.runs[rid].to_doc() for rid in sorted(self.runs)],
            "refs": [list(entry) for entry in self.refs],
        }

    def _load_manifest(self) -> None:
        doc = self.store.last_manifest()
        if doc is None:
            self.runs = {}
            self.refs = []
            self.next_run_id = 1
            return
        self.next_run_id = doc["next_run_id"]
        self.runs = {
            run["id"]: RunMeta.from_doc(run) for run in doc["runs"]
        }
        self.refs = [(entry[0], entry[1]) for entry in doc["refs"]]

    # -- accounting --------------------------------------------------------

    @property
    def live_runs(self) -> int:
        return len(self.runs)

    @property
    def live_blocks(self) -> int:
        return len(self.refs)

    @property
    def bytes_raw(self) -> int:
        """Pre-compression bytes of every live (referenced) block."""
        return sum(run.raw_bytes for run in self.runs.values())

    @property
    def bytes_stored(self) -> int:
        """Compressed bytes of every live block."""
        return sum(run.stored_bytes for run in self.runs.values())

    # -- the read seam -----------------------------------------------------

    def materialize(self, page_id: int) -> DataPage:
        """Resolve an archive-ref page id into a decoded history page.

        Installed as ``BufferPool.archive_resolver``; the returned pages
        are immutable and never enter the frame table — they live in a
        private LRU sized by ``max_cached_pages``.
        """
        if page_id in self.quarantined:
            raise PageQuarantinedError(
                f"archive block for page {page_id:#x} is quarantined",
                page_id=page_id,
            )
        page = self._cache.get(page_id)
        if page is not None:
            self._cache.move_to_end(page_id)
            return page
        fire("archive.read.block")
        ref = page_id & ~ARCHIVE_PID_BIT
        try:
            run_id, block_idx = self.refs[ref]
            meta = self.runs[run_id].blocks[block_idx]
            blob = self.store.read_block(meta.record)
            fire("archive.read.decode")
            page = decode_block(blob, page_id)
        except Exception as exc:
            # SimulatedCrash derives from BaseException and passes through.
            self.quarantined.add(page_id)
            self.stats.quarantined += 1
            raise PageQuarantinedError(
                f"archive block for page {page_id:#x} is unreadable: {exc}",
                page_id=page_id,
            ) from exc
        self.stats.block_reads += 1
        self._cache[page_id] = page
        while len(self._cache) > self.config.max_cached_pages:
            self._cache.popitem(last=False)
        return page

    # -- candidate selection ----------------------------------------------

    def _horizon(self) -> Timestamp:
        ticks_back = int(self.config.cold_ms // TICK_MS)
        return Timestamp(max(0, self.engine.clock.tick - ticks_back), 0)

    def _peek_page(self, pid: int):
        """Read a page without disturbing the buffer pool (scrubber idiom).

        The migration pass inspects every history page each step; pulling
        them all through the pool would flush the foreground's working set
        on every checkpoint.  Cached pages are served from their frame
        (they may be dirty); everything else decodes straight from disk.
        """
        buffer = self.engine.buffer
        if buffer.contains(pid):
            return buffer.get_page(pid)
        return decode_page(self.engine.disk.read_page(pid))

    def _iter_leaves(self, btree):
        """Walk a table's current leaves without touching the buffer pool.

        ``BTree.leaves()`` pulls every leaf through the pool, which would
        evict the foreground's working set on each migration step.  This
        walk descends to the leftmost leaf and follows the sibling chain
        entirely through :meth:`_peek_page`.
        """
        from repro.access.btree import BTreeIndexPage

        node = self._peek_page(btree.root_pid)
        while isinstance(node, BTreeIndexPage):
            node = self._peek_page(node.children[0])
        while isinstance(node, DataPage):
            yield node
            next_pid = node.next_leaf_id
            if not next_pid:
                return
            node = self._peek_page(next_pid)

    def _scan(self) -> tuple[list[int], dict[int, list[int]]]:
        """Find migratable pages and who points at them.

        Returns (candidates ordered oldest-end-time-first, {pid: referrer
        pids}).  The referrer map is rebuilt fresh every step because key
        splits make sibling leaves share history-chain suffixes — every
        link must be rewritten before a page can be freed.
        """
        horizon = self._horizon()
        referrers: dict[int, list[int]] = {}
        info: dict[int, tuple[Timestamp, bool]] = {}
        for table in self.engine.tables.values():
            if not table.schema.immortal or table.history_index is not None:
                continue
            for leaf in self._iter_leaves(table.btree):
                prev_pid = leaf.page_id
                pid = leaf.history_page_id
                while pid != NO_PAGE and not pid & ARCHIVE_PID_BIT:
                    referrers.setdefault(pid, []).append(prev_pid)
                    if pid in info:
                        break  # shared suffix: deeper links already walked
                    page = self._peek_page(pid)
                    migratable = (
                        isinstance(page, DataPage)
                        and page.is_history
                        and page.end_ts <= horizon
                        and not page.has_unstamped_records()
                        and (
                            page.history_page_id == NO_PAGE
                            or page.history_page_id & ARCHIVE_PID_BIT
                        )
                    )
                    info[pid] = (page.end_ts, migratable)
                    prev_pid = pid
                    pid = page.history_page_id
        candidates = sorted(
            (pid for pid, (_, ok) in info.items() if ok),
            key=lambda pid: (info[pid][0], pid),
        )
        return candidates, referrers

    # -- migration ---------------------------------------------------------

    def step(self, budget: int | None = None) -> int:
        """Migrate up to ``budget`` cold pages; returns how many moved."""
        budget = self.config.pages_per_step if budget is None else budget
        if budget <= 0:
            return 0
        candidates, referrers = self._scan()
        if not candidates:
            return 0
        buffer = self.engine.buffer
        disk = self.engine.disk
        run: RunMeta | None = None
        migrated = 0
        for pid in candidates[:budget]:
            fire("archive.migrate.select")
            if buffer.is_dirty(pid):
                buffer.flush_page(pid)
            page = self._peek_page(pid)
            blob = encode_block(page)
            if run is None:
                run = RunMeta(run_id=self.next_run_id, level=0)
                self.next_run_id += 1
                self.runs[run.run_id] = run
            fire("archive.migrate.append")
            record = self.store.append_block(blob)
            block_idx = len(run.blocks)
            run.blocks.append(
                BlockMeta(
                    record=record,
                    length=len(blob),
                    raw_bytes=page.used_bytes,
                    key_low=page.min_key or b"",
                    key_high=page.max_key or b"",
                    t_low=page.split_ts,
                    t_high=page.end_ts,
                )
            )
            ref_index = len(self.refs)
            self.refs.append((run.run_id, block_idx))
            ref_pid = ARCHIVE_PID_BIT | ref_index
            self.store.append_manifest(self._manifest_doc())
            fire("archive.migrate.sync")
            self.store.sync()
            self.stats.blocks_written += 1
            # The archive copy is durable; now move every link, then free.
            fire("archive.migrate.relink")
            for rpid in referrers.get(pid, ()):
                if buffer.contains(rpid):
                    referrer = buffer.get_page(rpid)
                    if referrer.history_page_id == pid:
                        referrer.history_page_id = ref_pid
                        buffer.mark_dirty_page(referrer)
                        buffer.flush_page(rpid)
                else:
                    # Uncached referrer: write through directly, pool
                    # untouched (same durability — a full-image write).
                    referrer = decode_page(disk.read_page(rpid))
                    if (
                        isinstance(referrer, DataPage)
                        and referrer.history_page_id == pid
                    ):
                        referrer.history_page_id = ref_pid
                        disk.write_page(rpid, referrer.to_bytes())
            fire("archive.migrate.free")
            if buffer.contains(pid):
                buffer.discard_page(pid)
            disk.write_page(pid, bytes(disk.page_size))
            disk.free_list.add(pid)
            self.stats.pages_migrated += 1
            self.stats.pages_freed += 1
            migrated += 1
        if migrated:
            self._maybe_merge()
            self._maybe_compact()
            # Cached routes and page views may still name migrated pids.
            if self.engine.route_cache is not None:
                self.engine.route_cache.clear()
            if self.engine.page_views is not None:
                self.engine.page_views.clear()
            self.engine._save_meta()
        return migrated

    def drain(self, max_steps: int = 1000) -> int:
        """Run steps until no candidate remains; returns pages migrated."""
        total = 0
        for _ in range(max_steps):
            moved = self.step()
            if moved == 0:
                break
            total += moved
        return total

    # -- levelled merging --------------------------------------------------

    def _maybe_merge(self) -> None:
        """Consolidate under-filled runs, lstore MERGE_THRESHOLD style."""
        level = 0
        while True:
            peers = sorted(
                (run for run in self.runs.values() if run.level == level),
                key=lambda run: run.run_id,
            )
            if len(peers) < self.config.merge_threshold:
                return
            fire("archive.migrate.merge")
            merged = RunMeta(run_id=self.next_run_id, level=level + 1)
            self.next_run_id += 1
            remap: dict[tuple[int, int], tuple[int, int]] = {}
            for old in peers:
                for block_idx, meta in enumerate(old.blocks):
                    blob = self.store.read_block(meta.record)
                    record = self.store.append_block(blob)
                    remap[(old.run_id, block_idx)] = (
                        merged.run_id, len(merged.blocks)
                    )
                    merged.blocks.append(
                        BlockMeta(
                            record=record,
                            length=meta.length,
                            raw_bytes=meta.raw_bytes,
                            key_low=meta.key_low,
                            key_high=meta.key_high,
                            t_low=meta.t_low,
                            t_high=meta.t_high,
                        )
                    )
            for old in peers:
                del self.runs[old.run_id]
            self.runs[merged.run_id] = merged
            self.refs = [remap.get(entry, entry) for entry in self.refs]
            self.store.append_manifest(self._manifest_doc())
            self.store.sync()
            self.stats.merges += 1
            level += 1

    # -- compaction --------------------------------------------------------

    @property
    def dead_bytes(self) -> int:
        """Store payload bytes no live run references (merge leftovers,
        superseded manifests — everything :meth:`compact` would reclaim)."""
        return max(0, self.store.appended_bytes - self.bytes_stored)

    def _maybe_compact(self) -> None:
        ratio = self.config.compact_ratio
        if ratio <= 0.0:
            return
        total = self.store.appended_bytes
        dead = self.dead_bytes
        if total <= 0 or dead < self.config.compact_min_bytes:
            return
        if dead / total >= ratio:
            self.compact()

    def compact(self) -> int:
        """Rewrite the store down to its live records; returns bytes freed.

        Merges copy blocks forward and every migration appends a manifest
        snapshot, so the append-only store accumulates records nothing
        references.  Compaction rebuilds the whole log from the live block
        set plus one fresh manifest, prepares it as a fsynced sidecar, and
        atomically swaps it over the old file
        (:meth:`~repro.archive.store.ArchiveStore.rewrite_commit`).

        Crash-atomicity (each stage below has an ``archive.compact.*``
        failpoint; the crashtest kills the process between any two):

        * before the swap (``begin``/``write``/``sync``) — the live log is
          untouched; a leftover sidecar is deleted on reopen.  Recovery
          reads the old manifest; nothing moved.
        * at/after the swap (``swap``/``done``) — the new log is complete
          and durable (the sidecar was fsynced before ``os.replace``);
          recovery reads the fresh manifest, whose remapped record indices
          address the rewritten sequence.  Ref pids, run ids and block
          payloads are all unchanged, so on-disk page links stay valid.
        """
        fire("archive.compact.begin")
        # Anything still buffered must reach the old log first: the rewrite
        # adopts only what it is given, and the caller's manifest/refs may
        # describe those records.
        self.store.sync()
        before = self.store.appended_bytes
        fire("archive.compact.write")
        records: list[tuple[int, bytes]] = []
        remap: dict[int, int] = {}  # old record index -> rewritten index
        for rid in sorted(self.runs):
            for meta in self.runs[rid].blocks:
                remap[meta.record] = len(records)
                records.append(
                    (RECORD_BLOCK, self.store.read_block(meta.record))
                )
        doc = self._manifest_doc()
        for run_doc in doc["runs"]:
            for block_doc in run_doc["blocks"]:
                block_doc[0] = remap[block_doc[0]]
        records.append((
            RECORD_MANIFEST,
            json.dumps(doc, separators=(",", ":"), sort_keys=True).encode(),
        ))
        fire("archive.compact.sync")
        self.store.rewrite_prepare(records)
        fire("archive.compact.swap")
        self.store.rewrite_commit(records)
        # The swap is durable; adopt the rewritten indices in memory.
        # (A crash from here on reloads the same mapping from the fresh
        # manifest, so the in-memory and durable views agree either way.)
        for rid in sorted(self.runs):
            for meta in self.runs[rid].blocks:
                meta.record = remap[meta.record]
        reclaimed = max(0, before - self.store.appended_bytes)
        self.stats.compactions += 1
        self.stats.bytes_reclaimed += reclaimed
        fire("archive.compact.done")
        return reclaimed

    # -- crash / recovery --------------------------------------------------

    def on_crash(self) -> None:
        """Simulated power loss: lose volatile state, keep the durable store."""
        self.store.crash()
        self._cache.clear()
        self.quarantined.clear()
        self._load_manifest()

    def after_recovery(self) -> None:
        """Rebuild post-redo state: manifest, then free-list validation.

        A pid from the durable catalog stays free only if its disk image
        is blank (zero-filled at free time; the CRC field is excluded
        because checksums are stamped at write) and the buffer holds no
        frame for it — anything else means redo resurrected the page or
        the free never completed, and reusing the pid could double-home
        two pages.
        """
        self._cache.clear()
        self.quarantined.clear()
        self._load_manifest()
        disk = self.engine.disk
        free_list = disk.free_list
        free_list.replace(self.engine.catalog.free_pids)
        kept: list[int] = []
        for pid in free_list.to_list():
            if pid <= 0 or pid >= disk.page_count:
                continue
            if self.engine.buffer.contains(pid):
                continue
            try:
                raw = disk.read_page(pid)
            except Exception:
                continue
            before = raw[:CHECKSUM_OFFSET]
            after = raw[CHECKSUM_OFFSET + CHECKSUM_SIZE :]
            if not any(before) and not any(after):
                kept.append(pid)
        free_list.replace(kept)

    def close(self) -> None:
        self.store.close()
