"""Failpoints: named, deterministic fault-trigger points.

The engine's hot seams call ``fire("seam.name")``.  With no registry
installed that is a global load and a ``None`` check — it performs no I/O,
touches no counters, and therefore cannot perturb the benchmark cost model.
With a registry installed, every crossing is counted (globally and
per-name) and matched against the armed rules:

* ``crash_at(k)`` — raise :class:`SimulatedCrash` at the *k*-th global
  crossing, whatever its name.  This is the primitive the crash-point
  exploration harness replays failures with.
* ``crash_on(name, hit=n)`` — crash the *n*-th time a named point fires.
* ``on(name, action, hit=..., probability=...)`` — run an arbitrary action;
  ``probability`` draws from the registry's seeded RNG, so a given seed
  always produces the same fire schedule over the same workload.

:class:`SimulatedCrash` deliberately derives from :class:`BaseException`,
not :class:`Exception`: a failpoint crash models an instant process kill,
and no ``except Exception`` handler inside the engine may absorb it — just
as no handler survives a power failure.  Harness code catches it by name at
the top level, then runs ``db.crash()`` / ``db.recover()``.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator


class SimulatedCrash(BaseException):
    """An armed failpoint fired: treat the process as killed right here."""

    def __init__(self, crossing: int, name: str) -> None:
        super().__init__(f"simulated crash at crossing {crossing} ({name})")
        self.crossing = crossing
        self.name = name


@dataclass(frozen=True)
class FireEvent:
    """What an action sees: which point fired, and when."""

    name: str
    crossing: int   # 0-based global crossing index across all failpoints
    hit: int        # 1-based per-name hit count


Action = Callable[[FireEvent], None]


def crash_action(event: FireEvent) -> None:
    """The standard action: kill the process at this crossing."""
    raise SimulatedCrash(event.crossing, event.name)


@dataclass
class _Rule:
    name: str                      # exact failpoint name, or "*" for any
    action: Action
    hit: int | None = None         # fire only on this per-name hit count
    probability: float | None = None   # else fire with this seeded chance
    once: bool = False             # disarm after the first firing
    spent: bool = False

    def wants(self, event: FireEvent, rng: random.Random) -> bool:
        if self.spent:
            return False
        if self.name != "*" and self.name != event.name:
            return False
        if self.hit is not None and event.hit != self.hit:
            return False
        if self.probability is not None and rng.random() >= self.probability:
            return False
        return True


class FailpointRegistry:
    """Counts failpoint crossings and runs the rules armed on them."""

    def __init__(self, seed: int | None = None) -> None:
        self.rng = random.Random(seed)
        self.hits: dict[str, int] = {}
        self.crossings = 0
        self.trace: list[str] | None = None
        self._crash_at: int | None = None
        self._rules: list[_Rule] = []

    # -- arming -------------------------------------------------------------

    def trace_on(self) -> None:
        """Record every crossing's name, in order (enumeration mode)."""
        self.trace = []

    def crash_at(self, crossing: int) -> None:
        """Arm a one-shot crash at a global crossing index."""
        self._crash_at = crossing

    def crash_on(self, name: str, *, hit: int = 1) -> None:
        """Arm a one-shot crash on the ``hit``-th firing of ``name``."""
        self.on(name, crash_action, hit=hit, once=True)

    def on(
        self,
        name: str,
        action: Action,
        *,
        hit: int | None = None,
        probability: float | None = None,
        once: bool = False,
    ) -> None:
        """Arm an arbitrary action on a named point (``"*"`` = any point)."""
        self._rules.append(
            _Rule(name=name, action=action, hit=hit,
                  probability=probability, once=once)
        )

    def disarm(self) -> None:
        """Drop every armed rule (counters and trace are kept)."""
        self._crash_at = None
        self._rules.clear()

    # -- firing -------------------------------------------------------------

    def fire(self, name: str) -> None:
        hit = self.hits.get(name, 0) + 1
        self.hits[name] = hit
        crossing = self.crossings
        self.crossings += 1
        if self.trace is not None:
            self.trace.append(name)
        if self._crash_at is not None and crossing == self._crash_at:
            self._crash_at = None
            raise SimulatedCrash(crossing, name)
        if not self._rules:
            return
        event = FireEvent(name, crossing, hit)
        for rule in self._rules:
            if rule.wants(event, self.rng):
                if rule.once:
                    rule.spent = True
                rule.action(event)


# ---------------------------------------------------------------------------
# Global installation: the engine's seams call the module-level fire().
# ---------------------------------------------------------------------------

_registry: FailpointRegistry | None = None


def fire(name: str) -> None:
    """Cross the named failpoint (no-op unless a registry is installed)."""
    reg = _registry
    if reg is not None:
        reg.fire(name)


def install(registry: FailpointRegistry) -> None:
    global _registry
    _registry = registry


def uninstall() -> None:
    global _registry
    _registry = None


def installed_registry() -> FailpointRegistry | None:
    return _registry


@contextmanager
def installed(registry: FailpointRegistry) -> Iterator[FailpointRegistry]:
    """``with installed(reg): run_workload()`` — uninstalls on exit."""
    install(registry)
    try:
        yield registry
    finally:
        uninstall()
