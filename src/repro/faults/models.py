"""Media fault models: a corrupting page store and a log-tail mangler.

:class:`FaultyDisk` wraps any :class:`~repro.storage.disk.PageStore` and
injects the classic storage failure modes between the buffer pool and the
real store:

* **torn write** — only a prefix of the 8 KB image reaches the platter; the
  rest keeps the previous image's bytes (or zeros for a fresh page);
* **dropped write** — the write is silently lost in the device cache;
* **bit-rot** — a read returns the stored image with one bit flipped;
* **transient I/O error** — the operation raises
  :class:`~repro.errors.InjectedIOError` once; a retry would succeed.

Faults trigger two ways, both deterministic: one-shot arming
(``disk.arm("torn_write")`` corrupts exactly the next page write) for unit
tests, and seeded per-operation probabilities for soak-style runs.  All
randomness (which fault, where the tear lands, which bit rots) comes from
one ``random.Random(seed)``, so a failing run replays exactly.

Torn and bit-rotten images are *silent* at this layer by design — detection
belongs to the page CRC32 checksums (``page_checksums=True`` on the
engine), which turn them into typed
:class:`~repro.errors.ChecksumError`\\ s on the next read.

:func:`tear_log_tail` mangles the end of a file-backed WAL the way an OS
crash mid-write would: truncating mid-frame or garbling a byte, which the
log's framing CRC must catch on the next open.
"""

from __future__ import annotations

import os
import random
from collections import Counter, deque

from repro.errors import InjectedIOError, PageNotFoundError
from repro.storage.disk import PageStore

READ_FAULTS = ("bitrot_read", "read_error")
WRITE_FAULTS = ("torn_write", "dropped_write", "write_error")
FAULT_KINDS = READ_FAULTS + WRITE_FAULTS


class FaultyDisk(PageStore):
    """A page store that corrupts a wrapped inner store's I/O."""

    def __init__(
        self,
        inner: PageStore,
        *,
        seed: int = 0,
        torn_write_p: float = 0.0,
        dropped_write_p: float = 0.0,
        bitrot_read_p: float = 0.0,
        read_error_p: float = 0.0,
        write_error_p: float = 0.0,
    ) -> None:
        super().__init__(inner.page_size)
        self.inner = inner
        self.rng = random.Random(seed)
        self.probabilities = {
            "torn_write": torn_write_p,
            "dropped_write": dropped_write_p,
            "bitrot_read": bitrot_read_p,
            "read_error": read_error_p,
            "write_error": write_error_p,
        }
        self._armed: deque[str] = deque()
        self.injected: Counter[str] = Counter()

    # -- fault selection ------------------------------------------------------

    def arm(self, kind: str, count: int = 1) -> None:
        """Queue ``count`` one-shot faults; each hits the next matching op."""
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}")
        for _ in range(count):
            self._armed.append(kind)

    def disarm(self) -> None:
        """Drop every queued one-shot fault (probabilities are untouched)."""
        self._armed.clear()

    def _next_fault(self, applicable: tuple[str, ...]) -> str | None:
        if self._armed and self._armed[0] in applicable:
            return self._armed.popleft()
        for kind in applicable:
            p = self.probabilities[kind]
            if p and self.rng.random() < p:
                return kind
        return None

    # -- corrupted backend hooks ----------------------------------------------

    def _read(self, page_id: int) -> bytes:
        fault = self._next_fault(READ_FAULTS)
        if fault == "read_error":
            self.injected[fault] += 1
            raise InjectedIOError(
                f"injected transient read error on page {page_id}",
                page_id=page_id, op="read",
            )
        raw = self.inner._read(page_id)
        if fault == "bitrot_read":
            self.injected[fault] += 1
            pos = self.rng.randrange(len(raw))
            flipped = bytearray(raw)
            flipped[pos] ^= 1 << self.rng.randrange(8)
            raw = bytes(flipped)
        return raw

    def _write(self, page_id: int, raw: bytes) -> None:
        fault = self._next_fault(WRITE_FAULTS)
        if fault == "write_error":
            self.injected[fault] += 1
            raise InjectedIOError(
                f"injected transient write error on page {page_id}",
                page_id=page_id, op="write",
            )
        if fault == "dropped_write":
            self.injected[fault] += 1
            return
        if fault == "torn_write":
            self.injected[fault] += 1
            tear_at = self.rng.randrange(64, self.page_size)
            try:
                old = self.inner._read(page_id)
            except PageNotFoundError:
                old = bytes(self.page_size)
            raw = raw[:tear_at] + old[tear_at:]
        self.inner._write(page_id, raw)

    def _allocate(self) -> int:
        return self.inner._allocate()

    # -- stored-image corruption (for scrubber / repair exercises) ------------

    def corrupt_stored(self, page_id: int, *, mode: str = "bitrot") -> None:
        """Deterministically damage the *stored* image of a page.

        Unlike the transient read faults, this mutates what the inner store
        holds, so every subsequent read sees the damage — the scenario the
        scrubber and single-page restore exist for.  Modes: ``bitrot``
        (flip one bit), ``garbage`` (overwrite a 256-byte run), ``zero``
        (whole-page zeros, a lost sector).
        """
        raw = bytearray(self.inner._read(page_id))
        if mode == "bitrot":
            pos = self.rng.randrange(len(raw))
            raw[pos] ^= 1 << self.rng.randrange(8)
        elif mode == "garbage":
            start = self.rng.randrange(max(1, len(raw) - 256))
            raw[start : start + 256] = bytes(
                self.rng.randrange(256) for _ in range(256)
            )
        elif mode == "zero":
            raw = bytearray(len(raw))
        else:
            raise ValueError(f"unknown corruption mode {mode!r}")
        self.inner._write(page_id, bytes(raw))

    @property
    def page_count(self) -> int:
        return self.inner.page_count

    def close(self) -> None:
        """Release underlying resources (idempotent)."""
        self.inner.close()


NETWORK_FAULT_KINDS = (
    "torn_frame",        # a byte of the request frame flips in flight
    "drop_response",     # request executes; the response never arrives
    "slow_loris",        # the request frame dribbles in one byte at a time
    "dup_deliver",       # the request frame is delivered twice
)


class FaultyWire:
    """Network fault model for the service's framed protocol.

    The transport asks it how to deliver each frame; armed one-shot faults
    perturb exactly the next matching exchange (the crashtest arms one per
    crossing), seeded probabilities support soak runs.  Mirrors
    :class:`FaultyDisk`'s arming discipline so fault schedules replay
    deterministically.

    * ``torn_frame`` — flip one payload byte of the request in flight; the
      receiver's frame CRC must catch it (a typed
      :class:`~repro.errors.TornFrameError`, never a misparse) and the
      connection must close, since framing sync is unrecoverable.
    * ``drop_response`` — the server executes and replies, but the
      connection dies before the response arrives (the classic ambiguous
      ack); the client must retry with the same request id and the
      server's idempotency cache must make that retry exactly-once.
    * ``slow_loris`` — the request frame arrives one byte per feed; the
      incremental decoder must reassemble it (servers additionally bound
      this with idle/request timeouts).
    * ``dup_deliver`` — the request frame is delivered twice back-to-back
      (a retransmit race); the second delivery must dedup.
    """

    def __init__(self, *, seed: int = 0, fault_p: float = 0.0) -> None:
        self.rng = random.Random(seed)
        self.fault_p = fault_p
        self._armed: deque[str] = deque()
        self.injected: Counter[str] = Counter()

    def arm(self, kind: str, count: int = 1) -> None:
        if kind not in NETWORK_FAULT_KINDS:
            raise ValueError(f"unknown network fault kind {kind!r}")
        for _ in range(count):
            self._armed.append(kind)

    def disarm(self) -> None:
        self._armed.clear()

    @property
    def armed(self) -> bool:
        return bool(self._armed)

    def next_fault(self) -> str | None:
        """The fault to apply to the next request exchange, if any."""
        if self._armed:
            kind = self._armed.popleft()
            self.injected[kind] += 1
            return kind
        if self.fault_p and self.rng.random() < self.fault_p:
            kind = NETWORK_FAULT_KINDS[
                self.rng.randrange(len(NETWORK_FAULT_KINDS))
            ]
            self.injected[kind] += 1
            return kind
        return None

    def corrupt(self, frame: bytes) -> bytes:
        """Flip one bit somewhere in the frame (header or payload)."""
        pos = self.rng.randrange(len(frame))
        torn = bytearray(frame)
        torn[pos] ^= 1 << self.rng.randrange(8)
        return bytes(torn)


def tear_log_tail(
    path: str | os.PathLike,
    *,
    drop_bytes: int = 0,
    garble_at: int | None = None,
) -> int:
    """Mangle the tail of a log file like an OS crash mid-write would.

    ``drop_bytes`` truncates that many bytes off the end (a partial final
    write); ``garble_at`` flips one bit at that file offset (negative
    offsets count from the end).  Returns the file's new size.
    """
    with open(path, "r+b") as fh:
        size = os.fstat(fh.fileno()).st_size
        if drop_bytes:
            size = max(0, size - drop_bytes)
            fh.truncate(size)
        if garble_at is not None:
            offset = garble_at if garble_at >= 0 else size + garble_at
            if not 0 <= offset < size:
                raise ValueError(f"garble offset {garble_at} outside file")
            fh.seek(offset)
            byte = fh.read(1)[0]
            fh.seek(offset)
            fh.write(bytes([byte ^ 0x01]))
        fh.flush()
        os.fsync(fh.fileno())
    return size
