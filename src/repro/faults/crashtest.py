"""Crash-point exploration: crash everywhere, recover, verify — repeatably.

The harness answers the paper's hardest question empirically: does lazy
timestamping (whose persistence is *never* logged) plus ARIES-style
recovery keep the database — current state **and** history — correct when
the process dies at an arbitrary instruction, not just at a quiescent
transaction boundary?

Protocol:

1. **Enumerate** — run a seeded workload once with a tracing
   :class:`~repro.faults.failpoints.FailpointRegistry` installed, recording
   every failpoint crossing (commit stages, log appends/forces, buffer
   flushes/evictions, checkpoint phases, page writes).
2. **Explore** — for each crossing *k*, re-run the identical workload from
   scratch, crash (raise ``SimulatedCrash``) at crossing *k*, then run
   ``db.crash()`` / ``db.recover()`` and check:

   * ``verify_integrity(db, strict=True)`` stays clean;
   * the current state equals the shadow oracle's committed model (with the
     one permitted ambiguity: a transaction whose commit record may or may
     not have become durable before the crash);
   * every as-of mark captured before the crash still reproduces exactly.

3. **Replay** — any failure prints a one-line repro command carrying only
   the seed and the crossing index.

Run it: ``PYTHONPATH=src python -m repro.faults.crashtest --seed 0``.
"""

from __future__ import annotations

import argparse
import random
import sys
from collections import Counter
from dataclasses import dataclass, field, replace

from repro.clock import Timestamp
from repro.core.engine import ImmortalDB
from repro.errors import ConnectionLostError
from repro.core.integrity import IntegrityError, verify_integrity
from repro.core.rowcodec import ColumnType
from repro.core.table import Table
from repro.faults.failpoints import FailpointRegistry, SimulatedCrash, installed
from repro.faults.models import (
    FAULT_KINDS,
    NETWORK_FAULT_KINDS,
    FaultyDisk,
    FaultyWire,
)
from repro.repair.scrub import Scrubber
from repro.storage.disk import InMemoryDisk

TABLE = "crash"

#: stored-image corruption modes exercised by the media-fault sweep
CORRUPT_MODES = ("bitrot", "garbage", "zero")


@dataclass(frozen=True)
class CrashTestConfig:
    """One deterministic workload: everything derives from the seed."""

    seed: int = 0
    # The defaults are sized so one run crosses every interesting seam:
    # ~700-byte rows over 24 hot keys force time splits, a key split, and a
    # root growth, and 8 buffer frames force mid-transaction evictions.
    transactions: int = 90
    keys: int = 24
    checkpoint_every: int = 7
    mark_every: int = 5
    buffer_pages: int = 8
    value_pad: int = 700
    group_commit_window: int = 1
    route_cache: bool = False
    # Buffer-management knobs under test since PR 6: a non-default eviction
    # policy changes *which* page is mid-flight when the crash lands, and
    # flush_batch > 1 routes write-backs through the batched path, putting
    # crossings between a batch's single log force and each page write.
    eviction: str = "lru"
    flush_batch: int = 0
    # Media-fault mode: run on a FaultyDisk with checksums, write
    # verification, transient-IO retry and media recovery enabled; instead
    # of crashing at a crossing, inject a one-shot disk fault there and
    # demand the run *completes* correctly, then corrupt a stored page and
    # demand the scrubber restores it byte-identically.
    media_faults: bool = False
    # Archive mode (PR 7): cold-history tiering on, with a horizon short
    # enough that checkpoints migrate pages mid-workload — adding
    # archive.migrate.* / archive.read.* crossings so crashes land inside
    # the migration protocol (between append/sync/relink/free) and during
    # block materialization.
    archive: bool = False
    # Service mode (PR 8): drive the workload through the sans-IO service
    # core over the loopback wire (real framing, real sessions, real
    # admission), so crashes land at the service.* seams too — between a
    # commit and its client-visible ack, inside ingest batching, during a
    # disconnect abort.  The oracle becomes strictly ack-based: only a
    # response the client actually decoded counts as committed.
    service: bool = False
    # Service-fault mode: instead of crashing, arm one network fault
    # (kind = crossing % 4: torn frame, dropped response, slow-loris,
    # duplicate delivery) at the crossing; the client's retry discipline
    # plus the server's idempotency cache must absorb it — the workload
    # completes and matches the oracle *exactly*.
    service_faults: bool = False
    # Shard mode (PR 10): run the workload against a range-sharded
    # ShardRouter (N engines, shared timestamp authority, presumed-abort
    # 2PC for cross-shard writes).  Every third mutation touches two
    # shards atomically, so crashes land inside the 2PC protocol — between
    # prepare forces, around the coordinator's decision force, during the
    # commit fan-out — and recovery must honour the ack-based contract
    # *cluster-wide*: an acked mutation is visible on every shard, an
    # un-acked one is all-or-nothing (never split across shards).
    shards: int = 0

    def repro_args(self, crossing: int) -> str:
        parts = [f"--seed {self.seed}"]
        if self.media_faults:
            parts.append("--media-faults")
        if self.service:
            parts.append("--service")
        if self.service_faults:
            parts.append("--service-faults")
        if self.transactions != CrashTestConfig.transactions:
            parts.append(f"--transactions {self.transactions}")
        if self.keys != CrashTestConfig.keys:
            parts.append(f"--keys {self.keys}")
        if self.group_commit_window != CrashTestConfig.group_commit_window:
            parts.append(f"--group-commit {self.group_commit_window}")
        if self.route_cache:
            parts.append("--route-cache")
        if self.eviction != CrashTestConfig.eviction:
            parts.append(f"--eviction {self.eviction}")
        if self.flush_batch != CrashTestConfig.flush_batch:
            parts.append(f"--flush-batch {self.flush_batch}")
        if self.archive:
            parts.append("--archive")
        if self.shards:
            parts.append(f"--shards {self.shards}")
        parts.append(f"--crash-point {crossing}")
        return " ".join(parts)


class ShadowOracle:
    """Pure-Python model of what must survive a crash.

    ``committed`` tracks durably-acknowledged commits; ``pending`` the single
    in-flight mutation.  A crash inside commit processing leaves exactly two
    legal outcomes (commit record durable or not), so acceptance is "current
    state ∈ {committed, committed+pending}".  As-of marks are only taken
    between transactions, so they must always reproduce exactly.

    With **group commit** (``group_mode``), a driver-observed commit is only
    *volatile*: its mutation moves to the ``enqueued`` list and reaches
    ``committed`` when the engine's durable-commit hook fires
    (:meth:`on_durable`).  A crash can then lose any un-acked suffix of the
    batch, so the acceptable states widen to every prefix of ``enqueued``
    applied on top of ``committed`` (plus ``pending`` at the end).
    """

    def __init__(self) -> None:
        self.committed: dict[int, str] = {}
        self.marks: list[tuple[Timestamp, dict[int, str]]] = []
        self.pending: dict[int, str | None] | None = None
        self.group_mode = False
        self.enqueued: list[dict[int, str | None]] = []

    def begin(self, mutation: dict[int, str | None]) -> None:
        self.pending = mutation

    def commit_observed(self) -> None:
        if self.group_mode:
            # The durable hook may already have consumed pending (the window
            # filled during this very commit call); otherwise the commit is
            # volatile until the next force acks it.
            if self.pending is not None:
                self.enqueued.append(self.pending)
                self.pending = None
            return
        assert self.pending is not None
        self._apply(self.committed, self.pending)
        self.pending = None

    def on_durable(self) -> None:
        """Engine hook: the next volatile commit just became durable."""
        if self.enqueued:
            self._apply(self.committed, self.enqueued.pop(0))
        elif self.pending is not None:
            # Ack arrived inside the driver's commit call, before
            # commit_observed could move pending into the queue.
            self._apply(self.committed, self.pending)
            self.pending = None

    def mark(self, ts: Timestamp) -> None:
        self.marks.append((ts, dict(self.committed)))

    @staticmethod
    def _apply(state: dict[int, str], mutation: dict[int, str | None]) -> None:
        for key, value in mutation.items():
            if value is None:
                state.pop(key, None)
            else:
                state[key] = value

    def acceptable_states(self) -> list[dict[int, str]]:
        states = [dict(self.committed)]
        cursor = dict(self.committed)
        for mutation in self.enqueued:
            cursor = dict(cursor)
            self._apply(cursor, mutation)
            if cursor not in states:
                states.append(cursor)
        if self.pending is not None:
            extra = dict(cursor)
            self._apply(extra, self.pending)
            if extra not in states:
                states.append(extra)
        return states


def build_db(config: CrashTestConfig) -> tuple[ImmortalDB, Table]:
    """A fresh in-memory database with the harness table (not yet armed)."""
    # A ~500 ms horizon (25 ticks) with the workload's 5-250 ms time
    # advances guarantees checkpoints find cold pages to migrate, so the
    # enumerate pass crosses every archive.migrate.* stage.
    # compact_ratio 0.2 with a tiny floor makes the store compact as soon
    # as merges leave dead records behind, so the enumerate pass also
    # crosses every archive.compact.* stage.
    archive = (
        {"cold_ms": 500.0, "pages_per_step": 4, "merge_threshold": 4,
         "auto": True, "compact_ratio": 0.2, "compact_min_bytes": 256}
        if config.archive else None
    )
    if config.media_faults:
        db = ImmortalDB(
            disk=FaultyDisk(InMemoryDisk(), seed=config.seed),
            buffer_pages=config.buffer_pages,
            group_commit_window=config.group_commit_window,
            asof_route_cache=config.route_cache,
            page_checksums=True,
            media_recovery=True,
            io_retries=3,
            eviction=config.eviction,
            flush_batch=config.flush_batch,
            archive=archive,
        )
    else:
        db = ImmortalDB(
            buffer_pages=config.buffer_pages,
            group_commit_window=config.group_commit_window,
            asof_route_cache=config.route_cache,
            eviction=config.eviction,
            flush_batch=config.flush_batch,
            archive=archive,
        )
    table = db.create_table(
        TABLE,
        [("k", ColumnType.INT), ("v", ColumnType.TEXT)],
        key="k",
        immortal=True,
    )
    return db, table


def run_workload(
    db: ImmortalDB, table: Table, config: CrashTestConfig, oracle: ShadowOracle
) -> None:
    """The seeded single-writer workload; identical run-to-run by design.

    Explicit begin/commit (never ``with db.transaction()``): the context
    manager's exception path would *abort* the transaction after a
    simulated crash — post-mortem work a real dead process cannot do.
    """
    if config.group_commit_window > 1:
        oracle.group_mode = True
        db.txn_mgr.durable_commit_hook = lambda txn: oracle.on_durable()
    rng = random.Random(config.seed)
    # The oracle's view of the durably-committed key set; with group commit,
    # oracle.committed lags the driver (volatile commits are in the queue),
    # so the workload's branch decisions consult the driver-side view.
    observed: dict[int, bool] = {}
    for i in range(config.transactions):
        db.advance_time(rng.uniform(5.0, 250.0))
        key = rng.randrange(config.keys)
        delete = observed.get(key, False) and rng.random() < 0.2
        value = None if delete \
            else f"s{config.seed}i{i}" + "x" * rng.randrange(config.value_pad)
        oracle.begin({key: value})
        txn = db.begin()
        if value is None:
            table.delete(txn, key)
        elif observed.get(key, False):
            table.update(txn, key, {"v": value})
        else:
            table.insert(txn, {"k": key, "v": value})
        db.commit(txn)
        oracle.commit_observed()
        observed[key] = value is not None
        if i % config.mark_every == config.mark_every - 1:
            # Settle the batch so the mark snapshots a durable state (a
            # no-op when group commit is off or the queue is empty).
            db.flush_commits()
            oracle.mark(db.now())
            if config.route_cache and oracle.marks:
                # Probe an earlier mark mid-workload: this warms the as-of
                # route cache (adding asof.route.* crossings to explore)
                # and checks it live against the oracle's snapshot.
                ts, snapshot = oracle.marks[
                    rng.randrange(len(oracle.marks))
                ]
                probed = {r["k"]: r["v"] for r in table.scan_as_of(ts)}
                if probed != snapshot:
                    raise AssertionError(
                        f"mid-workload as-of divergence at {ts}: "
                        f"{probed!r} != {snapshot!r}"
                    )
        if i % config.checkpoint_every == config.checkpoint_every - 1:
            db.checkpoint(flush=(i // config.checkpoint_every) % 2 == 0)


def enumerate_crossings(config: CrashTestConfig) -> list[str]:
    """Run the workload once, uncrashed; return every crossing's name."""
    db, table = build_db(config)
    registry = FailpointRegistry()
    registry.trace_on()
    with installed(registry):
        run_workload(db, table, config, ShadowOracle())
    assert registry.trace is not None
    return registry.trace


@dataclass
class CrashReport:
    """Outcome of crashing at one crossing and recovering."""

    crossing: int
    name: str
    crashed: bool
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems


def _current_state(db: ImmortalDB, table: Table) -> dict[int, str]:
    txn = db.begin()
    got = {row["k"]: row["v"] for row in table.scan(txn)}
    db.commit(txn)
    return got


def replay_crash_point(config: CrashTestConfig, crossing: int) -> CrashReport:
    """Crash at one crossing, recover, and verify every invariant."""
    db, table = build_db(config)
    oracle = ShadowOracle()
    registry = FailpointRegistry()
    registry.crash_at(crossing)
    crashed = False
    name = "<workload end>"
    try:
        with installed(registry):
            run_workload(db, table, config, oracle)
    except SimulatedCrash as crash:
        crashed = True
        name = crash.name
    report = CrashReport(crossing=crossing, name=name, crashed=crashed)
    if not crashed:
        report.problems.append(
            f"crossing {crossing} was never reached "
            f"(workload has {registry.crossings} crossings)"
        )
        return report

    db.crash()
    db.recover()
    table = db.table(TABLE)

    try:
        verify_integrity(db, strict=True)
    except IntegrityError as exc:
        report.problems.append(f"integrity: {exc}")

    got = _current_state(db, table)
    acceptable = oracle.acceptable_states()
    if got not in acceptable:
        report.problems.append(
            f"current-state divergence: recovered {got!r}, "
            f"acceptable {acceptable!r}"
        )
    for ts, snapshot in oracle.marks:
        as_of = {row["k"]: row["v"] for row in table.scan_as_of(ts)}
        if as_of != snapshot:
            report.problems.append(
                f"as-of divergence at {ts}: recovered {as_of!r}, "
                f"expected {snapshot!r}"
            )
    return report


def replay_media_point(config: CrashTestConfig, crossing: int) -> CrashReport:
    """Inject one disk fault at a crossing; the engine must absorb it.

    Two phases, both derived from the crossing index alone (so a failure
    repro needs only the seed and the crossing, exactly like crash mode):

    1. **Inline fault.** A one-shot fault of kind
       ``FAULT_KINDS[crossing % 5]`` is armed when execution reaches
       crossing ``crossing``, hitting the next matching disk op.  Every
       kind has an inline defense — transient IO errors are retried with
       backoff, bitrot reads are restored by the buffer's fault handler,
       torn and dropped writes are caught by write verification — so the
       workload must run to *completion* (no crash, no escape) and match
       the oracle exactly.
    2. **Latent corruption at rest.** After quiescing, the *stored* image
       of page ``crossing % page_count`` is damaged (mode rotates through
       bitrot/garbage/zero) and a scrubber pass runs.  The scrubber must
       find the damage, restore the page byte-identically from backup +
       archived log records, and come back clean on a second pass.
    """
    db, table = build_db(config)
    disk: FaultyDisk = db.disk  # type: ignore[assignment]
    oracle = ShadowOracle()
    registry = FailpointRegistry()
    kind = FAULT_KINDS[crossing % len(FAULT_KINDS)]
    armed = [False]

    def arm(event) -> None:
        if event.crossing == crossing and not armed[0]:
            armed[0] = True
            disk.arm(kind)

    registry.on("*", arm)
    report = CrashReport(
        crossing=crossing, name=f"{kind}@{crossing}", crashed=False
    )
    try:
        with installed(registry):
            run_workload(db, table, config, oracle)
            db.flush_commits()
            db.buffer.flush_all()
    except Exception as exc:  # noqa: BLE001 - any escape is a finding
        report.problems.append(
            f"workload did not absorb injected {kind}: {exc!r}"
        )
        return report
    if not armed[0]:
        report.problems.append(
            f"crossing {crossing} was never reached "
            f"(workload has {registry.crossings} crossings)"
        )
        return report
    report.crashed = True  # in media mode: "the fault was armed"
    # A fault armed very late may find no matching op left in the run;
    # drop it so phase 2 stays deterministic (it proved nothing either way).
    disk.disarm()

    target = crossing % disk.page_count
    mode = CORRUPT_MODES[(crossing // len(FAULT_KINDS)) % len(CORRUPT_MODES)]
    good = disk.inner._read(target)
    disk.corrupt_stored(target, mode=mode)
    scrubber = Scrubber(db)
    findings = scrubber.full_pass()
    if not any(f.page_id == target for f in findings):
        report.problems.append(
            f"scrubber missed {mode} corruption on page {target}"
        )
    repaired = disk.inner._read(target)
    if repaired != good:
        report.problems.append(
            f"page {target} not byte-identical after {mode} repair"
        )
    leftover = scrubber.full_pass()
    if leftover:
        report.problems.append(
            f"second scrub pass not clean: "
            f"{sorted({(f.kind, f.page_id) for f in leftover})}"
        )

    try:
        verify_integrity(db, strict=True)
    except IntegrityError as exc:
        report.problems.append(f"integrity: {exc}")
    got = _current_state(db, table)
    acceptable = oracle.acceptable_states()
    if got not in acceptable:
        report.problems.append(
            f"current-state divergence: got {got!r}, "
            f"acceptable {acceptable!r}"
        )
    for ts, snapshot in oracle.marks:
        as_of = {row["k"]: row["v"] for row in table.scan_as_of(ts)}
        if as_of != snapshot:
            report.problems.append(
                f"as-of divergence at {ts}: got {as_of!r}, "
                f"expected {snapshot!r}"
            )
    return report


# ---------------------------------------------------------------------------
# Service mode: the same contract, across a failure-prone wire
# ---------------------------------------------------------------------------


def _build_service(config: CrashTestConfig):
    """A fresh engine fronted by a sans-IO service core over loopback."""
    from repro.service.core import ServiceCore
    from repro.service.transport import LoopbackConnection

    db, table = build_db(config)
    core = ServiceCore(db)   # inline execution: crashes propagate in-stack
    wire = FaultyWire(seed=config.seed) if config.service_faults else None
    conn = LoopbackConnection(
        core, wire=wire, client_key=f"crash-s{config.seed}"
    )
    return db, table, core, conn, wire


def run_service_workload(
    db: ImmortalDB,
    config: CrashTestConfig,
    oracle: ShadowOracle,
    conn,
) -> None:
    """The seeded workload, driven through the service protocol.

    The oracle is strictly *ack-based*: a mutation counts as committed only
    once the client has decoded an ``ok`` response — which, by the service's
    durability gate, implies the commit record was forced.  A crash mid-
    request leaves the mutation in ``pending`` (the one permitted
    ambiguity).  Every ninth operation opens a transaction bracket, writes
    a poison value, and drops the connection — the abort-on-disconnect
    path; poison must never appear in any verified state.

    As-of marks are ISO datetime strings (the protocol's temporal
    currency): probed live through ``SELECT … AS OF`` over the wire, and
    re-verified post-recovery through the engine, so wire and engine views
    must agree before *and* after the crash.
    """
    rng = random.Random(config.seed)
    observed: dict[int, bool] = {}
    for i in range(config.transactions):
        db.advance_time(rng.uniform(5.0, 250.0))
        key = rng.randrange(config.keys)
        live_keys = [k for k, alive in observed.items() if alive]
        if i % 9 == 4 and live_keys:
            # Mid-transaction disconnect: bracket, write poison, vanish.
            # An injected network fault may kill the bracket before the
            # deliberate drop does — same outcome (abort), so absorb it.
            victim = live_keys[rng.randrange(len(live_keys))]
            try:
                conn.execute("BEGIN TRAN")
                conn.execute(
                    f"UPDATE {TABLE} SET v = 'poison{i}' WHERE k = {victim}"
                )
            except ConnectionLostError:
                pass
            conn.drop_connection()
        delete = observed.get(key, False) and rng.random() < 0.2
        value = None if delete \
            else f"s{config.seed}i{i}" + "x" * rng.randrange(config.value_pad)
        oracle.begin({key: value})
        if value is None:
            sql = f"DELETE FROM {TABLE} WHERE k = {key}"
        elif observed.get(key, False):
            sql = f"UPDATE {TABLE} SET v = '{value}' WHERE k = {key}"
        else:
            sql = f"INSERT INTO {TABLE} (k, v) VALUES ({key}, '{value}')"
        response = conn.execute(sql)
        if response.get("status") != "ok":
            raise AssertionError(
                f"service refused op {i}: {response!r}"
            )
        oracle.commit_observed()
        observed[key] = value is not None
        if i % config.mark_every == config.mark_every - 1:
            db.flush_commits()
            mark = db.clock.now_datetime().isoformat(sep=" ")
            # Advance past the mark's tick so later commits sort after it.
            db.clock.advance_ticks(1)
            oracle.mark(mark)
            probe = conn.execute(
                f"SELECT k, v FROM {TABLE} AS OF '{mark}'"
            )
            if probe.get("status") != "ok":
                raise AssertionError(f"as-of probe failed: {probe!r}")
            live = {row["k"]: row["v"] for row in probe["rows"]}
            if live != oracle.marks[-1][1]:
                raise AssertionError(
                    f"live wire as-of divergence at {mark}: "
                    f"{live!r} != {oracle.marks[-1][1]!r}"
                )
        if i % config.checkpoint_every == config.checkpoint_every - 1:
            db.checkpoint(flush=(i // config.checkpoint_every) % 2 == 0)


def enumerate_service_crossings(config: CrashTestConfig) -> list[str]:
    db, table, core, conn, wire = _build_service(config)
    registry = FailpointRegistry()
    registry.trace_on()
    with installed(registry):
        run_service_workload(db, config, ShadowOracle(), conn)
    assert registry.trace is not None
    return registry.trace


def _verify_marks(report, db, table, oracle) -> None:
    for mark, snapshot in oracle.marks:
        ts = mark if isinstance(mark, Timestamp) else db.to_timestamp(mark)
        as_of = {row["k"]: row["v"] for row in table.scan_as_of(ts)}
        if as_of != snapshot:
            report.problems.append(
                f"as-of divergence at {mark}: recovered {as_of!r}, "
                f"expected {snapshot!r}"
            )


def replay_service_point(config: CrashTestConfig, crossing: int) -> CrashReport:
    """Crash at one crossing of the service-driven workload; verify.

    The binding contract: every mutation the client saw acked must be in
    the recovered state; the single un-acked in-flight mutation may be
    present or absent (never half-applied); poison from dropped brackets
    must be gone; every wire-probed as-of mark reproduces exactly.
    """
    if not config.service:
        config = replace(config, service=True)
    db, table, core, conn, wire = _build_service(config)
    oracle = ShadowOracle()
    registry = FailpointRegistry()
    registry.crash_at(crossing)
    crashed = False
    name = "<workload end>"
    try:
        with installed(registry):
            run_service_workload(db, config, oracle, conn)
    except SimulatedCrash as crash:
        crashed = True
        name = crash.name
    report = CrashReport(crossing=crossing, name=name, crashed=crashed)
    if not crashed:
        report.problems.append(
            f"crossing {crossing} was never reached "
            f"(workload has {registry.crossings} crossings)"
        )
        return report

    db.crash()
    db.recover()
    table = db.table(TABLE)

    try:
        verify_integrity(db, strict=True)
    except IntegrityError as exc:
        report.problems.append(f"integrity: {exc}")

    got = _current_state(db, table)
    acceptable = oracle.acceptable_states()
    if got not in acceptable:
        report.problems.append(
            f"current-state divergence: recovered {got!r}, "
            f"acceptable {acceptable!r}"
        )
    for state in [got] + acceptable:
        for value in state.values():
            if isinstance(value, str) and value.startswith("poison"):
                report.problems.append(
                    f"dropped bracket leaked into state: {value!r}"
                )
    _verify_marks(report, db, table, oracle)
    return report


def replay_service_fault_point(
    config: CrashTestConfig, crossing: int
) -> CrashReport:
    """Inject one network fault at a crossing; the protocol must absorb it.

    Kind rotates with the crossing (torn frame, dropped response,
    slow-loris, duplicate delivery).  Unlike crash mode there is no
    ambiguity budget: the workload must complete, every ack stands, and
    the final state must equal the oracle's committed model exactly —
    proving retries are idempotent and lost responses are replayed from
    the cache, not re-executed.
    """
    if not config.service_faults:
        config = replace(config, service=True, service_faults=True)
    db, table, core, conn, wire = _build_service(config)
    oracle = ShadowOracle()
    registry = FailpointRegistry()
    kind = NETWORK_FAULT_KINDS[crossing % len(NETWORK_FAULT_KINDS)]
    armed = [False]

    def arm(event) -> None:
        if event.crossing == crossing and not armed[0]:
            armed[0] = True
            wire.arm(kind)

    registry.on("*", arm)
    report = CrashReport(
        crossing=crossing, name=f"{kind}@{crossing}", crashed=False
    )
    try:
        with installed(registry):
            run_service_workload(db, config, oracle, conn)
            db.flush_commits()
    except Exception as exc:  # noqa: BLE001 - any escape is a finding
        report.problems.append(
            f"service did not absorb injected {kind}: {exc!r}"
        )
        return report
    if not armed[0]:
        report.problems.append(
            f"crossing {crossing} was never reached "
            f"(workload has {registry.crossings} crossings)"
        )
        return report
    report.crashed = True  # in fault mode: "the fault was armed"

    assert oracle.pending is None
    try:
        verify_integrity(db, strict=True)
    except IntegrityError as exc:
        report.problems.append(f"integrity: {exc}")
    got = _current_state(db, table)
    if got != oracle.committed:
        report.problems.append(
            f"exactly-once violated: state {got!r} != acked {oracle.committed!r}"
        )
    for value in got.values():
        if isinstance(value, str) and value.startswith("poison"):
            report.problems.append(
                f"dropped bracket leaked into state: {value!r}"
            )
    _verify_marks(report, db, table, oracle)
    return report


# ---------------------------------------------------------------------------
# Shard mode: the same contract, across a range-sharded cluster
# ---------------------------------------------------------------------------


def build_cluster(config: CrashTestConfig):
    """A fresh in-memory N-shard cluster with the harness table."""
    from repro.cluster import ShardRouter

    router = ShardRouter.for_int_keys(
        config.shards,
        key_space=config.keys,
        buffer_pages=config.buffer_pages,
        eviction=config.eviction,
        flush_batch=config.flush_batch,
    )
    table = router.create_table(
        TABLE,
        [("k", ColumnType.INT), ("v", ColumnType.TEXT)],
        key="k",
        immortal=True,
    )
    return router, table


def run_shard_workload(
    router, table, config: CrashTestConfig, oracle: ShadowOracle
) -> None:
    """The seeded workload against the cluster.

    Single-shard mutations take the router's fast path (the engine's
    ordinary commit); every third mutation pairs the key with a partner key
    on a *different* shard, committed atomically through presumed-abort 2PC.
    The oracle treats the pair as one mutation, so a crash anywhere inside
    the protocol leaves exactly two acceptable outcomes — both keys updated
    or neither — and a half-applied pair is an atomicity finding.

    Explicit begin/commit for the same reason as the single-engine
    workload: a dead process cannot run the context manager's abort path.
    """
    rng = random.Random(config.seed)
    observed: dict[int, bool] = {}

    def apply_op(txn, key: int, value: str | None) -> None:
        if value is None:
            table.delete(txn, key)
        elif observed.get(key, False):
            table.update(txn, key, {"v": value})
        else:
            table.insert(txn, {"k": key, "v": value})

    for i in range(config.transactions):
        router.advance_time(rng.uniform(5.0, 250.0))
        key = rng.randrange(config.keys)
        delete = observed.get(key, False) and rng.random() < 0.2
        value = None if delete \
            else f"s{config.seed}i{i}" + "x" * rng.randrange(config.value_pad)
        mutation: dict[int, str | None] = {key: value}
        if i % 3 == 2 and config.keys >= 2 * config.shards:
            partner = (key + config.keys // config.shards) % config.keys
            while router.route(partner) is router.route(key):
                partner = (partner + 1) % config.keys
            mutation[partner] = (
                f"s{config.seed}i{i}p" + "x" * rng.randrange(config.value_pad)
            )
        oracle.begin(mutation)
        txn = router.begin()
        for k, v in mutation.items():
            apply_op(txn, k, v)
        router.commit(txn)
        oracle.commit_observed()
        for k, v in mutation.items():
            observed[k] = v is not None
        if i % config.mark_every == config.mark_every - 1:
            router.flush_commits()
            oracle.mark(router.now())
        if i % config.checkpoint_every == config.checkpoint_every - 1:
            router.checkpoint(flush=(i // config.checkpoint_every) % 2 == 0)


def enumerate_shard_crossings(config: CrashTestConfig) -> list[str]:
    router, table = build_cluster(config)
    registry = FailpointRegistry()
    registry.trace_on()
    with installed(registry):
        run_shard_workload(router, table, config, ShadowOracle())
    assert registry.trace is not None
    return registry.trace


def _cluster_state(router, table) -> dict[int, str]:
    txn = router.begin()
    got = {row["k"]: row["v"] for row in table.scan(txn)}
    router.commit(txn)
    return got


def replay_shard_point(config: CrashTestConfig, crossing: int) -> CrashReport:
    """Crash the cluster at one crossing; recover in two stages; verify.

    Stage 1 — ``recover(resolve=False)``: every shard runs ARIES recovery
    but in-doubt prepared transactions stay undecided.  If the crash left
    any, the in-flight mutation's keys must be lock-protected: a writer
    probing them gets the typed ``InDoubtError`` (never a half-visible
    write).  Stage 2 — ``resolve_in_doubt()``: the coordinator's decision
    log (presumed abort) drives every participant to the same outcome, and
    the recovered cluster must satisfy the ack-based contract: every acked
    mutation visible on every shard, the one un-acked mutation
    all-or-nothing, every as-of mark byte-exact, every shard's integrity
    clean under strict checks.
    """
    from repro.errors import ImmortalDBError, InDoubtError

    if not config.shards:
        config = replace(config, shards=2)
    router, table = build_cluster(config)
    oracle = ShadowOracle()
    registry = FailpointRegistry()
    registry.crash_at(crossing)
    crashed = False
    name = "<workload end>"
    try:
        with installed(registry):
            run_shard_workload(router, table, config, oracle)
    except SimulatedCrash as crash:
        crashed = True
        name = crash.name
    report = CrashReport(crossing=crossing, name=name, crashed=crashed)
    if not crashed:
        report.problems.append(
            f"crossing {crossing} was never reached "
            f"(workload has {registry.crossings} crossings)"
        )
        return report

    router.crash()
    router.recover(resolve=False)
    table = router.table(TABLE)

    in_doubt = router.in_doubt_gtids()
    if in_doubt:
        if oracle.pending is None:
            report.problems.append(
                f"in-doubt gtids {sorted(in_doubt)} survive but the oracle "
                f"has no in-flight mutation"
            )
        else:
            blocked = 0
            for k in oracle.pending:
                probe = router.begin()
                try:
                    table.update(probe, k, {"v": "probe"})
                except InDoubtError:
                    blocked += 1
                except ImmortalDBError:
                    pass  # e.g. the pending insert is (correctly) invisible
                finally:
                    router.abort(probe)
            if blocked == 0:
                report.problems.append(
                    f"in-doubt gtids {sorted(in_doubt)} but no pending key "
                    f"is lock-protected"
                )

    router.resolve_in_doubt()

    for shard in router.shards:
        try:
            verify_integrity(shard.db, strict=True)
        except IntegrityError as exc:
            report.problems.append(f"shard {shard.shard_id} integrity: {exc}")

    got = _cluster_state(router, table)
    acceptable = oracle.acceptable_states()
    if got not in acceptable:
        report.problems.append(
            f"cluster-state divergence: recovered {got!r}, "
            f"acceptable {acceptable!r}"
        )
    for ts, snapshot in oracle.marks:
        as_of = {row["k"]: row["v"] for row in table.scan_as_of(ts)}
        if as_of != snapshot:
            report.problems.append(
                f"as-of divergence at {ts}: recovered {as_of!r}, "
                f"expected {snapshot!r}"
            )
    return report


def explore_shards(
    config: CrashTestConfig,
    *,
    max_points: int = 0,
    progress=None,
) -> ExplorationResult:
    """Crash-and-verify at each cluster crossing (or a sample)."""
    names = enumerate_shard_crossings(config)
    indices = _sample(len(names), max_points)
    failures: list[CrashReport] = []
    by_name: Counter = Counter(names[i] for i in indices)
    for n, crossing in enumerate(indices):
        report = replay_shard_point(config, crossing)
        if not report.ok:
            failures.append(report)
        if progress is not None:
            progress(n + 1, len(indices), report)
    return ExplorationResult(
        config=config,
        total_crossings=len(names),
        explored=indices,
        failures=failures,
        by_name=by_name,
    )


@dataclass
class ExplorationResult:
    config: CrashTestConfig
    total_crossings: int
    explored: list[int]
    failures: list[CrashReport]
    by_name: Counter

    @property
    def ok(self) -> bool:
        return not self.failures


def _sample(total: int, max_points: int) -> list[int]:
    """Up to ``max_points`` crossing indices, evenly spread over the run."""
    if max_points <= 0 or total <= max_points:
        return list(range(total))
    step = (total - 1) / (max_points - 1)
    return sorted({round(i * step) for i in range(max_points)})


def explore(
    config: CrashTestConfig,
    *,
    max_points: int = 0,
    progress=None,
) -> ExplorationResult:
    """Enumerate crossings, then crash-and-verify at each (or a sample)."""
    names = enumerate_crossings(config)
    indices = _sample(len(names), max_points)
    failures: list[CrashReport] = []
    by_name: Counter = Counter(names[i] for i in indices)
    for n, crossing in enumerate(indices):
        report = replay_crash_point(config, crossing)
        if not report.ok:
            failures.append(report)
        if progress is not None:
            progress(n + 1, len(indices), report)
    return ExplorationResult(
        config=config,
        total_crossings=len(names),
        explored=indices,
        failures=failures,
        by_name=by_name,
    )


def explore_media(
    config: CrashTestConfig,
    *,
    max_points: int = 0,
    progress=None,
) -> ExplorationResult:
    """Enumerate crossings, then inject-and-verify at each (or a sample)."""
    names = enumerate_crossings(config)
    indices = _sample(len(names), max_points)
    failures: list[CrashReport] = []
    by_name: Counter = Counter(
        FAULT_KINDS[i % len(FAULT_KINDS)] for i in indices
    )
    for n, crossing in enumerate(indices):
        report = replay_media_point(config, crossing)
        if not report.ok:
            failures.append(report)
        if progress is not None:
            progress(n + 1, len(indices), report)
    return ExplorationResult(
        config=config,
        total_crossings=len(names),
        explored=indices,
        failures=failures,
        by_name=by_name,
    )


def explore_service(
    config: CrashTestConfig,
    *,
    max_points: int = 0,
    progress=None,
) -> ExplorationResult:
    """Crash-and-verify at each service crossing (or a sample)."""
    names = enumerate_service_crossings(config)
    indices = _sample(len(names), max_points)
    failures: list[CrashReport] = []
    by_name: Counter = Counter(names[i] for i in indices)
    for n, crossing in enumerate(indices):
        report = replay_service_point(config, crossing)
        if not report.ok:
            failures.append(report)
        if progress is not None:
            progress(n + 1, len(indices), report)
    return ExplorationResult(
        config=config,
        total_crossings=len(names),
        explored=indices,
        failures=failures,
        by_name=by_name,
    )


def explore_service_faults(
    config: CrashTestConfig,
    *,
    max_points: int = 0,
    progress=None,
) -> ExplorationResult:
    """Inject one network fault at each service crossing (or a sample)."""
    names = enumerate_service_crossings(config)
    indices = _sample(len(names), max_points)
    failures: list[CrashReport] = []
    by_name: Counter = Counter(
        NETWORK_FAULT_KINDS[i % len(NETWORK_FAULT_KINDS)] for i in indices
    )
    for n, crossing in enumerate(indices):
        report = replay_service_fault_point(config, crossing)
        if not report.ok:
            failures.append(report)
        if progress is not None:
            progress(n + 1, len(indices), report)
    return ExplorationResult(
        config=config,
        total_crossings=len(names),
        explored=indices,
        failures=failures,
        by_name=by_name,
    )


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults.crashtest",
        description="Crash at every failpoint crossing; recover; verify.",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--transactions", type=int,
                        default=CrashTestConfig.transactions)
    parser.add_argument("--keys", type=int, default=CrashTestConfig.keys)
    parser.add_argument(
        "--group-commit", type=int, default=CrashTestConfig.group_commit_window,
        metavar="N", help="group-commit window (1 = force per commit)",
    )
    parser.add_argument(
        "--route-cache", action="store_true",
        help="enable the as-of route cache and probe marks mid-workload",
    )
    parser.add_argument(
        "--eviction", choices=("lru", "2q", "clock"),
        default=CrashTestConfig.eviction,
        help="buffer eviction policy for the workload database",
    )
    parser.add_argument(
        "--flush-batch", type=int, default=CrashTestConfig.flush_batch,
        metavar="N", help="batched write-back size (0 = per-page flushes)",
    )
    parser.add_argument(
        "--archive", action="store_true",
        help="enable cold-history archive tiering with a short horizon so "
             "checkpoints migrate pages mid-workload (adds archive.* "
             "crossings to explore)",
    )
    parser.add_argument(
        "--media-faults", action="store_true",
        help="inject disk faults instead of crashing; verify self-healing "
             "(inline absorption + byte-identical scrubber repair)",
    )
    parser.add_argument(
        "--service", action="store_true",
        help="drive the workload through the SQL service protocol "
             "(loopback transport) so service.* crossings are explored; "
             "verification is ack-based: every client-acked commit must "
             "survive the crash",
    )
    parser.add_argument(
        "--service-faults", action="store_true",
        help="service mode with one injected network fault per crossing "
             "(torn frame, dropped response, slow-loris, duplicate "
             "delivery); the workload must complete with exactly-once "
             "effects",
    )
    parser.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="run the workload against an N-shard range-partitioned "
             "cluster: cross-shard mutations commit through presumed-abort "
             "2PC, and recovery is verified in two stages (in-doubt lock "
             "retention, then coordinator-driven resolution)",
    )
    parser.add_argument(
        "--max-points", type=int, default=0,
        help="explore at most N crossings, evenly sampled (0 = all)",
    )
    parser.add_argument(
        "--crash-point", type=int, default=None,
        help="replay a single crossing index (the repro mode)",
    )
    args = parser.parse_args(argv)
    config = CrashTestConfig(
        seed=args.seed, transactions=args.transactions, keys=args.keys,
        group_commit_window=args.group_commit,
        route_cache=args.route_cache,
        eviction=args.eviction,
        flush_batch=args.flush_batch,
        media_faults=args.media_faults,
        archive=args.archive,
        service=args.service or args.service_faults,
        service_faults=args.service_faults,
        shards=args.shards,
    )
    if config.shards:
        replay = replay_shard_point
    elif config.service_faults:
        replay = replay_service_fault_point
    elif config.service:
        replay = replay_service_point
    elif config.media_faults:
        replay = replay_media_point
    else:
        replay = replay_crash_point

    if args.crash_point is not None:
        report = replay(config, args.crash_point)
        print(f"crossing {report.crossing} ({report.name}): "
              f"{'OK' if report.ok else 'FAIL'}")
        for problem in report.problems:
            print(f"  {problem}")
        return 0 if report.ok else 1

    seen_failures: list[CrashReport] = []

    def progress(done: int, total: int, report: CrashReport) -> None:
        if not report.ok:
            seen_failures.append(report)
        if done % 50 == 0 or done == total:
            print(f"  explored {done}/{total} crash points "
                  f"({len(seen_failures)} failures)")

    if config.shards:
        explorer = explore_shards
    elif config.service_faults:
        explorer = explore_service_faults
    elif config.service:
        explorer = explore_service
    elif config.media_faults:
        explorer = explore_media
    else:
        explorer = explore
    result = explorer(config, max_points=args.max_points, progress=progress)

    faulty = config.media_faults or config.service_faults
    mode = "fault points" if faulty else "crash points"
    print(f"seed {config.seed}: {result.total_crossings} crossings enumerated, "
          f"{len(result.explored)} {mode} explored")
    seams = Counter(name.split(".")[0] for name in result.by_name.elements())
    label = "by fault" if faulty else "by seam"
    print(f"  {label}: " + ", ".join(
        f"{seam}={count}" for seam, count in sorted(seams.items())
    ))
    if result.ok:
        print("  zero integrity or as-of-equivalence violations")
        return 0
    for report in result.failures:
        print(f"FAIL crossing {report.crossing} ({report.name}): "
              f"{report.problems[0]}")
        print(f"  repro: PYTHONPATH=src python -m repro.faults.crashtest "
              f"{config.repro_args(report.crossing)}")
    return 1


if __name__ == "__main__":
    sys.exit(main())
