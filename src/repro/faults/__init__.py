"""Deterministic fault injection and crash-point exploration.

Three layers (see DESIGN.md, "Fault injection"):

* :mod:`repro.faults.failpoints` — named trigger points threaded through the
  engine's hot seams (page writes, buffer flushes, log appends and forces,
  checkpoint phases, the commit path).  Zero-cost when no registry is
  installed; deterministic when armed from a seed.
* :mod:`repro.faults.models` — media fault models: a corrupting
  :class:`~repro.faults.models.FaultyDisk` page-store wrapper (torn writes,
  dropped writes, bit-rot, transient I/O errors) and a torn-log-tail
  injector for file-backed logs.
* :mod:`repro.faults.crashtest` — the crash-point exploration harness: run
  a seeded workload once to enumerate every failpoint crossing, then crash
  at each crossing in turn, recover, and check integrity plus as-of
  equivalence against a pure-Python shadow oracle.

This ``__init__`` deliberately imports only the failpoint layer: the storage
and WAL modules call :func:`repro.faults.failpoints.fire` on their hot
paths, so importing :mod:`repro.faults.models` (which imports the storage
layer back) here would create an import cycle.
"""

from repro.faults.failpoints import (
    FailpointRegistry,
    FireEvent,
    SimulatedCrash,
    fire,
    install,
    installed,
    installed_registry,
    uninstall,
)

__all__ = [
    "FailpointRegistry",
    "FireEvent",
    "SimulatedCrash",
    "fire",
    "install",
    "installed",
    "installed_registry",
    "uninstall",
]
