"""The Persistent Timestamp Table (PTT).

Section 2.2: "*a disk table that has the format (TID, Ttime, SN) … a B-tree
based table ordered by TID, which permits fast access based on TID … Since
TIDs are assigned in ascending order, this also means that all recent table
entries are at the tail of the table.*"

We implement it exactly so: a B+tree of fixed-size 20-byte entries
(tid 8 | ttime 8 | sn 4) living in buffer-pool pages of type ``PTT``.
Because TIDs ascend, inserts append at the rightmost leaf, so the hot part
of the table stays cached; garbage collection deletes from the (cold) head.

Two structural choices worth noting:

* **Fixed root page id.**  The boot page stores the PTT root durably; root
  growth moves the old root's content to a fresh page and turns the root
  page into an internal node, so the stored id never goes stale.
* **Preemptive top-down splitting.**  Full nodes are split on the way down,
  so a split only ever posts to a parent with guaranteed room — no upward
  cascades.

Durability: PTT mutations are logged *logically* (the commit record carries
the entry; :class:`~repro.wal.records.PTTDelete` records garbage
collection), and redo re-applies them idempotently ("insert if absent" /
"delete if present") through whatever tree structure reached the disk.  PTT
node splits therefore need no log records of their own.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterator

from repro.clock import Timestamp
from repro.errors import BufferPoolError, PageFormatError
from repro.storage.buffer import BufferPool
from repro.storage.constants import COMMON_HEADER_SIZE, NO_PAGE, PAGE_SIZE, PageType
from repro.storage.page import Page, register_page_codec

ENTRY_SIZE = 20        # tid(8) + ttime(8) + sn(4)
_CHILD_SIZE = 12       # separator tid(8) + child pid(4)
_NODE_HEADER = COMMON_HEADER_SIZE + 8   # is_leaf(1) + count(2) + next_leaf(4) + pad

_APPEND_SPLIT_FRACTION = 0.9
"""Split point for an append-mostly tree: retired nodes stay 90 % full."""


class PTTNodePage(Page):
    """One node of the PTT B+tree (leaf or internal)."""

    page_type = PageType.PTT

    def __init__(self, page_id: int, *, is_leaf: bool = True,
                 page_size: int = PAGE_SIZE) -> None:
        super().__init__(page_id)
        self.page_size = page_size
        self.is_leaf = is_leaf
        self.next_leaf = NO_PAGE
        # Leaf payload: parallel arrays sorted by tid.
        self.tids: list[int] = []
        self.ttimes: list[int] = []
        self.sns: list[int] = []
        # Internal payload: children[i] covers keys in [seps[i-1], seps[i]).
        # len(children) == len(seps) + 1.
        self.seps: list[int] = []
        self.children: list[int] = []

    # -- capacity -------------------------------------------------------------

    @property
    def leaf_capacity(self) -> int:
        return (self.page_size - _NODE_HEADER) // ENTRY_SIZE

    @property
    def fanout(self) -> int:
        return (self.page_size - _NODE_HEADER) // _CHILD_SIZE

    @property
    def is_full(self) -> bool:
        if self.is_leaf:
            return len(self.tids) >= self.leaf_capacity
        return len(self.children) >= self.fanout

    # -- codec -----------------------------------------------------------------

    def _encode(self) -> bytes:
        """Build the fixed-size on-disk image (uncached)."""
        buf = bytearray(self.page_size)
        buf[0:COMMON_HEADER_SIZE] = self._common_header()
        at = COMMON_HEADER_SIZE
        buf[at] = 1 if self.is_leaf else 0
        if self.is_leaf:
            buf[at + 1 : at + 3] = len(self.tids).to_bytes(2, "big")
            buf[at + 3 : at + 7] = self.next_leaf.to_bytes(4, "big")
            pos = _NODE_HEADER
            for tid, ttime, sn in zip(self.tids, self.ttimes, self.sns):
                buf[pos : pos + 8] = tid.to_bytes(8, "big")
                buf[pos + 8 : pos + 16] = ttime.to_bytes(8, "big")
                buf[pos + 16 : pos + 20] = sn.to_bytes(4, "big")
                pos += ENTRY_SIZE
        else:
            buf[at + 1 : at + 3] = len(self.children).to_bytes(2, "big")
            pos = _NODE_HEADER
            for i, child in enumerate(self.children):
                sep = self.seps[i - 1] if i else 0
                buf[pos : pos + 8] = sep.to_bytes(8, "big")
                buf[pos + 8 : pos + 12] = child.to_bytes(4, "big")
                pos += _CHILD_SIZE
        return bytes(buf)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "PTTNodePage":
        """Deserialize from an on-disk image."""
        page_id, page_type, flags, lsn = Page.read_common_header(raw)
        if page_type != PageType.PTT:
            raise PageFormatError(f"not a PTT page: type {page_type}")
        at = COMMON_HEADER_SIZE
        node = cls(page_id, is_leaf=bool(raw[at]), page_size=len(raw))
        node.header_flags = flags
        node.lsn = lsn
        count = int.from_bytes(raw[at + 1 : at + 3], "big")
        if node.is_leaf:
            node.next_leaf = int.from_bytes(raw[at + 3 : at + 7], "big")
            pos = _NODE_HEADER
            for _ in range(count):
                node.tids.append(int.from_bytes(raw[pos : pos + 8], "big"))
                node.ttimes.append(int.from_bytes(raw[pos + 8 : pos + 16], "big"))
                node.sns.append(int.from_bytes(raw[pos + 16 : pos + 20], "big"))
                pos += ENTRY_SIZE
        else:
            pos = _NODE_HEADER
            for i in range(count):
                sep = int.from_bytes(raw[pos : pos + 8], "big")
                child = int.from_bytes(raw[pos + 8 : pos + 12], "big")
                if i:
                    node.seps.append(sep)
                node.children.append(child)
                pos += _CHILD_SIZE
        return node


register_page_codec(PageType.PTT, PTTNodePage.from_bytes)


class PersistentTimestampTable:
    """B+tree of (TID → Ttime, SN) mappings over the buffer pool."""

    def __init__(self, buffer: BufferPool, root_pid: int | None = None) -> None:
        self.buffer = buffer
        if root_pid is None:
            root = buffer.new_page(lambda pid: PTTNodePage(pid, is_leaf=True))
            self.root_pid = root.page_id
        else:
            self.root_pid = root_pid
        self.lookups = 0          # instrumentation for the Abl-4 bench
        self.pages_touched = 0

    # -- navigation -------------------------------------------------------------

    def _node(self, pid: int) -> PTTNodePage:
        try:
            page = self.buffer.get_page(pid)
        except (BufferPoolError, PageFormatError):
            # PTT structure changes are not logged (entries are replayed
            # logically and idempotently), so a node allocated but never
            # flushed reads back as zeros after a crash.  It is simply an
            # empty leaf: redo re-inserts whatever it held, because any
            # entry that only lived in a lost (dirty) node has its commit
            # LSN at or after the redo scan start point.
            page = PTTNodePage(
                pid, is_leaf=True, page_size=self.buffer.disk.page_size
            )
            self.buffer.replace_page(page)
        if not isinstance(page, PTTNodePage):
            raise PageFormatError(f"page {pid} is not a PTT node")
        self.pages_touched += 1
        return page

    def _find_leaf(self, tid: int) -> PTTNodePage:
        node = self._node(self.root_pid)
        while not node.is_leaf:
            node = self._node(node.children[bisect_right(node.seps, tid)])
        return node

    # -- operations ----------------------------------------------------------------

    def lookup(self, tid: int) -> Timestamp | None:
        """Find the timestamp recorded for ``tid``, or None."""
        self.lookups += 1
        leaf = self._find_leaf(tid)
        i = bisect_left(leaf.tids, tid)
        if i < len(leaf.tids) and leaf.tids[i] == tid:
            return Timestamp(leaf.ttimes[i], leaf.sns[i])
        return None

    def insert(self, tid: int, ts: Timestamp, rec_lsn: int = 0) -> bool:
        """Insert (idempotently) the entry for ``tid``.  Returns True if new."""
        leaf = self._descend_splitting(tid, rec_lsn)
        i = bisect_left(leaf.tids, tid)
        if i < len(leaf.tids) and leaf.tids[i] == tid:
            return False  # idempotent redo
        leaf.tids.insert(i, tid)
        leaf.ttimes.insert(i, ts.ttime)
        leaf.sns.insert(i, ts.sn)
        self.buffer.mark_dirty_page(leaf, rec_lsn)
        return True

    def delete(self, tid: int, rec_lsn: int = 0) -> bool:
        """Remove (idempotently) the entry for ``tid``.  Returns True if found."""
        leaf = self._find_leaf(tid)
        i = bisect_left(leaf.tids, tid)
        if i >= len(leaf.tids) or leaf.tids[i] != tid:
            return False
        del leaf.tids[i]
        del leaf.ttimes[i]
        del leaf.sns[i]
        self.buffer.mark_dirty_page(leaf, rec_lsn)
        return True

    # -- top-down splitting -------------------------------------------------------

    def _descend_splitting(self, tid: int, rec_lsn: int) -> PTTNodePage:
        """Find the leaf for ``tid``, splitting any full node on the way."""
        root = self._node(self.root_pid)
        if root.is_full:
            self._grow_root(rec_lsn)
            root = self._node(self.root_pid)
        node = root
        while not node.is_leaf:
            child = self._node(node.children[bisect_right(node.seps, tid)])
            if child.is_full:
                self._split_child(node, child, rec_lsn)
                child = self._node(node.children[bisect_right(node.seps, tid)])
            node = child
        return node

    def _grow_root(self, rec_lsn: int) -> None:
        """Add a level, keeping the root's page id fixed.

        The old root's content moves to a new page; the root page becomes an
        internal node with that page as its only child.  The next descent
        splits the (full) child normally.
        """
        old_root = self._node(self.root_pid)
        moved = self.buffer.new_page(
            lambda pid: PTTNodePage(
                pid, is_leaf=old_root.is_leaf,
                page_size=self.buffer.disk.page_size,
            )
        )
        moved.tids = list(old_root.tids)
        moved.ttimes = list(old_root.ttimes)
        moved.sns = list(old_root.sns)
        moved.seps = list(old_root.seps)
        moved.children = list(old_root.children)
        moved.next_leaf = old_root.next_leaf
        new_root = PTTNodePage(
            self.root_pid, is_leaf=False, page_size=self.buffer.disk.page_size
        )
        new_root.children = [moved.page_id]
        self.buffer.replace_page(new_root)
        self.buffer.mark_dirty_page(moved, rec_lsn)
        self.buffer.mark_dirty_page(new_root, rec_lsn)

    def _split_child(
        self, parent: PTTNodePage, child: PTTNodePage, rec_lsn: int
    ) -> None:
        """Split a full child, posting the separator to the non-full parent.

        Because TIDs arrive in ascending order, a mid-split would leave every
        retired node half empty; splitting high (90/10) keeps the table
        compact, as an append-mostly B-tree should.
        """
        if child.is_leaf:
            cut = max(1, int(len(child.tids) * _APPEND_SPLIT_FRACTION))
            right = self.buffer.new_page(
                lambda pid: PTTNodePage(
                    pid, is_leaf=True, page_size=self.buffer.disk.page_size
                )
            )
            right.tids = child.tids[cut:]
            right.ttimes = child.ttimes[cut:]
            right.sns = child.sns[cut:]
            right.next_leaf = child.next_leaf
            del child.tids[cut:]
            del child.ttimes[cut:]
            del child.sns[cut:]
            child.next_leaf = right.page_id
            sep = right.tids[0]
        else:
            cut = max(1, int(len(child.seps) * _APPEND_SPLIT_FRACTION))
            if cut >= len(child.seps):
                cut = len(child.seps) - 1
            sep = child.seps[cut]
            right = self.buffer.new_page(
                lambda pid: PTTNodePage(
                    pid, is_leaf=False, page_size=self.buffer.disk.page_size
                )
            )
            right.seps = child.seps[cut + 1 :]
            right.children = child.children[cut + 1 :]
            del child.seps[cut:]
            del child.children[cut + 1 :]
        at = bisect_right(parent.seps, sep)
        parent.seps.insert(at, sep)
        parent.children.insert(at + 1, right.page_id)
        self.buffer.mark_dirty_page(parent, rec_lsn)
        self.buffer.mark_dirty_page(child, rec_lsn)
        self.buffer.mark_dirty_page(right, rec_lsn)

    # -- inspection -----------------------------------------------------------------------

    def _leftmost_leaf(self) -> PTTNodePage:
        node = self._node(self.root_pid)
        while not node.is_leaf:
            node = self._node(node.children[0])
        return node

    def entries(self) -> Iterator[tuple[int, Timestamp]]:
        """All (tid, timestamp) pairs in TID order (scans the leaf chain)."""
        leaf: PTTNodePage | None = self._leftmost_leaf()
        while leaf is not None:
            for tid, ttime, sn in zip(leaf.tids, leaf.ttimes, leaf.sns):
                yield tid, Timestamp(ttime, sn)
            leaf = self._node(leaf.next_leaf) if leaf.next_leaf != NO_PAGE else None

    def max_tid(self) -> int:
        """Largest TID present (0 when empty) — used for the post-crash floor."""
        best = 0
        for tid, _ in self.entries():
            best = max(best, tid)
        return best

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    def height(self) -> int:
        h = 1
        node = self._node(self.root_pid)
        while not node.is_leaf:
            h += 1
            node = self._node(node.children[0])
        return h

    def page_ids(self) -> list[int]:
        """Every page id used by the tree (for size accounting in benches)."""
        out: list[int] = []
        stack = [self.root_pid]
        while stack:
            pid = stack.pop()
            out.append(pid)
            node = self._node(pid)
            if not node.is_leaf:
                stack.extend(node.children)
        return out
