"""The Volatile Timestamp Table (VTT).

Section 2.2: an in-memory hash table ``(TID, Ttime, SN, RefCount)`` that

* caches the recent (hence likely-to-be-used) PTT entries, speeding TID →
  timestamp translation,
* counts, per transaction, the record versions that still carry a TID
  instead of a timestamp (``RefCount``), and
* remembers, once the RefCount reaches zero, the end-of-log LSN at that
  moment — the value the garbage collector compares against the redo scan
  start point to know that every re-stamped page is durably on disk.

The VTT is volatile by design: it is rebuilt empty after a crash, which is
why a crash can strand PTT entries whose timestamping had actually finished
(the paper accepts this: "we simply end up with certain PTT entries that
cannot be deleted").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clock import SN_INVALID, Timestamp
from repro.errors import NotYetCommittedError, UnknownTransactionError


@dataclass
class VTTEntry:
    """One VTT row.

    ``sn == SN_INVALID`` means the transaction is still active (stage I).
    ``refcount is None`` means "undefined": the entry was cached from the
    PTT after a crash or eviction, so we no longer know how many unstamped
    versions remain and must never garbage collect its PTT entry.
    """

    ttime: int
    sn: int = SN_INVALID
    refcount: int | None = 0
    done_lsn: int | None = None     # end-of-log LSN when refcount hit zero
    is_snapshot: bool = False       # snapshot txns never get a PTT entry
    persistent: bool = False        # True once a PTT entry was written
    commit_lsn: int | None = None   # LSN of the commit record (None: unknown,
    # e.g. cached from the PTT — then the commit is durable by construction)

    @property
    def is_active(self) -> bool:
        return self.sn == SN_INVALID

    @property
    def timestamp(self) -> Timestamp:
        if self.is_active:
            raise NotYetCommittedError("transaction has no timestamp yet")
        return Timestamp(self.ttime, self.sn)


class VolatileTimestampTable:
    """In-memory TID → :class:`VTTEntry` map."""

    def __init__(self) -> None:
        self._entries: dict[int, VTTEntry] = {}

    def __contains__(self, tid: int) -> bool:
        return tid in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, tid: int) -> VTTEntry | None:
        return self._entries.get(tid)

    def require(self, tid: int) -> VTTEntry:
        entry = self._entries.get(tid)
        if entry is None:
            raise UnknownTransactionError(f"TID {tid} not in VTT")
        return entry

    # -- stage I: transaction begin ------------------------------------------

    def begin(self, tid: int, *, is_snapshot: bool = False) -> VTTEntry:
        """Create the entry for a starting transaction (RefCount 0, SN invalid)."""
        if tid in self._entries:
            raise ValueError(f"TID {tid} already has a VTT entry")
        entry = VTTEntry(ttime=0, sn=SN_INVALID, refcount=0,
                         is_snapshot=is_snapshot)
        self._entries[tid] = entry
        return entry

    # -- stage II: a version was written ----------------------------------------

    def increment(self, tid: int) -> None:
        entry = self.require(tid)
        if entry.refcount is None:
            return  # undefined stays undefined
        entry.refcount += 1
        entry.done_lsn = None

    # -- stage III: commit --------------------------------------------------------

    def set_committed(
        self, tid: int, ts: Timestamp, end_lsn: int,
        commit_lsn: int | None = None,
    ) -> VTTEntry:
        """Record the commit timestamp; if nothing awaits stamping, mark done."""
        entry = self.require(tid)
        entry.ttime = ts.ttime
        entry.sn = ts.sn
        entry.commit_lsn = commit_lsn
        if entry.refcount == 0:
            entry.done_lsn = end_lsn
        return entry

    # -- stage IV: a version was stamped ---------------------------------------------

    def decrement(self, tid: int, end_lsn: int) -> int | None:
        """One fewer unstamped version; returns the remaining count (or None).

        When the count reaches zero the caller's ``end_lsn`` (the LSN of the
        end of the log right now) is remembered as the GC gate.
        """
        entry = self.require(tid)
        if entry.refcount is None:
            return None
        if entry.refcount <= 0:
            raise ValueError(f"TID {tid}: RefCount underflow")
        entry.refcount -= 1
        if entry.refcount == 0:
            entry.done_lsn = end_lsn
        return entry.refcount

    # -- caching from the PTT ------------------------------------------------------------

    def cache_from_ptt(self, tid: int, ts: Timestamp) -> VTTEntry:
        """Cache a PTT entry with *undefined* RefCount (never GC-eligible)."""
        entry = VTTEntry(ttime=ts.ttime, sn=ts.sn, refcount=None)
        self._entries[tid] = entry
        return entry

    # -- removal ------------------------------------------------------------------------------

    def drop(self, tid: int) -> None:
        self._entries.pop(tid, None)

    def gc_candidates(self) -> list[tuple[int, VTTEntry]]:
        """Entries whose timestamping is complete (RefCount 0 with a done LSN)."""
        return [
            (tid, entry)
            for tid, entry in self._entries.items()
            if entry.refcount == 0
            and entry.done_lsn is not None
            and not entry.is_active
        ]

    def items(self) -> list[tuple[int, VTTEntry]]:
        return list(self._entries.items())

    def clear(self) -> None:
        """Crash: the VTT is volatile and simply vanishes."""
        self._entries.clear()
