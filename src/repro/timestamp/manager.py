"""Lazy timestamping: the four-stage protocol of Section 2.2.

Stage I   — transaction begin: create the VTT entry (RefCount 0, SN invalid).
Stage II  — insert/update/delete: new versions carry the writer's TID;
            RefCount is incremented per version.
Stage III — commit: choose the timestamp (late, so it agrees with
            serialization order), store it in the VTT, and perform the single
            PTT insert — no data record is revisited.
Stage IV  — on the next access of a non-timestamped record, replace its TID
            with the timestamp from the VTT (falling back to the PTT, and
            caching the result with an *undefined* RefCount).

Trigger points for stage IV, straight from the paper:

* updating a non-timestamped version with a later version,
* a cached page is about to be flushed to disk (buffer-pool pre-flush hook),
* a transaction reads a non-timestamped version,
* a page is time split.

Timestamping itself is **never logged**.  Garbage collection of a PTT entry
is therefore gated on proof that every re-stamped page is durably on disk:
the VTT remembers the end-of-log LSN when a transaction's RefCount reached
zero, and the entry becomes collectable only once the redo scan start point
(advanced by checkpoints) moves past that LSN.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable

from repro.clock import Timestamp
from repro.errors import UnknownTransactionError
from repro.storage.buffer import BufferPool
from repro.storage.page import DataPage, Page
from repro.timestamp.ptt import PersistentTimestampTable
from repro.timestamp.vtt import VolatileTimestampTable
from repro.wal.log import LogManager
from repro.wal.records import PTTDelete

_NO_MUTEX = nullcontext()


@dataclass
class TimestampStats:
    """Counters for timestamping work (feeds the cost model)."""
    stamps: int = 0              # record versions whose TID was replaced
    vtt_hits: int = 0
    ptt_lookups: int = 0
    ptt_inserts: int = 0
    ptt_deletes: int = 0
    commit_revisit_pages: int = 0  # eager only: pages revisited before commit

    def snapshot(self) -> "TimestampStats":
        """An independent copy of the current counter values."""
        return TimestampStats(
            self.stamps, self.vtt_hits, self.ptt_lookups,
            self.ptt_inserts, self.ptt_deletes, self.commit_revisit_pages,
        )


class TimestampManager:
    """Lazy timestamping engine (the paper's choice)."""

    #: set by the engine: (table_id, key) -> current DataPage holding the key
    locator: Callable[[int, bytes], DataPage | None] | None

    def __init__(
        self,
        log: LogManager,
        buffer: BufferPool,
        ptt: PersistentTimestampTable,
    ) -> None:
        self.log = log
        self.buffer = buffer
        self.ptt = ptt
        self.vtt = VolatileTimestampTable()
        self.stats = TimestampStats()
        self.locator = None
        # After a crash, conventional tables may hold committed TID-marked
        # records whose mapping was volatile-only (no PTT entry).  Their
        # exact time is gone, but for a non-temporal table any time before
        # every post-restart snapshot is semantically equivalent; recovery
        # sets this fallback to the restart time.
        self.recovery_fallback: Timestamp | None = None
        # Concurrent mode installs an RLock here, guarding every VTT/PTT
        # mutation (begin/commit/abort transitions, stamping's decrement,
        # GC's drop) plus resolve's VTT cache fill.  None by default: the
        # single-threaded paths stay lock-free.
        self.mutex = None
        buffer.pre_flush_hooks.append(self._flush_hook)

    # -- stage I ---------------------------------------------------------------

    def on_begin(self, tid: int, *, is_snapshot: bool = False) -> None:
        with self.mutex or _NO_MUTEX:
            self.vtt.begin(tid, is_snapshot=is_snapshot)

    # -- stage II --------------------------------------------------------------

    def on_version_created(
        self, tid: int, table_id: int, page_id: int, key: bytes
    ) -> None:
        """A new version was written, marked with ``tid``."""
        with self.mutex or _NO_MUTEX:
            self.vtt.increment(tid)

    # -- stage III ----------------------------------------------------------------

    def on_commit_prepare(self, tid: int, ts: Timestamp) -> None:
        """Work to do *before* the commit record (eager overrides this)."""

    def on_commit(
        self, tid: int, ts: Timestamp, commit_lsn: int, *, persistent: bool
    ) -> None:
        """Record the commit timestamp; write the PTT entry if needed.

        ``persistent`` is True when the transaction updated an immortal
        table, i.e. its TID→timestamp mapping must survive a crash.
        """
        with self.mutex or _NO_MUTEX:
            entry = self.vtt.set_committed(
                tid, ts, self.log.end_lsn, commit_lsn=commit_lsn
            )
            entry.persistent = persistent
            if persistent:
                self.ptt.insert(tid, ts, rec_lsn=commit_lsn)
                self.stats.ptt_inserts += 1
            elif entry.refcount == 0:
                # Nothing awaits stamping and nothing is in the PTT: the
                # entry has no further use (snapshot-only transactions
                # especially).
                self.vtt.drop(tid)

    def on_abort(self, tid: int) -> None:
        """Rollback removes the transaction's versions; the entry is useless."""
        with self.mutex or _NO_MUTEX:
            self.vtt.drop(tid)

    # -- stage IV -----------------------------------------------------------------

    def resolve(self, tid: int) -> tuple[Timestamp | None, bool]:
        """TID → (timestamp, committed?).  (None, False) while still active."""
        with self.mutex or _NO_MUTEX:
            entry = self.vtt.get(tid)
            if entry is not None:
                if entry.is_active:
                    return None, False
                self.stats.vtt_hits += 1
                return entry.timestamp, True
            self.stats.ptt_lookups += 1
            ts = self.ptt.lookup(tid)
            if ts is None:
                raise UnknownTransactionError(
                    f"TID {tid} is in neither the VTT nor the PTT"
                )
            self.vtt.cache_from_ptt(tid, ts)
            return ts, True

    def resolve_with_fallback(
        self, tid: int, *, immortal: bool
    ) -> tuple[Timestamp | None, bool]:
        """Like :meth:`resolve`, but non-immortal tables may use the
        post-crash fallback timestamp for mappings lost with the VTT."""
        try:
            return self.resolve(tid)
        except UnknownTransactionError:
            if immortal or self.recovery_fallback is None:
                raise
            self.vtt.cache_from_ptt(tid, self.recovery_fallback)
            return self.recovery_fallback, True

    def resolve_many(
        self,
        tids: set[int],
        memo: dict[int, tuple[Timestamp | None, bool]],
        *,
        immortal: bool = True,
    ) -> dict[int, tuple[Timestamp | None, bool]]:
        """Batched stage IV: resolve every TID in one VTT/PTT pass.

        ``memo`` is a per-scan cache — TIDs already present cost nothing, so
        a scan touching the same writer on every page pays one lookup total
        instead of one per version.  The memo must not outlive the scan: an
        entry of ``(None, False)`` (writer still active) goes stale the
        moment that writer commits — harmless within one scan, since a
        commit after the scan's horizon was drawn is invisible to it anyway.
        """
        for tid in tids:
            if tid not in memo:
                memo[tid] = self.resolve_with_fallback(tid, immortal=immortal)
        return memo

    def stamp_version(self, version, *, immortal: bool = True) -> bool:
        """Try to timestamp one version; False if its writer is still active.

        Also declines while the writer's commit record is not yet durable
        (group commit holds commit records in the log buffer): stamping is
        never logged, so a stamped version reaching disk before its commit
        record would survive a crash that rolls the transaction back.
        """
        with self.mutex or _NO_MUTEX:
            tid = version.tid
            ts, committed = self.resolve_with_fallback(tid, immortal=immortal)
            if not committed:
                return False
            entry = self.vtt.get(tid)
            if entry is not None and entry.commit_lsn is not None \
                    and entry.commit_lsn >= self.log.flushed_lsn:
                return False
            assert ts is not None
            version.stamp(ts)
            self.stats.stamps += 1
            self._after_stamp(tid)
            return True

    def _after_stamp(self, tid: int) -> None:
        entry = self.vtt.get(tid)
        if entry is None:
            return
        remaining = self.vtt.decrement(tid, self.log.end_lsn)
        if remaining == 0 and entry.is_snapshot:
            # Paper: a snapshot transaction's entry can be dropped the moment
            # its reference count reaches zero — nothing persists in the PTT.
            self.vtt.drop(tid)

    def stamp_page(self, page: DataPage, *, mark_dirty: bool = True) -> int:
        """Timestamp every committed, not-yet-stamped version in the page.

        Per the paper, "lazy timestamping of non-timestamped data records
        requires that an exclusive latch be obtained on the page to enable
        the change to be made" — the latch is held for the stamping pass
        and released before returning.

        Returns the number of versions stamped.  ``mark_dirty=False`` is used
        by the pre-flush hook (the page is being written out anyway).
        """
        if not page.has_unstamped_records():
            return 0
        latched = self.buffer.contains(page.page_id)
        if latched:
            self.buffer.latch_exclusive(page.page_id)
        try:
            stamped = 0
            for version in page.unstamped_versions():
                if self.stamp_version(version, immortal=page.immortal):
                    stamped += 1
        finally:
            if latched:
                self.buffer.unlatch(page.page_id)
        if stamped:
            # Stamping mutates records in place, invisible to the page's
            # attribute-level cache invalidation — always touch, even on the
            # pre-flush path that skips mark_dirty.
            page.touch()
            if mark_dirty:
                self.buffer.mark_dirty_page(page)
        return stamped

    def stamp_page_for_split(self, page: DataPage) -> int:
        """Stage-IV trigger ahead of a time split.

        A time split partitions versions by timestamp, so every *committed*
        version must be stamped before the split classifies it — a
        committed version left TID-marked would be treated as uncommitted
        (case 4, current page only) even though its commit time falls
        before the split time, and as-of reads routed to the history page
        would miss it.  Ordinary stamping declines a version while its
        commit record sits in the unforced log buffer (group commit); here
        that is not an option, so force the log and stamp again.  Only
        genuinely uncommitted versions remain TID-marked on return.
        """
        stamped = self.stamp_page(page)
        if page.has_unstamped_records() and self._committed_unstamped(page):
            self.log.force()
            stamped += self.stamp_page(page)
        return stamped

    def _committed_unstamped(self, page: DataPage) -> bool:
        """Any unstamped version whose writer has already committed?"""
        with self.mutex or _NO_MUTEX:
            for version in page.unstamped_versions():
                entry = self.vtt.get(version.tid)
                if entry is not None:
                    if not entry.is_active:
                        return True
                elif self.ptt.lookup(version.tid) is not None:
                    return True
        return False

    def _flush_hook(self, page: Page) -> None:
        if isinstance(page, DataPage):
            self.stamp_page(page, mark_dirty=False)

    # -- garbage collection ------------------------------------------------------------

    def garbage_collect(self, redo_scan_start_lsn: int) -> int:
        """Drop completed entries whose stamping is provably durable.

        An entry qualifies when its RefCount is zero *and* the redo scan
        start point has moved past the end-of-log LSN recorded when the
        count reached zero (which implies every page stamped for this
        transaction has been written to disk).  Returns the number of PTT
        entries removed.
        """
        removed = 0
        with self.mutex or _NO_MUTEX:
            for tid, entry in self.vtt.gc_candidates():
                if entry.done_lsn is None \
                        or redo_scan_start_lsn <= entry.done_lsn:
                    continue
                if entry.persistent:
                    lsn = self.log.append(PTTDelete(subject_tid=tid))
                    self.ptt.delete(tid, rec_lsn=lsn)
                    self.stats.ptt_deletes += 1
                    removed += 1
                self.vtt.drop(tid)
        return removed

    # -- recovery support --------------------------------------------------------------------

    def rebuild_after_crash(self) -> None:
        """Reset volatile state (the VTT does not survive a crash)."""
        self.vtt.clear()

    def restore_committed(self, tid: int, ts: Timestamp) -> None:
        """Recovery saw a durable commit record: remember its timestamp.

        The RefCount is *undefined* (None): we no longer know how many
        versions remain unstamped, so the PTT entry (if any) is never
        garbage collected — exactly the paper's post-crash behaviour.
        """
        if tid not in self.vtt:
            self.vtt.cache_from_ptt(tid, ts)
