"""Eager timestamping — the alternative the paper rejects (Section 2.2).

Eager timestamping keeps a list of the record versions a transaction wrote
and, **at commit but before the commit record**, revisits each of them to
write the timestamp in place.  Its costs, all reproduced here so the
lazy-vs-eager ablation can measure them:

* revisited pages may have left the buffer pool → extra page reads,
* the timestamping writes must be logged (``StampOp`` records) so redo can
  repeat them after a crash → extra log volume,
* all of this happens while the transaction still holds its locks →
  commit is delayed and lock hold time grows.

Because every version is stamped by commit time, eager mode never needs the
PTT: there are no committed-but-unstamped records to resolve.
"""

from __future__ import annotations

from collections import defaultdict

from repro.clock import Timestamp
from repro.errors import TimestampError
from repro.timestamp.manager import TimestampManager
from repro.wal.records import StampOp


class EagerTimestampManager(TimestampManager):
    """Timestamp at commit by revisiting every version the transaction wrote."""

    def __init__(self, log, buffer, ptt) -> None:
        super().__init__(log, buffer, ptt)
        # {tid: {(table_id, key): version_count}} — where to revisit at commit.
        self._writes: dict[int, dict[tuple[int, bytes], int]] = defaultdict(dict)

    # -- stage II: remember where the versions are ------------------------------

    def on_version_created(
        self, tid: int, table_id: int, page_id: int, key: bytes
    ) -> None:
        super().on_version_created(tid, table_id, page_id, key)
        writes = self._writes[tid]
        writes[(table_id, key)] = writes.get((table_id, key), 0) + 1

    # -- commit-time revisit -------------------------------------------------------

    def on_commit_prepare(self, tid: int, ts: Timestamp) -> None:
        """Stamp (and log) every version written by ``tid`` before commit."""
        if self.locator is None:
            raise TimestampError("eager timestamping needs a record locator")
        pages_touched = set()
        for (table_id, key), count in self._writes.pop(tid, {}).items():
            page = self.locator(table_id, key)
            if page is None:
                raise TimestampError(
                    f"eager commit: key {key!r} of table {table_id} vanished"
                )
            stamped = 0
            for version in page.chain(key):
                if not version.is_timestamped and version.tid == tid:
                    version.stamp(ts)
                    stamped += 1
                    self.stats.stamps += 1
                    self.vtt.decrement(tid, self.log.end_lsn)
                    self.log.append(
                        StampOp(
                            tid=tid, table_id=table_id, page_id=page.page_id,
                            key=key, ttime=ts.ttime, sn=ts.sn,
                        )
                    )
            if stamped != count:
                raise TimestampError(
                    f"eager commit: stamped {stamped} of {count} versions "
                    f"for key {key!r}"
                )
            if page.page_id not in pages_touched:
                pages_touched.add(page.page_id)
                self.stats.commit_revisit_pages += 1
            self.buffer.mark_dirty_page(page)

    def on_commit(
        self, tid: int, ts: Timestamp, commit_lsn: int, *, persistent: bool
    ) -> None:
        """No PTT entry is ever needed: everything is stamped already."""
        entry = self.vtt.set_committed(tid, ts, self.log.end_lsn)
        entry.persistent = False
        # The entry has served its purpose; there is nothing left to stamp.
        if entry.refcount == 0:
            self.vtt.drop(tid)

    def on_abort(self, tid: int) -> None:
        self._writes.pop(tid, None)
        super().on_abort(tid)

    def garbage_collect(self, redo_scan_start_lsn: int) -> int:
        """Eager mode has no PTT entries to collect."""
        return 0
