"""Timestamp management (paper Section 2).

Immortal DB chooses a transaction's timestamp **as late as possible** — at
commit — so the timestamp order provably agrees with serialization order,
and then propagates that timestamp to the transaction's record versions
**lazily**, on next access / page flush / time split, instead of revisiting
them eagerly before commit.

* :mod:`repro.timestamp.ptt` — the Persistent Timestamp Table: a B-tree
  keyed by TID mapping to (Ttime, SN), stored in buffer-pool pages,
* :mod:`repro.timestamp.vtt` — the Volatile Timestamp Table: an in-memory
  cache with the per-transaction RefCount of not-yet-stamped versions,
* :mod:`repro.timestamp.manager` — the four-stage lazy timestamping
  protocol, its trigger points, and checkpoint-gated PTT garbage collection,
* :mod:`repro.timestamp.eager` — the eager alternative the paper rejects,
  implemented as a baseline for the lazy-vs-eager ablation.
"""

from repro.timestamp.ptt import PersistentTimestampTable, PTTNodePage
from repro.timestamp.vtt import VolatileTimestampTable, VTTEntry
from repro.timestamp.manager import TimestampManager
from repro.timestamp.eager import EagerTimestampManager

__all__ = [
    "PersistentTimestampTable",
    "PTTNodePage",
    "VolatileTimestampTable",
    "VTTEntry",
    "TimestampManager",
    "EagerTimestampManager",
]
