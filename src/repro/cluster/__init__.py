"""Range-sharded clustering over N ImmortalDB engines.

One :class:`ShardRouter` owns N independent shard engines (each with its own
WAL, buffer pool, lock table, and PTT/VTT), range-partitions keys across
them, and commits cross-shard transactions with presumed-abort two-phase
commit.  A single shared :class:`CommitTimestampAuthority` issues every
commit timestamp, so timestamp order is a cluster-wide total order and
AS OF reads return one consistent cut across shards.
"""

from repro.cluster.authority import CommitTimestampAuthority
from repro.cluster.twopc import Decision, TwoPhaseCoordinator
from repro.cluster.router import ClusterTable, ClusterTxn, ShardRouter

__all__ = [
    "ClusterTable",
    "ClusterTxn",
    "CommitTimestampAuthority",
    "Decision",
    "ShardRouter",
    "TwoPhaseCoordinator",
]
