"""The shard router: range partitioning, scatter-gather reads, 2PC commits.

A :class:`ShardRouter` fronts N :class:`~repro.core.engine.ImmortalDB`
instances with the same facade a single engine exposes (begin/commit/abort,
``table()``, DDL, SQL sessions, stats), so the SQL executor and the network
service run against a cluster unchanged.

* **Routing** is by key range: ``boundaries`` splits the key domain into N
  ordered partitions; shard *i* owns keys in ``(boundaries[i-1],
  boundaries[i]]`` with open ends.  Range partitioning keeps per-shard
  B-trees key-ordered, so a scatter-gather scan is a plain concatenation of
  per-shard streams in shard order — no merge heap needed.
* **Single-shard fast path**: a transaction whose writes all landed on one
  shard commits through that engine's ordinary commit protocol, byte-for-
  byte identical to the unsharded engine (the shared timestamp authority
  feeds its ``ts_source`` seam, drawing from the same clock an unsharded
  engine would).
* **Cross-shard commits** run presumed-abort two-phase commit: prepare on
  every written shard (force-logged votes), one commit timestamp issued by
  the shared authority at the decision point, a forced coordinator decision
  record, then commit-prepared everywhere with that same timestamp.  Crash
  anywhere and recovery resolves: participants reinstate prepared
  transactions *in doubt* (locks held, versions invisible), the coordinator
  replays its decision log, and :meth:`ShardRouter.resolve_in_doubt` drives
  every shard to the logged outcome — commit-everywhere with the original
  timestamp, or abort-everywhere.
"""

from __future__ import annotations

import datetime as _dt
from bisect import bisect_left
from contextlib import contextmanager
from typing import Iterator

from repro.clock import SimClock, Timestamp
from repro.cluster.authority import CommitTimestampAuthority
from repro.cluster.twopc import Decision, TwoPhaseCoordinator
from repro.concurrency.transaction import Transaction, TxnMode, TxnState
from repro.core.engine import ImmortalDB
from repro.errors import (
    CrossShardAbort,
    ImmortalDBError,
    InDoubtError,
    LockConflictError,
    ShardUnavailableError,
    TransactionStateError,
)
from repro.faults.failpoints import fire


class Shard:
    """One shard: an engine plus its id and (inclusive) key upper bound."""

    def __init__(self, shard_id: int, db: ImmortalDB) -> None:
        self.shard_id = shard_id
        self.db = db


class ClusterTxn:
    """One logical transaction spanning (lazily opened) per-shard branches."""

    def __init__(
        self,
        router: "ShardRouter",
        mode: TxnMode,
        as_of: Timestamp | None = None,
    ) -> None:
        self.router = router
        self.mode = mode
        self.as_of = as_of
        self.state = TxnState.ACTIVE
        self.gtid: int | None = None
        self.commit_ts: Timestamp | None = None
        self.parts: dict[int, Transaction] = {}   # shard_id -> branch txn
        # Snapshot transactions open every branch eagerly at begin, while no
        # time can pass, so all branches share one snapshot horizon; lazily
        # opened branches would pin later horizons on later-touched shards.
        if mode is TxnMode.SNAPSHOT:
            for shard in router.shards:
                self.branch(shard)

    def require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionStateError(
                f"cluster transaction is {self.state.value}"
            )

    def branch(self, shard: Shard) -> Transaction:
        """The branch transaction on ``shard``, opened on first touch."""
        self.require_active()
        self.router._check_up(shard)
        txn = self.parts.get(shard.shard_id)
        if txn is None:
            txn = shard.db.begin(self.mode, as_of=self.as_of)
            self.parts[shard.shard_id] = txn
        return txn


class ClusterTable:
    """Routes one logical table's operations to the owning shards.

    Point operations (read/insert/update/delete/history) go to exactly one
    shard by key; scans scatter to every shard and gather in shard order,
    which *is* global key order under range partitioning.
    """

    def __init__(self, router: "ShardRouter", name: str) -> None:
        self.router = router
        self.name = name

    # The schema surface the SQL executor consumes, proxied from shard 0
    # (identical on every shard by construction).
    @property
    def _shard0_table(self):
        return self.router.shards[0].db.table(self.name)

    @property
    def schema(self):
        return self._shard0_table.schema

    @property
    def codec(self):
        return self._shard0_table.codec

    @property
    def table_id(self) -> int:
        return self._shard0_table.table_id

    @property
    def immortal(self) -> bool:
        return self._shard0_table.immortal

    @property
    def versioned(self) -> bool:
        return self._shard0_table.versioned

    # -- routing ------------------------------------------------------------

    def _shard_for(self, key_value) -> Shard:
        shard = self.router.route(key_value)
        fire("cluster.router.route")
        return shard

    def _on_shard(self, shard: Shard):
        return shard.db.table(self.name)

    # -- point operations ----------------------------------------------------

    def insert(self, txn: ClusterTxn, row: dict) -> None:
        key = row[self.codec.key_column]
        shard = self._shard_for(key)
        branch = txn.branch(shard)
        with self.router._surface_in_doubt(shard):
            self._on_shard(shard).insert(branch, row)

    def update(self, txn: ClusterTxn, key_value, updates: dict) -> None:
        shard = self._shard_for(key_value)
        branch = txn.branch(shard)
        with self.router._surface_in_doubt(shard):
            self._on_shard(shard).update(branch, key_value, updates)

    def delete(self, txn: ClusterTxn, key_value) -> None:
        shard = self._shard_for(key_value)
        branch = txn.branch(shard)
        with self.router._surface_in_doubt(shard):
            self._on_shard(shard).delete(branch, key_value)

    def read(self, txn: ClusterTxn, key_value) -> dict | None:
        shard = self._shard_for(key_value)
        branch = txn.branch(shard)
        with self.router._surface_in_doubt(shard):
            return self._on_shard(shard).read(branch, key_value)

    def read_as_of(self, ts: Timestamp, key_value) -> dict | None:
        shard = self._shard_for(key_value)
        self.router._check_up(shard)
        return self._on_shard(shard).read_as_of(ts, key_value)

    # -- scatter-gather scans -------------------------------------------------

    def scan(self, txn: ClusterTxn) -> list[dict]:
        return list(self.scan_iter(txn))

    def scan_iter(self, txn: ClusterTxn) -> Iterator[dict]:
        """All current rows, global key order (shard order == key order)."""
        fire("cluster.router.scan")
        for shard in self.router.shards:
            branch = txn.branch(shard)
            with self.router._surface_in_doubt(shard):
                yield from self._on_shard(shard).scan_iter(branch)

    def scan_as_of(self, ts: Timestamp) -> list[dict]:
        return list(self.scan_as_of_iter(ts))

    def scan_as_of_iter(self, ts: Timestamp) -> Iterator[dict]:
        """The database as of ``ts``, across every shard: one consistent cut.

        Consistency needs no read-time coordination — every commit timestamp
        came from the shared authority, so "committed at or before ts" is
        the same set of transactions no matter which shard answers.
        """
        fire("cluster.router.scan")
        for shard in self.router.shards:
            self.router._check_up(shard)
            yield from self._on_shard(shard).scan_as_of_iter(ts)

    def scan_range(self, txn: ClusterTxn, low=None, high=None) -> list[dict]:
        return list(self.scan_range_iter(txn, low, high))

    def scan_range_iter(
        self, txn: ClusterTxn, low=None, high=None
    ) -> Iterator[dict]:
        """Range scan touching only the shards whose partitions intersect."""
        fire("cluster.router.scan")
        for shard in self.router.shards_for_range(low, high):
            branch = txn.branch(shard)
            with self.router._surface_in_doubt(shard):
                yield from self._on_shard(shard).scan_range_iter(
                    branch, low, high
                )

    # -- history --------------------------------------------------------------

    def history(
        self,
        key_value,
        t_low: Timestamp | None = None,
        t_high: Timestamp | None = None,
    ) -> list[tuple[Timestamp, dict | None]]:
        return list(self.history_iter(key_value, t_low, t_high))

    def history_iter(
        self,
        key_value,
        t_low: Timestamp | None = None,
        t_high: Timestamp | None = None,
    ) -> Iterator[tuple[Timestamp, dict | None]]:
        shard = self._shard_for(key_value)
        self.router._check_up(shard)
        return self._on_shard(shard).history_iter(key_value, t_low, t_high)


class _ClusterTxnStats:
    """The ``db.txn_mgr`` facade the service layer reads (ack bookkeeping)."""

    def __init__(self, router: "ShardRouter") -> None:
        self._router = router

    @property
    def unacked_commits(self) -> int:
        return sum(
            shard.db.txn_mgr.unacked_commits for shard in self._router.shards
        )


class ShardRouter:
    """N range-partitioned ImmortalDB shards behind a single-engine facade."""

    def __init__(
        self,
        shards: int = 2,
        boundaries: list | None = None,
        *,
        clock: SimClock | None = None,
        ms_per_commit: float = 5.0,
        paths: list[str] | None = None,
        **engine_kwargs,
    ) -> None:
        if shards < 1:
            raise ValueError("a cluster needs at least one shard")
        if boundaries is None:
            boundaries = []
        if len(boundaries) != shards - 1:
            raise ValueError(
                f"{shards} shards need {shards - 1} range boundaries, "
                f"got {len(boundaries)}"
            )
        if list(boundaries) != sorted(boundaries):
            raise ValueError("range boundaries must be sorted")
        if paths is not None and len(paths) != shards:
            raise ValueError("paths must name one file per shard")
        # Shard i owns keys k with boundaries[i-1] < k <= boundaries[i]
        # (open ends); bisect_left on the boundary list is the route.
        self.boundaries = list(boundaries)
        self.clock = clock or SimClock(ms_per_timestamp=ms_per_commit)
        self.authority = CommitTimestampAuthority(self.clock)
        self.coordinator = TwoPhaseCoordinator()
        self.shards: list[Shard] = []
        for shard_id in range(shards):
            db = ImmortalDB(
                paths[shard_id] if paths is not None else None,
                clock=self.clock,
                **engine_kwargs,
            )
            # Every commit timestamp — fast path included — flows through
            # the shared authority, keeping one cluster-wide total order.
            db.txn_mgr.ts_source = self.authority.issue
            self.shards.append(Shard(shard_id, db))
        self._down: set[int] = set()
        self._cluster_tables: dict[str, ClusterTable] = {}
        # Cluster counters (cost-model-neutral: none feed engine stats).
        self.fastpath_commits = 0
        self.twopc_commits = 0
        self.twopc_aborts = 0
        self.in_doubt_resolved = 0
        # A ServiceCore registers its counters here, same as on an engine.
        self.service_stats = None
        self.txn_mgr = _ClusterTxnStats(self)

    @classmethod
    def for_int_keys(
        cls, shards: int, key_space: int, **kwargs
    ) -> "ShardRouter":
        """Evenly range-partition integer keys ``0 .. key_space-1``."""
        step = max(1, key_space // shards)
        boundaries = [step * i - 1 for i in range(1, shards)]
        return cls(shards, boundaries, **kwargs)

    # -- routing --------------------------------------------------------------

    def route(self, key_value) -> Shard:
        """The shard owning ``key_value`` under the range partitioning."""
        return self.shards[bisect_left(self.boundaries, key_value)]

    def shards_for_range(self, low=None, high=None) -> list[Shard]:
        """Shards whose partition intersects ``[low, high]`` (None = open)."""
        first = 0 if low is None else bisect_left(self.boundaries, low)
        last = (
            len(self.shards) - 1
            if high is None
            else bisect_left(self.boundaries, high)
        )
        return self.shards[first:last + 1]

    def _check_up(self, shard: Shard) -> None:
        if shard.shard_id in self._down:
            raise ShardUnavailableError(
                f"shard {shard.shard_id} is down (crashed, not recovered)",
                shard_id=shard.shard_id,
            )

    @contextmanager
    def _surface_in_doubt(self, shard: Shard):
        """Translate lock conflicts against in-doubt holders to InDoubtError.

        A conflict with an ordinary active transaction stays a
        LockConflictError (retry after it finishes); a conflict with a
        prepared-but-undecided transaction is a different contract — the
        holder cannot finish until 2PC resolution runs — so callers get the
        typed, retryable cluster error instead.
        """
        try:
            yield
        except LockConflictError as exc:
            holders = set(exc.holder_tids) | (
                {exc.holder_tid} if exc.holder_tid is not None else set()
            )
            for gtid, txn in shard.db.txn_mgr.in_doubt.items():
                if txn.tid in holders:
                    raise InDoubtError(
                        f"shard {shard.shard_id}: data locked by in-doubt "
                        f"transaction gtid={gtid}; retry after resolution",
                        gtid=gtid,
                        shard_id=shard.shard_id,
                    ) from exc
            raise

    # -- DDL / tables ---------------------------------------------------------

    def create_table(
        self, name: str, columns, key: str, *, immortal: bool = False,
        snapshot: bool = False,
    ) -> ClusterTable:
        """Create the table on every shard (same schema, same table id)."""
        for shard in self.shards:
            shard.db.create_table(
                name, columns, key, immortal=immortal, snapshot=snapshot
            )
        table = ClusterTable(self, name)
        self._cluster_tables[name] = table
        return table

    def drop_table(self, name: str) -> None:
        for shard in self.shards:
            shard.db.drop_table(name)
        self._cluster_tables.pop(name, None)

    def enable_snapshot_isolation(self, name: str) -> None:
        for shard in self.shards:
            shard.db.enable_snapshot_isolation(name)

    def table(self, name: str) -> ClusterTable:
        if name not in self._cluster_tables:
            # Raises TableNotFoundError if no shard knows the table.
            self.shards[0].db.table(name)
            self._cluster_tables[name] = ClusterTable(self, name)
        return self._cluster_tables[name]

    # -- transactions ---------------------------------------------------------

    def begin(
        self,
        mode: TxnMode = TxnMode.SERIALIZABLE,
        *,
        as_of: Timestamp | _dt.datetime | str | None = None,
    ) -> ClusterTxn:
        if as_of is not None:
            mode = TxnMode.AS_OF
            as_of = self.to_timestamp(as_of)
        return ClusterTxn(self, mode, as_of)

    def commit(self, txn: ClusterTxn) -> Timestamp | None:
        """Commit: single-shard fast path, or presumed-abort 2PC."""
        txn.require_active()
        writers = [
            (sid, part) for sid, part in sorted(txn.parts.items())
            if not part.is_read_only
        ]
        readers = [
            (sid, part) for sid, part in sorted(txn.parts.items())
            if part.is_read_only
        ]
        if len(writers) <= 1:
            # Fast path: zero or one written shard — the engine's ordinary
            # commit protocol is exactly right, no coordination needed.
            fire("cluster.router.fastpath")
            for sid, part in readers:
                self.shards[sid].db.commit(part)
            ts = None
            for sid, part in writers:
                ts = self.shards[sid].db.commit(part)
                self.fastpath_commits += 1
            txn.state = TxnState.COMMITTED
            txn.commit_ts = ts
            return ts
        return self._commit_2pc(txn, writers, readers)

    def _commit_2pc(self, txn, writers, readers) -> Timestamp:
        gtid = self.coordinator.allocate_gtid()
        txn.gtid = gtid
        shard_ids = [sid for sid, _ in writers]
        # Phase one: collect force-logged yes votes.  Any veto (conflict,
        # validation failure, deadlock victim) aborts everywhere.
        veto_sid = None
        try:
            for sid, part in writers:
                veto_sid = sid
                fire("cluster.2pc.prepare")       # about to solicit this vote
                self.shards[sid].db.prepare(part, gtid)
        except ImmortalDBError as exc:
            self._abort_parts(txn)
            self.coordinator.decide_abort(gtid, shard_ids)
            txn.state = TxnState.ABORTED
            self.twopc_aborts += 1
            raise CrossShardAbort(
                f"cross-shard transaction gtid={gtid} aborted in prepare: "
                f"{exc}",
                victim_tid=(
                    txn.parts[veto_sid].tid if veto_sid is not None else None
                ),
                shard_id=veto_sid,
                gtid=gtid,
            ) from exc
        fire("cluster.2pc.prepared")              # all votes durable
        # Decision point: one timestamp for every shard, then the forced
        # decision record — the cluster-wide commit point.
        fire("cluster.2pc.decide")
        ts = self.authority.issue()
        self.coordinator.decide_commit(gtid, ts, shard_ids)
        # Phase two: apply the decision.  A crash below leaves prepared
        # branches in doubt; recovery replays the logged decision.
        for sid, part in writers:
            fire("cluster.2pc.commit")            # about to commit this branch
            self.shards[sid].db.commit_prepared(part, ts)
        for sid, part in readers:
            self.shards[sid].db.commit(part)
        txn.state = TxnState.COMMITTED
        txn.commit_ts = ts
        self.twopc_commits += 1
        fire("cluster.2pc.ack")                   # all branches committed
        self.coordinator.forget(gtid)
        return ts

    def abort(self, txn: ClusterTxn) -> None:
        txn.require_active()
        self._abort_parts(txn)
        txn.state = TxnState.ABORTED

    def _abort_parts(self, txn: ClusterTxn) -> None:
        for sid, part in sorted(txn.parts.items()):
            if part.state in (TxnState.ACTIVE, TxnState.PREPARED):
                self.shards[sid].db.abort(part)

    @contextmanager
    def transaction(
        self,
        mode: TxnMode = TxnMode.SERIALIZABLE,
        *,
        as_of: Timestamp | _dt.datetime | str | None = None,
    ) -> Iterator[ClusterTxn]:
        """``with router.transaction() as txn: …`` — commit on success."""
        txn = self.begin(mode, as_of=as_of)
        try:
            yield txn
        except BaseException:
            if txn.state is TxnState.ACTIVE:
                self.abort(txn)
            raise
        else:
            if txn.state is TxnState.ACTIVE:
                self.commit(txn)

    def flush_commits(self) -> None:
        for shard in self.shards:
            shard.db.flush_commits()

    # -- time -----------------------------------------------------------------

    def now(self) -> Timestamp:
        return self.clock.now()

    def advance_time(self, ms: float) -> None:
        self.clock.advance_ms(ms)

    to_timestamp = staticmethod(ImmortalDB.to_timestamp)

    # -- checkpoints -----------------------------------------------------------

    def checkpoint(self, *, flush: bool = False) -> int:
        collected = 0
        for shard in self.shards:
            collected += shard.db.checkpoint(flush=flush)
        return collected

    # -- crash / recovery ------------------------------------------------------

    def crash(self) -> None:
        """Cluster-wide power failure: every shard and the coordinator."""
        for shard in self.shards:
            self.crash_shard(shard.shard_id)
        self.coordinator.crash()

    def crash_shard(self, shard_id: int) -> None:
        """One participant dies; the rest of the cluster keeps serving."""
        shard = self.shards[shard_id]
        shard.db.crash()
        self._down.add(shard_id)

    def recover_shard(self, shard_id: int) -> None:
        """Restart one shard.  Its prepared transactions come back in doubt
        (locks held); call :meth:`resolve_in_doubt` to settle them."""
        self.shards[shard_id].db.recover()
        self._down.discard(shard_id)

    def recover(self, *, resolve: bool = True) -> None:
        """Restart the cluster: shards first, then the coordinator, then
        (by default) in-doubt resolution.

        ``resolve=False`` models participants coming back while the
        coordinator is still unreachable: prepared transactions stay in
        doubt, holding their locks, surfacing :class:`InDoubtError` on
        conflicting access until :meth:`resolve_in_doubt` runs.
        """
        for shard in self.shards:
            if shard.shard_id in self._down:
                self.recover_shard(shard.shard_id)
        self.coordinator.recover()
        # A gtid may appear only in shard prepare records (crash before the
        # coordinator logged anything); never hand it out again.
        max_gtid = max(
            (gtid for shard in self.shards
             for gtid in shard.db.txn_mgr.in_doubt),
            default=0,
        )
        self.coordinator.adopt_gtid_floor(max_gtid)
        if resolve:
            self.resolve_in_doubt()

    def crash_and_recover(self) -> None:
        self.crash()
        self.recover()

    def resolve_in_doubt(self) -> int:
        """Drive every in-doubt branch to the coordinator's logged outcome.

        Commit decisions replay with their original authority-issued
        timestamp, so the post-recovery cut is identical on every shard;
        absent decisions resolve to abort (presumed abort).  Returns the
        number of branches resolved.
        """
        resolved = 0
        for shard in self.shards:
            for gtid, branch in sorted(shard.db.txn_mgr.in_doubt.items()):
                decision, ts = self.coordinator.resolve(gtid)
                if decision is Decision.COMMIT:
                    assert ts is not None
                    shard.db.commit_prepared(branch, ts)
                else:
                    shard.db.abort(branch)
                resolved += 1
                self.in_doubt_resolved += 1
        return resolved

    def in_doubt_gtids(self) -> set[int]:
        """Gtids still awaiting resolution on any shard."""
        return {
            gtid for shard in self.shards
            for gtid in shard.db.txn_mgr.in_doubt
        }

    # -- service facade ---------------------------------------------------------

    def enable_concurrency(self) -> "ShardRouter":
        for shard in self.shards:
            shard.db.enable_concurrency()
        return self

    def sql(self, statement: str):
        """One SQL statement on the router's default session (see engine.sql)."""
        if not hasattr(self, "_default_session"):
            from repro.sql.executor import Session

            self._default_session = Session(self)
        return self._default_session.execute(statement)

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        for shard in self.shards:
            shard.db.close()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- instrumentation ----------------------------------------------------------

    def stats(self) -> dict:
        """Cluster-wide counters: per-shard sums plus router/2PC counters."""
        totals: dict = {}
        for shard in self.shards:
            for name, value in shard.db.stats().items():
                totals[name] = totals.get(name, 0) + value
        totals.update(
            cluster_shards=len(self.shards),
            cluster_fastpath_commits=self.fastpath_commits,
            cluster_2pc_commits=self.twopc_commits,
            cluster_2pc_aborts=self.twopc_aborts,
            cluster_in_doubt_resolved=self.in_doubt_resolved,
            cluster_timestamps_issued=self.authority.issued,
        )
        return totals

    def shard_stats(self) -> list[dict]:
        """Per-shard counter snapshots (for benchmarks)."""
        return [shard.db.stats() for shard in self.shards]
