"""The shared commit-timestamp authority.

The paper's single-engine design chooses a transaction's timestamp at commit
time, under the engine's commit critical section, so timestamp order equals
serialization order (Section 2.1).  Scaling out to N shards keeps exactly
that property by lifting the timestamp *draw* behind one shared interface:
every shard's transaction manager points its ``ts_source`` at one
:class:`CommitTimestampAuthority`, and cross-shard transactions draw their
timestamp once — at the coordinator's commit decision — so the same value is
stamped on every participant shard.

Because timestamps come from one logical clock, an ``AS OF t`` read against
any set of shards sees exactly the transactions whose (single, shared)
commit timestamp is ≤ t: a consistent cut, with no vector clocks and no
read-time coordination.
"""

from __future__ import annotations

from repro.clock import SimClock, Timestamp


class CommitTimestampAuthority:
    """Issues cluster-wide unique, monotonically increasing commit timestamps.

    A thin, countable facade over one shared :class:`SimClock`.  Shards use
    it for their single-shard fast-path commits (via the transaction
    manager's ``ts_source`` seam) and the 2PC coordinator uses it once per
    cross-shard decision; both paths therefore interleave into one total
    timestamp order.
    """

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock
        self.issued = 0
        self.high_water: Timestamp | None = None

    def issue(self) -> Timestamp:
        """Draw the next commit timestamp (strictly greater than all prior)."""
        ts = self.clock.next_timestamp()
        self.issued += 1
        self.high_water = ts
        return ts

    def now(self) -> Timestamp:
        """Inclusive upper bound on every timestamp issued so far."""
        return self.clock.now()

    def adopt_floor(self, floor: Timestamp) -> None:
        """Restore monotonicity after restart (see SimClock.adopt_floor)."""
        self.clock.adopt_floor(floor)
        if self.high_water is None or floor > self.high_water:
            self.high_water = floor
