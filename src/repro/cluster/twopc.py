"""Presumed-abort two-phase commit: the coordinator side.

The coordinator owns a WAL-framed decision log (the same
:class:`~repro.wal.log.LogManager` the engines use, so crash() discards the
unforced suffix exactly like an engine log does) and an in-memory decision
table replayed from it after a crash.

Presumed abort (Mohan/Lindsay/Obermarck) sets the force discipline:

* **commit** decisions are force-logged *before* any participant applies
  them — the force is the commit point; a crash after it must still drive
  every participant to commit, and the logged record carries the
  authority-issued timestamp so resolution stamps the identical time
  everywhere;
* **abort** decisions are logged lazily (never forced): a coordinator that
  finds no decision for a gtid answers "abort", so losing an abort record
  to a crash changes nothing;
* once every participant acknowledged, a **forget** record lets replay drop
  the entry, keeping the decision table bounded.
"""

from __future__ import annotations

import enum

from repro.clock import Timestamp
from repro.faults.failpoints import fire
from repro.wal.log import LogManager
from repro.wal.records import CoordDecision, CoordForget


class Decision(enum.Enum):
    COMMIT = "commit"
    ABORT = "abort"


class TwoPhaseCoordinator:
    """Decision log + replayable decision table for cross-shard commits."""

    def __init__(self, log: LogManager | None = None) -> None:
        self.log = log if log is not None else LogManager()
        # {gtid: (decision, commit timestamp or None)} — undecided gtids are
        # absent, which presumed abort reads as "abort".
        self.decisions: dict[int, tuple[Decision, Timestamp | None]] = {}
        self.next_gtid = 1
        self.commit_decisions = 0
        self.abort_decisions = 0
        self.forgotten = 0

    # -- gtid allocation ----------------------------------------------------

    def allocate_gtid(self) -> int:
        gtid = self.next_gtid
        self.next_gtid += 1
        return gtid

    def adopt_gtid_floor(self, max_seen: int) -> None:
        """Never reuse a gtid that any shard's prepare record mentions."""
        self.next_gtid = max(self.next_gtid, max_seen + 1)

    # -- deciding -----------------------------------------------------------

    def decide_commit(
        self, gtid: int, ts: Timestamp, shard_ids: list[int]
    ) -> None:
        """Force-log the commit decision; this force IS the commit point."""
        self.log.append(
            CoordDecision(
                gtid=gtid, commit=True,
                ttime=ts.ttime, sn=ts.sn, shard_ids=list(shard_ids),
            )
        )
        # force(), not force(lsn): an LSN is the record's *start* offset, so
        # when the decision is the first unflushed record force(lsn) no-ops.
        self.log.force()
        self.decisions[gtid] = (Decision.COMMIT, ts)
        self.commit_decisions += 1
        fire("cluster.2pc.decision_logged")   # durable commit decision

    def decide_abort(self, gtid: int, shard_ids: list[int] = ()) -> None:
        """Log the abort decision lazily (presumed abort: no force needed)."""
        self.log.append(
            CoordDecision(gtid=gtid, commit=False, shard_ids=list(shard_ids))
        )
        self.decisions[gtid] = (Decision.ABORT, None)
        self.abort_decisions += 1

    def forget(self, gtid: int) -> None:
        """All participants acknowledged: drop the decision table entry."""
        self.log.append(CoordForget(gtid=gtid))
        self.decisions.pop(gtid, None)
        self.forgotten += 1
        fire("cluster.2pc.forget")

    # -- resolution ---------------------------------------------------------

    def resolve(self, gtid: int) -> tuple[Decision, Timestamp | None]:
        """A participant asks: what happened to this gtid?

        No entry ⇒ presumed abort: either the coordinator never decided
        (crash before the decision) or it already forgot a fully-acked
        transaction — and a forgotten transaction has no in-doubt
        participants left to ask.
        """
        return self.decisions.get(gtid, (Decision.ABORT, None))

    # -- crash / replay -----------------------------------------------------

    def crash(self) -> None:
        """Lose volatile state; the forced log prefix survives."""
        self.log.crash()
        self.decisions.clear()

    def recover(self) -> None:
        """Rebuild the decision table from the surviving decision log."""
        self.decisions.clear()
        max_gtid = 0
        for rec in self.log.records_from(0):
            if isinstance(rec, CoordDecision):
                max_gtid = max(max_gtid, rec.gtid)
                if rec.commit:
                    self.decisions[rec.gtid] = (
                        Decision.COMMIT, Timestamp(rec.ttime, rec.sn)
                    )
                else:
                    self.decisions[rec.gtid] = (Decision.ABORT, None)
            elif isinstance(rec, CoordForget):
                max_gtid = max(max_gtid, rec.gtid)
                self.decisions.pop(rec.gtid, None)
        self.adopt_gtid_floor(max_gtid)
