"""Immortal DB — transaction time support inside a database engine.

A from-scratch Python reproduction of:

    David Lomet, Roger Barga, Mohamed F. Mokbel, Rui Wang, Yunyue Zhu,
    German Shegalov.  "Transaction Time Support Inside a Database Engine."
    ICDE 2006.

The package provides the full engine the paper builds and measures:
versioned slotted-page storage with time splits, lazy commit-time
timestamping with a persistent timestamp table, snapshot isolation,
ARIES-style recovery that never logs timestamping, AS OF queries routed by
time-split page chains or a TSB-tree index, a tiny SQL front end with the
paper's syntax extensions, the moving-objects workload generator used in
its evaluation, and executable baselines for the related systems of
Section 6 (Rdb commit lists, Oracle Flashback, Postgres vacuuming).

Quick start::

    from repro import ImmortalDB, ColumnType, TxnMode

    db = ImmortalDB()
    db.create_table(
        "MovingObjects",
        columns=[("Oid", ColumnType.SMALLINT),
                 ("LocationX", ColumnType.INT),
                 ("LocationY", ColumnType.INT)],
        key="Oid",
        immortal=True,
    )
    objects = db.table("MovingObjects")
    with db.transaction() as txn:
        objects.insert(txn, {"Oid": 1, "LocationX": 10, "LocationY": 20})
    past = db.now()
    db.advance_time(60_000)
    with db.transaction() as txn:
        objects.update(txn, 1, {"LocationX": 99})
    assert objects.read_as_of(past, 1)["LocationX"] == 10
"""

from repro.clock import SimClock, Timestamp
from repro.concurrency.transaction import Transaction, TxnMode
from repro.core.catalog import Catalog, ColumnDef, TableSchema
from repro.core.engine import ImmortalDB
from repro.core.inspect import inspect_table
from repro.core.integrity import verify_integrity
from repro.core.rowcodec import ColumnType
from repro.core.table import Table
from repro.errors import ImmortalDBError

__version__ = "0.1.0"

__all__ = [
    "ImmortalDB",
    "Table",
    "Timestamp",
    "SimClock",
    "ColumnType",
    "TxnMode",
    "Transaction",
    "Catalog",
    "ColumnDef",
    "TableSchema",
    "ImmortalDBError",
    "inspect_table",
    "verify_integrity",
    "__version__",
]
