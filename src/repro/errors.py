"""Exception hierarchy for the Immortal DB reproduction.

Every error raised by the library derives from :class:`ImmortalDBError`, so
callers can catch one base class.  The hierarchy mirrors the subsystem layout:
storage, write-ahead log, timestamping, concurrency, access methods, catalog,
and the SQL front end each get their own branch.
"""

from __future__ import annotations


class ImmortalDBError(Exception):
    """Base class for all errors raised by this library."""


# ---------------------------------------------------------------------------
# Storage layer
# ---------------------------------------------------------------------------

class StorageError(ImmortalDBError):
    """Base class for storage-engine errors (pages, disk, buffer pool)."""


class PageFullError(StorageError):
    """A record does not fit in the target page.

    This is the signal that drives page splitting: callers catch it and
    invoke a time split and/or key split, then retry the insertion.
    """


class PageFormatError(StorageError):
    """A page image failed to deserialize (corruption or version skew)."""


class PageNotFoundError(StorageError):
    """The requested page id does not exist on the disk."""


class BufferPoolError(StorageError):
    """Buffer-pool protocol violation (e.g. evicting a pinned page)."""


class BufferExhaustedError(BufferPoolError):
    """Eviction found no victim: every frame is pinned or latched.

    Raised instead of stalling when an admission cannot make room — a pool
    sized below the working set of a single operation is a configuration
    error the caller must see, not spin on.  Carries the pool capacity and
    a per-cause breakdown of why each frame was unevictable.
    """

    def __init__(
        self,
        message: str,
        *,
        capacity: int | None = None,
        pinned: int = 0,
        latched: int = 0,
    ) -> None:
        super().__init__(message)
        self.capacity = capacity
        self.pinned = pinned
        self.latched = latched


class LatchError(StorageError):
    """Incompatible latch request on a page frame."""


class ChecksumError(StorageError):
    """A page image failed its CRC32 verification on read.

    Raised only when page checksums are enabled (``page_checksums=True`` on
    the engine); it turns silent media corruption — torn writes, bit-rot —
    into a typed, catchable failure instead of downstream chain damage.

    Carries enough context to dispatch a repair from the exception alone:
    the page id, the CRC the image claims vs the CRC it actually hashes to,
    and the LSN stamped in the (possibly corrupt) header.
    """

    def __init__(
        self,
        message: str,
        *,
        page_id: int | None = None,
        stored_crc: int | None = None,
        computed_crc: int | None = None,
        page_lsn: int | None = None,
    ) -> None:
        super().__init__(message)
        self.page_id = page_id
        self.stored_crc = stored_crc
        self.computed_crc = computed_crc
        self.page_lsn = page_lsn


class TransientIOError(StorageError):
    """An I/O failure a retry may clear (the disk seam's retry class)."""

    def __init__(
        self,
        message: str,
        *,
        page_id: int | None = None,
        op: str | None = None,
    ) -> None:
        super().__init__(message)
        self.page_id = page_id
        self.op = op


class InjectedIOError(TransientIOError):
    """A fault model injected a transient I/O failure (read or write)."""


class PageQuarantinedError(StorageError):
    """The page is quarantined: corrupt on disk and not (yet) repaired.

    Raised by the buffer pool when a read faults on a quarantined page while
    media recovery cannot restore it.  Readers catch it to degrade — current
    reads return a typed ``Degraded`` result, as-of reads fall back to the
    intact history pages of the quarantine's stale backup view.
    """

    def __init__(self, message: str, *, page_id: int | None = None) -> None:
        super().__init__(message)
        self.page_id = page_id


class MediaRecoveryError(StorageError):
    """Single-page restore could not reconstruct the page (coverage gap)."""

    def __init__(self, message: str, *, page_id: int | None = None) -> None:
        super().__init__(message)
        self.page_id = page_id


# ---------------------------------------------------------------------------
# Write-ahead log / recovery
# ---------------------------------------------------------------------------

class WALError(ImmortalDBError):
    """Base class for write-ahead-log errors."""


class LogFormatError(WALError):
    """A log record image failed to deserialize."""


class RecoveryError(WALError):
    """Crash recovery could not bring the database to a consistent state."""


# ---------------------------------------------------------------------------
# Timestamping
# ---------------------------------------------------------------------------

class TimestampError(ImmortalDBError):
    """Base class for timestamp-management errors."""


class UnknownTransactionError(TimestampError):
    """A TID was looked up that is in neither the VTT nor the PTT."""


class NotYetCommittedError(TimestampError):
    """Attempt to stamp a record whose transaction has not committed."""


# ---------------------------------------------------------------------------
# Concurrency control
# ---------------------------------------------------------------------------

class ConcurrencyError(ImmortalDBError):
    """Base class for transaction / locking errors."""


class LockConflictError(ConcurrencyError):
    """A lock request conflicts with a lock held by another transaction.

    Carries the full waits-for edge the failed request would have created:
    the waiter, every conflicting holder with its mode, the resource, and
    the requested mode — enough to print (or assert on) the exact conflict
    without consulting the lock table.  ``holder_tid`` remains the first
    conflicting holder for backward compatibility.
    """

    def __init__(
        self,
        message: str,
        holder_tid: int | None = None,
        *,
        waiter_tid: int | None = None,
        holder_tids: tuple[int, ...] = (),
        holder_modes: tuple = (),
        resource=None,
        requested_mode=None,
    ) -> None:
        super().__init__(message)
        self.holder_tid = holder_tid
        self.waiter_tid = waiter_tid
        self.holder_tids = holder_tids
        self.holder_modes = holder_modes
        self.resource = resource
        self.requested_mode = requested_mode


class DeadlockError(ConcurrencyError):
    """A lock wait would create a cycle in the waits-for graph.

    Raised in the victim transaction's thread.  ``cycle`` is the TID cycle
    that was detected (victim included) and ``victim_tid`` the transaction
    chosen to abort; callers abort it and usually retry with backoff.
    """

    def __init__(
        self,
        message: str,
        *,
        cycle: tuple[int, ...] = (),
        victim_tid: int | None = None,
        resource=None,
    ) -> None:
        super().__init__(message)
        self.cycle = cycle
        self.victim_tid = victim_tid
        self.resource = resource


class OCCValidationError(ConcurrencyError):
    """Optimistic commit validation failed: a key this transaction read was
    overwritten by a commit after its snapshot was taken (``cc_mode="occ"``).
    The transaction must abort and retry against a fresh snapshot."""

    def __init__(
        self, message: str, *, table_id: int | None = None, key: bytes | None = None
    ) -> None:
        super().__init__(message)
        self.table_id = table_id
        self.key = key


class TransactionStateError(ConcurrencyError):
    """Operation is illegal in the transaction's current state."""


class WriteConflictError(ConcurrencyError):
    """First-committer-wins violation under snapshot isolation."""


class ReadOnlyTransactionError(ConcurrencyError):
    """An AS OF (historical) transaction attempted a write."""


class TimestampOrderError(ConcurrencyError):
    """A CURRENT TIME transaction touched data committed after its pinned
    timestamp; it must abort (the cost of early timestamp choice, §2.1/§7.2)."""


# ---------------------------------------------------------------------------
# Access methods
# ---------------------------------------------------------------------------

class AccessMethodError(ImmortalDBError):
    """Base class for index-structure errors (B-tree, TSB-tree, splits)."""


class KeyNotFoundError(AccessMethodError):
    """Exact-match lookup found no record for the key."""


class DuplicateKeyError(AccessMethodError):
    """Insert of a key that already has a live (non-deleted) record."""


# ---------------------------------------------------------------------------
# Catalog / engine
# ---------------------------------------------------------------------------

class CatalogError(ImmortalDBError):
    """Base class for catalog errors."""


class TableNotFoundError(CatalogError):
    """The named table does not exist."""


class TableExistsError(CatalogError):
    """CREATE TABLE for a name that already exists."""


class SchemaError(CatalogError):
    """Row does not match the table schema."""


# ---------------------------------------------------------------------------
# SQL front end
# ---------------------------------------------------------------------------

class SQLError(ImmortalDBError):
    """Base class for SQL front-end errors."""


class SQLSyntaxError(SQLError):
    """The statement failed to lex or parse."""

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position


class SQLExecutionError(SQLError):
    """The statement parsed but could not be executed."""


# ---------------------------------------------------------------------------
# Cluster / distributed commit
# ---------------------------------------------------------------------------

class ClusterError(ImmortalDBError):
    """Base class for sharded-cluster errors (routing, two-phase commit)."""


class InDoubtError(ClusterError):
    """A read touched data locked by an unresolved prepared transaction.

    After a crash, a participant shard restores every PREPARED transaction
    with its locks intact (presumed-abort 2PC: the shard cannot decide the
    outcome alone).  Until the coordinator's decision is replayed, any
    conflicting access surfaces this typed, retryable error instead of a
    generic lock conflict — callers back off and retry once resolution runs.
    """

    def __init__(
        self,
        message: str,
        *,
        gtid: int | None = None,
        shard_id: int | None = None,
    ) -> None:
        super().__init__(message)
        self.gtid = gtid
        self.shard_id = shard_id


class ShardUnavailableError(ClusterError):
    """The routed shard is down (crashed and not yet recovered)."""

    def __init__(self, message: str, *, shard_id: int | None = None) -> None:
        super().__init__(message)
        self.shard_id = shard_id


class CrossShardAbort(ClusterError):
    """A cross-shard transaction aborted during the prepare phase.

    One participant voted no (conflict, deadlock, validation failure); the
    coordinator rolled every participant back.  Carries the shard and local
    transaction that vetoed, so callers can report *where* the conflict was;
    the whole transaction is retryable from the top.
    """

    def __init__(
        self,
        message: str,
        *,
        victim_tid: int | None = None,
        shard_id: int | None = None,
        gtid: int | None = None,
    ) -> None:
        super().__init__(message)
        self.victim_tid = victim_tid
        self.shard_id = shard_id
        self.gtid = gtid


# ---------------------------------------------------------------------------
# Service layer
# ---------------------------------------------------------------------------

class ServiceError(ImmortalDBError):
    """Base class for network-service errors."""


class ProtocolError(ServiceError):
    """A wire message violated the protocol (bad frame, bad JSON, bad op)."""


class TornFrameError(ProtocolError):
    """A frame failed its length/CRC32 check; framing sync is lost.

    The connection that produced it cannot be resynchronized (bytes after a
    torn frame are garbage), so both peers close it.  A client retries the
    request on a fresh connection; the server's idempotency cache makes the
    retry safe for requests it had already executed.
    """


class ServiceOverloadedError(ServiceError):
    """Admission control rejected the request: the service is saturated.

    Carries a ``retry_after_ms`` hint scaled by current load and the
    ``shed_kind`` ("read" or "write") that was shed.  Reads are shed first —
    they are cheap to retry and hold no locks — so in-flight writes keep
    draining instead of collapsing under a thundering herd.
    """

    def __init__(
        self,
        message: str,
        *,
        retry_after_ms: float = 50.0,
        shed_kind: str = "read",
    ) -> None:
        super().__init__(message)
        self.retry_after_ms = retry_after_ms
        self.shed_kind = shed_kind


class RequestTimeoutError(ServiceError):
    """A request exceeded the service's per-request deadline."""


class SessionStateError(ServiceError):
    """The session cannot accept the request (closed, defunct, draining)."""


class ConnectionLostError(ServiceError):
    """The transport dropped mid-exchange (client side of a torn wire)."""


class PoolExhaustedError(ServiceError):
    """Every pooled connection is checked out and the pool is at capacity."""


class DeadPeerError(ServiceError):
    """The pool's peer failed enough consecutive dials to be declared dead.

    Acquires fail fast until the quarantine window lapses, at which point
    the pool probes the peer again (one dial, not a full backoff ladder).
    """

    def __init__(self, message: str, *, retry_after_s: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s
