"""Drivers shared by the benchmark suite."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.bench.costmodel import COST_2005, CostModel, stats_delta
from repro.clock import Timestamp
from repro.core.engine import ImmortalDB
from repro.core.rowcodec import ColumnType
from repro.core.table import Table
from repro.workloads.moving_objects import MovingObjectEvent, MovingObjectWorkload

MOVING_OBJECT_COLUMNS = [
    ("Oid", ColumnType.SMALLINT),
    ("LocationX", ColumnType.INT),
    ("LocationY", ColumnType.INT),
]


def fresh_moving_objects_db(
    *,
    immortal: bool = True,
    timestamping: str = "lazy",
    use_tsb_index: bool = False,
    buffer_pages: int = 4096,
) -> tuple[ImmortalDB, Table]:
    """An engine plus the paper's MovingObjects table (Section 4.1)."""
    db = ImmortalDB(
        buffer_pages=buffer_pages,
        timestamping=timestamping,
        use_tsb_index=use_tsb_index,
        ms_per_commit=0.0,   # the workload drives the clock explicitly
    )
    table = db.create_table(
        "MovingObjects", MOVING_OBJECT_COLUMNS, key="Oid", immortal=immortal
    )
    return db, table


def apply_event(db: ImmortalDB, table: Table, event: MovingObjectEvent) -> None:
    """Apply one workload event as one transaction, advancing the clock."""
    now_ms = db.clock.tick * 20.0
    if event.time_ms > now_ms:
        db.clock.advance_ms(event.time_ms - now_ms)
    with db.transaction() as txn:
        if event.kind == "insert":
            table.insert(
                txn,
                {"Oid": event.oid, "LocationX": event.x, "LocationY": event.y},
            )
        else:
            table.update(
                txn, event.oid, {"LocationX": event.x, "LocationY": event.y}
            )


def run_moving_object_stream(
    db: ImmortalDB,
    table: Table,
    *,
    objects: int = 500,
    transactions: int = 32_000,
    seed: int = 7,
    mark_every: int | None = None,
) -> list[Timestamp]:
    """Replay ``transactions`` moving-object events; returns time marks.

    ``mark_every`` captures ``db.now()`` every N transactions (for as-of
    probes over the run's history).
    """
    workload = MovingObjectWorkload(objects=objects, seed=seed)
    marks: list[Timestamp] = []
    for i, event in enumerate(workload.events(max_events=transactions)):
        if mark_every is not None and i % mark_every == 0:
            marks.append(db.now())
        apply_event(db, table, event)
    marks.append(db.now())
    return marks


@dataclass
class Measurement:
    wall_seconds: float
    simulated_ms: float
    delta: dict


def measure(
    db: ImmortalDB,
    fn: Callable[[], object],
    *,
    cost_model: CostModel = COST_2005,
) -> Measurement:
    """Run ``fn`` once, returning wall time + simulated time + raw deltas."""
    before = db.stats()
    start = time.perf_counter()
    fn()
    wall = time.perf_counter() - start
    delta = stats_delta(before, db.stats())
    return Measurement(wall, cost_model.simulated_ms(delta), delta)
