"""Deterministic cost model: counted events → simulated milliseconds.

Calibration targets come straight from the paper's Section 5.1: on its
hardware a conventional single-record update transaction averages
**9.6 ms**, and Immortal DB adds **≈1.1 ms (11 %)**.  The constants below
reproduce those magnitudes from first principles:

* a small transaction's latency is dominated by the commit-time log force —
  one rotational-latency-ish disk write (~8 ms on a 2005 7200 rpm disk);
* the rest is CPU: statement execution through the full engine stack;
* Immortal DB's extra work per update transaction is the PTT insert, the
  timestamp-table consultation, and stamping the prior version — each
  charged separately so ablations (eager timestamping, GC off) shift the
  simulated time for the right reasons.

The model is linear in the engine's counters, so any stats delta from
:meth:`repro.core.engine.ImmortalDB.stats` can be priced.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Linear event-cost model (all costs in milliseconds per event)."""

    log_force_ms: float = 8.0          # commit-time force: rotational latency
    log_byte_ms: float = 0.00012       # sequential log bandwidth (~8 MB/s)
    random_io_ms: float = 8.5          # random page read/write
    sequential_io_ms: float = 0.9      # sequential page transfer
    commit_cpu_ms: float = 1.55        # per-transaction engine CPU
    record_version_cpu_ms: float = 0.08   # allocate+link one version
    stamp_cpu_ms: float = 0.25         # revisit + rewrite one timestamp
    vtt_lookup_ms: float = 0.02        # hash probe
    ptt_lookup_ms: float = 0.35        # B-tree probe (cached nodes)
    ptt_insert_ms: float = 0.70        # B-tree tail insert + latch
    revisit_page_ms: float = 0.45      # eager: revisit one page pre-commit
    asof_page_scan_ms: float = 0.60    # examine one data page's chains
    chain_hop_ms: float = 0.65         # follow one history-page link
    tsb_lookup_ms: float = 0.40        # TSB index descent
    smo_log_ms: float = 0.60           # one physiological split log record
    # Structural read-path counters.  Priced at zero in the 2005 calibration
    # so the figure benchmarks are unchanged; non-zero rates let ablations
    # price page touches, chain traversal, and route-cache probes directly.
    page_read_ms: float = 0.0          # touch one data page on a read path
    chain_step_ms: float = 0.0         # inspect one version in a chain
    route_probe_ms: float = 0.0        # one as-of route-cache probe
    # Media-resilience counters (PR 5).  Also zero-priced by default — the
    # 2005 calibration ran on healthy media — but non-zero rates price the
    # scrubber's background reads, transient-IO retries (and their backoff
    # dwell), and full single-page restores for degradation studies.
    io_retry_ms: float = 0.0           # one reissued read/write attempt
    backoff_step_ms: float = 0.0       # one abstract backoff dwell step
    scrub_page_ms: float = 0.0         # scrub-verify one page from disk
    repair_page_ms: float = 0.0        # one single-page media restore
    # Concurrent-execution counters (PR 6).  Zero-priced by default — the
    # 2005 calibration is single-threaded — but non-zero rates let the
    # concurrency ablation charge lock waiting (priced from the measured
    # wall-clock lock_wait_ns), deadlock victim aborts, worker retries, and
    # OCC validation rejections.
    lock_wait_ms_per_ms: float = 0.0   # per millisecond actually spent parked
    deadlock_ms: float = 0.0           # one detected cycle + victim abort
    txn_retry_ms: float = 0.0          # one worker-pool retry round-trip
    occ_validation_ms: float = 0.0     # one commit-time validation rejection
    # Eviction/flush-scheduling counters (PR 6).  Zero-priced by default —
    # the figure workloads fit in the pool, so these are all zero there and
    # the fig5/fig6 results stay byte-identical — but non-zero rates let the
    # scale benchmark price dirty-victim write-backs, per-batch scheduling
    # overhead, the coalescing credit (negative rates model saved seeks),
    # and the pinned-frame scan work of a thrashing pool.
    dirty_eviction_ms: float = 0.0     # write-back forced by an eviction
    flush_batch_ms: float = 0.0        # assemble + dispatch one write batch
    coalesced_write_ms: float = 0.0    # one batch write adjacent to previous
    evict_scan_skip_ms: float = 0.0    # step over one pinned/latched frame
    # Cold-history archive counters (PR 7).  Zero-priced by default —
    # archiving is off in the figure workloads, so every counter is zero
    # there and fig5/fig6 stay byte-identical — but non-zero rates let the
    # history-depth benchmark price block materialization (a sequential
    # read + decode of one delta block), per-page migration work, and run
    # merges for tiering studies.
    archive_migrate_page_ms: float = 0.0   # encode + append + relink one page
    archive_block_read_ms: float = 0.0     # fetch + decode one archive block
    archive_merge_ms: float = 0.0          # consolidate one level of runs
    archive_compact_ms: float = 0.0        # rewrite + swap the archive store
    # Service-layer counters (PR 8).  Zero-priced by default — the figure
    # workloads run in-process, every service counter is zero there and
    # fig5/fig6 stay byte-identical — but non-zero rates let a service
    # study price per-request dispatch, admission rejections (the client's
    # wasted round-trip), request-deadline expiries, disconnect aborts,
    # and quarantine-degraded replies.
    service_accept_ms: float = 0.0         # dispatch one admitted request
    service_reject_ms: float = 0.0         # shed one request at admission
    service_timeout_ms: float = 0.0        # one per-request deadline expiry
    service_abort_ms: float = 0.0          # abort a bracket on disconnect
    service_degraded_ms: float = 0.0       # assemble one degraded reply

    def simulated_ms(self, delta: dict) -> float:
        """Price a stats delta (see :meth:`ImmortalDB.stats`)."""
        random_reads = delta.get("disk_reads", 0) - delta.get(
            "disk_sequential_reads", 0
        )
        random_writes = delta.get("disk_writes", 0) - delta.get(
            "disk_sequential_writes", 0
        )
        sequential = delta.get("disk_sequential_reads", 0) + delta.get(
            "disk_sequential_writes", 0
        )
        # Full page images in the log are a simulator artifact: real
        # engines log splits physiologically.  Price image records by
        # count, and exclude their bytes from log bandwidth.
        effective_log_bytes = delta.get("log_bytes", 0) - delta.get(
            "log_image_bytes", 0
        )
        return (
            delta.get("log_forces", 0) * self.log_force_ms
            + effective_log_bytes * self.log_byte_ms
            + delta.get("log_image_records", 0) * self.smo_log_ms
            + (random_reads + random_writes) * self.random_io_ms
            + sequential * self.sequential_io_ms
            + delta.get("commits", 0) * self.commit_cpu_ms
            + delta.get("version_ops", 0) * self.record_version_cpu_ms
            + delta.get("stamps", 0) * self.stamp_cpu_ms
            + delta.get("vtt_hits", 0) * self.vtt_lookup_ms
            + delta.get("ptt_lookups", 0) * self.ptt_lookup_ms
            + delta.get("ptt_inserts", 0) * self.ptt_insert_ms
            + delta.get("ptt_deletes", 0) * self.ptt_insert_ms
            + delta.get("commit_revisit_pages", 0) * self.revisit_page_ms
            + delta.get("asof_pages_examined", 0) * self.asof_page_scan_ms
            + delta.get("asof_chain_hops", 0) * self.chain_hop_ms
            + delta.get("tsb_lookups", 0) * self.tsb_lookup_ms
            + delta.get("asof_page_reads", 0) * self.page_read_ms
            + delta.get("asof_chain_steps", 0) * self.chain_step_ms
            + (
                delta.get("route_cache_hits", 0)
                + delta.get("route_cache_misses", 0)
            ) * self.route_probe_ms
            + (
                delta.get("io_read_retries", 0)
                + delta.get("io_write_retries", 0)
            ) * self.io_retry_ms
            + delta.get("io_backoff_steps", 0) * self.backoff_step_ms
            + delta.get("scrub_pages", 0) * self.scrub_page_ms
            + delta.get("pages_repaired", 0) * self.repair_page_ms
            + (delta.get("lock_wait_ns", 0) / 1e6) * self.lock_wait_ms_per_ms
            + delta.get("deadlocks_detected", 0) * self.deadlock_ms
            + delta.get("txn_retries", 0) * self.txn_retry_ms
            + delta.get("occ_validation_failures", 0) * self.occ_validation_ms
            + delta.get("buffer_dirty_evictions", 0) * self.dirty_eviction_ms
            + delta.get("flush_batches", 0) * self.flush_batch_ms
            + delta.get("flush_coalesced_writes", 0) * self.coalesced_write_ms
            + delta.get("evict_scan_skips", 0) * self.evict_scan_skip_ms
            + delta.get("archive_pages_migrated", 0) * self.archive_migrate_page_ms
            + delta.get("archive_block_reads", 0) * self.archive_block_read_ms
            + delta.get("archive_merges", 0) * self.archive_merge_ms
            + delta.get("archive_compactions", 0) * self.archive_compact_ms
            + delta.get("service_accepts", 0) * self.service_accept_ms
            + delta.get("service_rejects", 0) * self.service_reject_ms
            + delta.get("service_timeouts", 0) * self.service_timeout_ms
            + delta.get("service_aborted_on_disconnect", 0)
            * self.service_abort_ms
            + delta.get("service_degraded_replies", 0)
            * self.service_degraded_ms
        )


COST_2005 = CostModel()
"""The default calibration (paper hardware, see module docstring)."""


def stats_delta(before: dict, after: dict) -> dict:
    """Elementwise difference of two engine stats snapshots."""
    return {key: after.get(key, 0) - before.get(key, 0) for key in after}
