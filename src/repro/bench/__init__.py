"""Benchmark infrastructure: cost model, drivers, reporting.

The paper's absolute numbers come from 2005 hardware (2.8 GHz P4, one
spinning disk).  Our substrate is a simulator, so each bench reports two
measurements:

* **wall-clock** seconds of the Python implementation (pytest-benchmark),
  useful for regression tracking but not comparable to the paper, and
* **simulated milliseconds** from :class:`~repro.bench.costmodel.CostModel`,
  which converts counted physical events (log forces, page I/O, PTT
  operations, stamping work) into time on the paper's hardware — this is
  the number whose *shape* should match the paper's figures.
"""

from repro.bench.costmodel import CostModel, COST_2005
from repro.bench.harness import (
    apply_event,
    fresh_moving_objects_db,
    measure,
    run_moving_object_stream,
)
from repro.bench.reporting import format_table, save_results

__all__ = [
    "CostModel",
    "COST_2005",
    "measure",
    "fresh_moving_objects_db",
    "apply_event",
    "run_moving_object_stream",
    "format_table",
    "save_results",
]
