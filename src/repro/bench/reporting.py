"""ASCII tables and result persistence for the benchmark suite."""

from __future__ import annotations

import json
import os
from typing import Sequence


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    note: str | None = None,
) -> str:
    """Render an aligned ASCII table (what each bench prints)."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells
        else len(headers[i])
        for i in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = [
        "",
        f"=== {title} ===",
        " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        sep,
    ]
    for row in cells:
        lines.append(
            " | ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    if note:
        lines.append(f"  note: {note}")
    lines.append("")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if abs(value) >= 100:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def results_dir() -> str:
    base = os.environ.get(
        "IMMORTAL_RESULTS_DIR",
        os.path.join(os.path.dirname(__file__), "..", "..", "..", "results"),
    )
    path = os.path.abspath(base)
    os.makedirs(path, exist_ok=True)
    return path


def save_results(name: str, payload: dict) -> str:
    """Persist a bench's rows as JSON under results/; returns the path."""
    path = os.path.join(results_dir(), f"{name}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, default=str)
    return path
