"""Client-side connection pooling with health checks and dead-peer detection.

A :class:`ClientPool` keeps up to ``max_size`` connections to one service
peer and hands them out LIFO (the most recently used connection is the most
likely to still be warm).  Three robustness behaviours ride on top of the
plain checkout/checkin cycle:

* **Health checks.**  A connection that sat idle longer than
  ``check_idle_s`` is pinged before being handed out; a failed ping
  discards it (dead-connection detection) and the acquire falls through to
  the next idle connection or a fresh dial.  Checkouts never return a
  connection the pool has reason to believe is dead.
* **Seeded-backoff reconnect.**  A failed dial is retried through the same
  deterministic :class:`~repro.storage.disk.RetryPolicy` ladder the rest of
  the system uses, so connection storms back off reproducibly under test.
* **Dead-peer detection.**  ``dead_after`` consecutive dial failures
  declare the *peer* (not just a connection) dead; subsequent acquires fail
  fast with :class:`~repro.errors.DeadPeerError` instead of stacking dial
  timeouts, until a quarantine window lapses and one probe dial is allowed
  through.

The pool is transport-agnostic: anything with ``ping()``/``close()`` works,
so tests drive it with in-process fakes and production wires it to
:class:`~repro.service.client.ServiceClient`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import (
    ConnectionLostError,
    DeadPeerError,
    PoolExhaustedError,
    ServiceError,
)
from repro.storage.disk import RetryPolicy


@dataclass
class PoolStats:
    dials: int = 0              # factory calls that succeeded
    dial_failures: int = 0      # factory calls that raised
    reuses: int = 0             # checkouts satisfied from the idle list
    health_checks: int = 0      # pings sent to idle connections
    dead_connections: int = 0   # idle connections discarded by a failed ping
    dead_peer_trips: int = 0    # times the peer was declared dead
    exhausted: int = 0          # acquires refused at capacity


@dataclass
class _Pooled:
    """One pooled connection plus the bookkeeping health checks need."""

    client: object
    idle_since: float = 0.0
    uses: int = 0


class ClientPool:
    """A bounded pool of connections to one service peer."""

    def __init__(
        self,
        factory,
        *,
        max_size: int = 4,
        check_idle_s: float = 5.0,
        retry_policy: RetryPolicy | None = None,
        retry_step_ms: float = 2.0,
        dead_after: int = 3,
        dead_retry_s: float = 1.0,
        now=time.monotonic,
        sleep=time.sleep,
    ) -> None:
        if max_size < 1:
            raise ValueError("a pool needs at least one slot")
        self.factory = factory
        self.max_size = max_size
        self.check_idle_s = check_idle_s
        self.retry_policy = retry_policy or RetryPolicy(max_attempts=3)
        self.retry_step_ms = retry_step_ms
        self.dead_after = dead_after
        self.dead_retry_s = dead_retry_s
        self._now = now
        self._sleep = sleep
        self._idle: list[_Pooled] = []     # LIFO: hottest connection last
        self._checked_out = 0
        self._consecutive_dial_failures = 0
        self._dead_until: float | None = None
        self.stats = PoolStats()

    # -- introspection --------------------------------------------------------

    @property
    def idle(self) -> int:
        return len(self._idle)

    @property
    def checked_out(self) -> int:
        return self._checked_out

    @property
    def peer_dead(self) -> bool:
        return (
            self._dead_until is not None and self._now() < self._dead_until
        )

    # -- checkout / checkin ---------------------------------------------------

    def acquire(self):
        """Check out a healthy connection (reuse, else dial).

        Raises :class:`PoolExhaustedError` at capacity and
        :class:`DeadPeerError` while the peer is quarantined.
        """
        while self._idle:
            pooled = self._idle.pop()
            if self._healthy(pooled):
                pooled.uses += 1
                self._checked_out += 1
                self.stats.reuses += 1
                return pooled.client
        if self._checked_out >= self.max_size:
            self.stats.exhausted += 1
            raise PoolExhaustedError(
                f"all {self.max_size} connections are checked out"
            )
        client = self._dial()
        self._checked_out += 1
        return client

    def release(self, client, *, discard: bool = False) -> None:
        """Return a connection; ``discard=True`` closes it instead (the
        caller saw it fail and the pool must not hand it to anyone else)."""
        self._checked_out = max(0, self._checked_out - 1)
        if discard:
            self._close_quietly(client)
            return
        self._idle.append(
            _Pooled(client=client, idle_since=self._now())
        )

    class _Lease:
        def __init__(self, pool: "ClientPool") -> None:
            self.pool = pool
            self.client = pool.acquire()

        def __enter__(self):
            return self.client

        def __exit__(self, exc_type, exc, tb) -> None:
            # A connection that just raised a transport error is poisoned;
            # anything else (SQL errors included) leaves it reusable.
            broken = exc is not None and isinstance(
                exc, (ConnectionLostError, OSError)
            )
            self.pool.release(self.client, discard=broken)

    def connection(self) -> "ClientPool._Lease":
        """``with pool.connection() as client: ...`` — checkout scoped to
        the block; transport failures discard the connection on exit."""
        return self._Lease(self)

    def close(self) -> None:
        """Close every idle connection (checked-out ones close on release)."""
        while self._idle:
            self._close_quietly(self._idle.pop().client)

    def __enter__(self) -> "ClientPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- health ---------------------------------------------------------------

    def _healthy(self, pooled: _Pooled) -> bool:
        """Ping a connection that has been idle long enough to distrust."""
        if self._now() - pooled.idle_since < self.check_idle_s:
            return True
        self.stats.health_checks += 1
        try:
            pooled.client.ping()
            return True
        except (ServiceError, OSError):
            self.stats.dead_connections += 1
            self._close_quietly(pooled.client)
            return False

    def check_idle(self) -> int:
        """Proactively ping every idle connection; returns survivors."""
        survivors: list[_Pooled] = []
        while self._idle:
            pooled = self._idle.pop()
            self.stats.health_checks += 1
            try:
                pooled.client.ping()
            except (ServiceError, OSError):
                self.stats.dead_connections += 1
                self._close_quietly(pooled.client)
                continue
            pooled.idle_since = self._now()
            survivors.append(pooled)
        survivors.reverse()   # preserve LIFO order
        self._idle = survivors
        return len(survivors)

    # -- dialing --------------------------------------------------------------

    def _dial(self):
        if self._dead_until is not None:
            if self._now() < self._dead_until:
                raise DeadPeerError(
                    f"peer declared dead after "
                    f"{self._consecutive_dial_failures} consecutive dial "
                    f"failures; retry after {self.dead_retry_s:.3f}s",
                    retry_after_s=self._dead_until - self._now(),
                )
            # Quarantine lapsed: allow exactly one probe dial through.
            self._dead_until = None
        last: Exception | None = None
        attempts = (
            1 if self._consecutive_dial_failures >= self.dead_after
            else self.retry_policy.max_attempts
        )
        for attempt in range(1, attempts + 1):
            if attempt > 1:
                steps = self.retry_policy.backoff_steps(attempt - 1)
                if self.retry_step_ms:
                    self._sleep(steps * self.retry_step_ms / 1000.0)
            try:
                client = self.factory()
            except (ServiceError, OSError) as exc:
                last = exc
                self._consecutive_dial_failures += 1
                self.stats.dial_failures += 1
                continue
            self._consecutive_dial_failures = 0
            self.stats.dials += 1
            return client
        if self._consecutive_dial_failures >= self.dead_after:
            self._dead_until = self._now() + self.dead_retry_s
            self.stats.dead_peer_trips += 1
            raise DeadPeerError(
                f"peer declared dead after "
                f"{self._consecutive_dial_failures} consecutive dial "
                f"failures",
                retry_after_s=self.dead_retry_s,
            ) from last
        raise ConnectionLostError(
            f"dial failed {attempts} times: {last}"
        ) from last

    @staticmethod
    def _close_quietly(client) -> None:
        try:
            client.close()
        except (ServiceError, OSError):
            pass
