"""``python -m repro.service`` — serve an engine over TCP.

Quickstart::

    python -m repro.service --port 7070 --demo &
    # then, from any client speaking the framed protocol:
    #   {"op": "sql", "sql": "SELECT * FROM demo WHERE k = 1"}

``--demo`` creates a small immortal table so the temporal surface
(``AS OF``, ``SELECT HISTORY OF``) is explorable immediately.
"""

from __future__ import annotations

import argparse
import asyncio

from repro.core.engine import ImmortalDB
from repro.service.server import SQLService


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve an ImmortalDB engine over the framed SQL protocol",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7070)
    parser.add_argument("--path", default=None,
                        help="directory for a file-backed engine "
                             "(default: in-memory)")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker-pool threads (0 = inline execution)")
    parser.add_argument("--max-inflight", type=int, default=64,
                        help="admission budget (reads shed at 75%%)")
    parser.add_argument("--group-commit", type=int, default=8,
                        help="group-commit window")
    parser.add_argument("--request-timeout", type=float, default=30.0)
    parser.add_argument("--idle-timeout", type=float, default=300.0)
    parser.add_argument("--demo", action="store_true",
                        help="create a demo immortal table with history")
    return parser


def _seed_demo(db: ImmortalDB) -> None:
    db.sql("CREATE IMMORTAL TABLE demo (k INT PRIMARY KEY, v TEXT)")
    for i in range(8):
        db.sql(f"INSERT INTO demo (k, v) VALUES ({i}, 'v0_{i}')")
    db.advance_time(1000.0)
    for i in range(0, 8, 2):
        db.sql(f"UPDATE demo SET v = 'v1_{i}' WHERE k = {i}")
    db.flush_commits()


async def _serve(args) -> None:
    db = ImmortalDB(args.path, group_commit_window=args.group_commit)
    if args.demo:
        _seed_demo(db)
    service = SQLService(
        db,
        host=args.host,
        port=args.port,
        pool_workers=args.workers,
        max_inflight=args.max_inflight,
        request_timeout_s=args.request_timeout,
        idle_timeout_s=args.idle_timeout,
    )
    await service.start()
    print(f"repro.service listening on {service.host}:{service.port}")
    try:
        await service.serve_forever()
    except (KeyboardInterrupt, asyncio.CancelledError):
        pass
    finally:
        await service.shutdown()
        db.close()


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        asyncio.run(_serve(args))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
