"""The asyncio socket server over :class:`~repro.service.core.ServiceCore`.

The event loop only shuffles bytes: frames are reassembled per connection,
each request's execution is handed to a thread (so the engine's blocking
locks and the worker pool's bounded queue apply their backpressure without
stalling the loop), and the response is written back framed.

Robustness behaviours, all typed and test-covered:

* **per-request timeout** — ``asyncio.wait_for`` around execution; on
  expiry the client gets a ``timeout`` response and the connection closes;
  the still-running body sees the session marked defunct and aborts its
  bracket the moment it completes.
* **idle-session timeout** — a connection silent past ``idle_timeout_s``
  gets a ``bye`` and its session is reaped (aborting any open bracket).
* **disconnect** — EOF or reset mid-transaction aborts the transaction
  and releases its locks (``service_aborted_on_disconnect`` counts these).
* **torn frame** — a CRC-failed frame kills the connection (framing sync
  is unrecoverable); the engine never sees the request.
* **graceful drain** — :meth:`SQLService.shutdown` stops accepting,
  rejects new work with a typed refusal, waits for in-flight requests up
  to ``drain_timeout_s``, aborts leftover brackets, forces group commit,
  and closes the pool.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading

from repro.errors import SessionStateError, TornFrameError
from repro.faults.failpoints import fire
from repro.service import protocol
from repro.service.admission import AdmissionController
from repro.service.core import ServiceCore
from repro.workers.pool import WorkerPool


class SQLService:
    """An asyncio SQL server bound to one engine."""

    def __init__(
        self,
        db,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        pool_workers: int = 4,
        queue_depth: int = 128,
        max_inflight: int = 64,
        read_shed_fraction: float = 0.75,
        request_timeout_s: float = 30.0,
        idle_timeout_s: float = 300.0,
        drain_timeout_s: float = 10.0,
        seed: int = 0,
    ) -> None:
        self.db = db
        self.host = host
        self.port = port
        # A sharded backend (ShardRouter) cannot sit behind a WorkerPool:
        # the pool keys its bookkeeping by TID, and branch TIDs collide
        # across shards (each shard numbers its own).  Its facade omits
        # the durable-commit hook seam on purpose; statements then run
        # inline on executor threads.
        supports_pool = hasattr(db.txn_mgr, "durable_commit_hook")
        self.pool = (
            WorkerPool(db, pool_workers, seed=seed, queue_depth=queue_depth)
            if pool_workers > 0 and supports_pool else None
        )
        if self.pool is None:
            # No pool means bodies run directly on executor threads; the
            # engine still needs its thread-safe flavour (blocking locks,
            # latches) — the pool would otherwise have enabled it lazily.
            db.enable_concurrency()
        self.core = ServiceCore(
            db,
            self.pool,
            admission=AdmissionController(
                max_inflight=max_inflight,
                read_shed_fraction=read_shed_fraction,
            ),
            retry_seed=seed,
            retry_step_ms=0.2,
        )
        self.request_timeout_s = request_timeout_s
        self.idle_timeout_s = idle_timeout_s
        self.drain_timeout_s = drain_timeout_s
        # Execution threads: sized past the admission budget so rejections
        # are computed promptly even at full saturation (a rejection only
        # borrows a thread for the admission check itself).
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=max_inflight * 2 + 8,
            thread_name_prefix="svc-exec",
        )
        self._server: asyncio.AbstractServer | None = None
        self._conn_tasks: set[asyncio.Task] = set()

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def shutdown(self) -> None:
        """Graceful drain: refuse new work, finish in-flight, force, close."""
        self.core.begin_drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = {t for t in self._conn_tasks if not t.done()}
        if pending:
            done, still_pending = await asyncio.wait(
                pending, timeout=self.drain_timeout_s
            )
            for task in still_pending:
                task.cancel()
            if still_pending:
                await asyncio.gather(*still_pending, return_exceptions=True)
        # Abort whatever brackets the deadline stranded, force group
        # commit so every acked write is durable, and stop the workers.
        await asyncio.get_running_loop().run_in_executor(
            None, self.core.finish_drain
        )
        if self.pool is not None:
            await asyncio.get_running_loop().run_in_executor(
                None, self.pool.close
            )
        self._executor.shutdown(wait=False)

    # -- connections -----------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            session = self.core.open_session()
        except SessionStateError as exc:
            writer.write(protocol.encode_message(
                protocol.bye_response(str(exc))
            ))
            await self._close_writer(writer)
            return
        decoder = protocol.FrameDecoder()
        reason = "disconnect"
        try:
            while True:
                try:
                    data = await asyncio.wait_for(
                        reader.read(65536), timeout=self.idle_timeout_s
                    )
                except asyncio.TimeoutError:
                    reason = "idle"
                    writer.write(protocol.encode_message(
                        protocol.bye_response("idle timeout")
                    ))
                    break
                if not data:
                    break   # EOF: client hung up
                fire("service.read_frame")
                try:
                    payloads = decoder.feed(data)
                except TornFrameError:
                    self.core.stats.torn_frames += 1
                    reason = "torn frame"
                    break
                stop = False
                for payload in payloads:
                    response = await self._process(session, payload)
                    fire("service.write_frame")
                    writer.write(protocol.encode_message(response))
                    await writer.drain()
                    status = response.get("status")
                    if status in (protocol.STATUS_BYE,
                                  protocol.STATUS_TIMEOUT):
                        reason = "request timeout" \
                            if status == protocol.STATUS_TIMEOUT else "close"
                        stop = True
                        break
                if stop:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            if not session.closed:
                # Mid-execution disconnects defer the close to the worker
                # (the session lock is held); idle/quiet ones close now.
                self.core.on_disconnect(session, reason)
            await self._close_writer(writer)

    async def _process(self, session, payload: bytes) -> dict:
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(
            self._executor, self.core.handle_payload, session, payload
        )
        try:
            return await asyncio.wait_for(future, self.request_timeout_s)
        except asyncio.TimeoutError:
            self.core.on_request_timeout(session, "request timeout")
            try:
                request_id = protocol.decode_message(payload).get("id")
            except Exception:
                request_id = None
            return protocol.timeout_response(
                request_id, deadline_ms=self.request_timeout_s * 1000.0
            )

    @staticmethod
    async def _close_writer(writer) -> None:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


class ThreadedService:
    """Run an :class:`SQLService` on a background thread (tests, benches).

    ``with ThreadedService(db) as svc: connect to svc.port`` — the event
    loop lives on the thread; :meth:`shutdown` performs the graceful drain
    and joins it.
    """

    def __init__(self, db, **kwargs) -> None:
        self.service = SQLService(db, **kwargs)
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="sql-service", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=10.0)
        if self._startup_error is not None:
            raise self._startup_error

    @property
    def port(self) -> int:
        return self.service.port

    @property
    def core(self) -> ServiceCore:
        return self.service.core

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            await self.service.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        await self._stop.wait()
        await self.service.shutdown()

    def begin_drain(self) -> None:
        """Flip the service into drain mode without waiting for it."""
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self.service.core.begin_drain)

    def shutdown(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30.0)

    def __enter__(self) -> "ThreadedService":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
