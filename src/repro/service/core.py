"""Sans-IO service core: sessions, admission, dispatch, idempotency.

:class:`ServiceCore` is the whole service minus the sockets: it owns the
session table, the admission controller, the request dispatcher, the
idempotency cache, and the service counters the engine exposes through
``stats()``.  The asyncio server (:mod:`repro.service.server`) and the
deterministic loopback transport (:mod:`repro.service.transport`) are both
thin byte-shufflers over ``handle_message`` — which is what lets the
crashtest drive every ``service.*`` failpoint crossing single-threaded,
with :class:`~repro.faults.failpoints.SimulatedCrash` propagating
synchronously out of the call stack.

Execution routing
-----------------
With a :class:`~repro.workers.pool.WorkerPool` attached, every statement
body is funneled through the pool's bounded queue (``submit_call``), so
the pool's ``queue_depth`` is the service's second backpressure tier after
admission control.  Without a pool (the crashtest's single-threaded mode)
bodies run inline; the order of operations is identical.

Durability before ack
---------------------
A response that acknowledges a committed write is only sent after the
commit record is forced: under group commit the core calls
``db.flush_commits()`` before acking any write that left the session
outside a transaction bracket.  The first responder in a batch forces the
whole batch — the same last-active-worker amortization the pool uses.

Idempotency
-----------
The client stamps every request with a unique ``id``; the core caches the
response it computed for each id (bounded LRU).  A duplicate delivery —
a client retry after a torn frame or a lost response — returns the cached
response instead of re-executing.  While the original is still executing,
a duplicate gets a retryable ``RequestInFlight`` error rather than a
second execution.  The cache lives for the service's lifetime: it makes
*transport* retries exactly-once; cross-crash retries are the recovery
protocol's job (the crashtest verifies acked commits survive).
"""

from __future__ import annotations

import csv as _csv
import io
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass

from repro.core.rowcodec import ColumnType
from repro.errors import (
    CrossShardAbort,
    ImmortalDBError,
    InDoubtError,
    PageQuarantinedError,
    ProtocolError,
    ServiceOverloadedError,
    SessionStateError,
    ShardUnavailableError,
)
from repro.faults.failpoints import fire
from repro.service import protocol
from repro.service.admission import AdmissionController
from repro.service.session import ServiceSession
from repro.storage.disk import RetryPolicy
from repro.workers.pool import RETRYABLE_ERRORS, RetriesExhaustedError

#: Cluster conditions the *client* should retry but the server must not
#: spin on: an in-doubt conflict clears only when 2PC resolution runs, and
#: a down shard comes back only when an operator recovers it.  A
#: cross-shard abort is an ordinary conflict casualty, so it joins the
#: server-side retry loop instead.
CLUSTER_WAIT_ERRORS = (InDoubtError, ShardUnavailableError)


@dataclass
class ServiceStats:
    """Service counters; the engine's ``stats()`` exposes the first five."""

    accepts: int = 0                 # requests admitted for execution
    rejects: int = 0                 # admission-control rejections
    timeouts: int = 0                # per-request deadline expiries
    aborted_on_disconnect: int = 0   # open txns rolled back by session close
    degraded_replies: int = 0        # responses with quarantine-degraded reads
    requests: int = 0
    duplicate_hits: int = 0          # idempotency-cache hits
    retries: int = 0                 # server-side conflict retries
    sessions_opened: int = 0
    sessions_closed: int = 0
    idle_closes: int = 0
    torn_frames: int = 0
    ingest_rows: int = 0
    ingest_batches: int = 0


_PENDING = object()   # idempotency-cache sentinel: id is executing right now

#: Statements that manage the session's transaction bracket.  They bypass
#: admission (rejecting a COMMIT would strand the bracket's locks) and are
#: never retried server-side (the bracket's state is the client's).
_TXN_CONTROL = ("BEGIN", "COMMIT", "ROLLBACK")


def classify_statement(sql: str) -> str:
    """\"read\" or \"write\", from the first keyword (shed policy input)."""
    head = sql.lstrip()[:16].upper()
    return "read" if head.startswith("SELECT") else "write"


def _is_txn_control(sql: str) -> bool:
    head = sql.lstrip()[:16].upper()
    return head.startswith(_TXN_CONTROL)


class ServiceCore:
    """Everything between decoded request dicts and response dicts."""

    def __init__(
        self,
        db,
        pool=None,
        *,
        admission: AdmissionController | None = None,
        dedup_capacity: int = 4096,
        max_retries: int = 8,
        retry_seed: int = 0,
        retry_step_ms: float = 0.0,
        now=time.monotonic,
    ) -> None:
        self.db = db
        self.pool = pool
        self.admission = admission or AdmissionController()
        self.stats = ServiceStats()
        self._now = now
        self.max_retries = max_retries
        self.retry_policy = RetryPolicy(
            max_attempts=max_retries + 1, seed=retry_seed
        )
        self.retry_step_ms = retry_step_ms
        self._mu = threading.Lock()
        self._next_session_id = 1
        self.sessions: dict[int, ServiceSession] = {}
        self._dedup: OrderedDict = OrderedDict()
        self._dedup_capacity = dedup_capacity
        self.draining = False
        # The engine's stats() picks these counters up from here.
        db.service_stats = self.stats

    # -- session lifecycle ----------------------------------------------------

    def open_session(self) -> ServiceSession:
        fire("service.accept")
        if self.draining:
            raise SessionStateError("service is draining; connection refused")
        with self._mu:
            session_id = self._next_session_id
            self._next_session_id += 1
            session = ServiceSession(session_id, self.db, now=self._now)
            self.sessions[session_id] = session
            self.stats.sessions_opened += 1
        return session

    def close_session(
        self, session: ServiceSession, reason: str = "disconnect"
    ) -> bool:
        """Retire a session; abort + release locks if a txn was open."""
        fire("service.disconnect")
        with self._mu:
            self.sessions.pop(session.id, None)
        with session.lock:
            aborted = session.close(reason)
        if aborted:
            self.stats.aborted_on_disconnect += 1
        self.stats.sessions_closed += 1
        if reason == "idle":
            self.stats.idle_closes += 1
        return aborted

    def on_disconnect(self, session: ServiceSession, reason: str) -> None:
        """Connection dropped.  If a request is mid-execution the session
        lock is held; mark the session defunct so the finishing worker
        closes it (abort + lock release) the moment the body returns."""
        if session.lock.acquire(blocking=False):
            try:
                in_flight = False
            finally:
                session.lock.release()
        else:
            in_flight = True
        if in_flight:
            session.mark_defunct(reason)
        else:
            self.close_session(session, reason)

    def on_request_timeout(self, session: ServiceSession, reason: str) -> None:
        """The transport gave up waiting on a request's execution."""
        self.stats.timeouts += 1
        session.mark_defunct(reason)

    def reap_idle(self, idle_timeout_s: float) -> list[ServiceSession]:
        """Close every session idle past the deadline; returns the victims."""
        with self._mu:
            victims = [
                s for s in self.sessions.values()
                if not s.closed and s.idle_for() >= idle_timeout_s
                and not s.lock.locked()
            ]
        for session in victims:
            self.close_session(session, "idle")
        return victims

    # -- drain ----------------------------------------------------------------

    def begin_drain(self) -> None:
        """Stop admitting; new requests and connections get typed refusals."""
        self.draining = True
        self.admission.begin_drain()

    def finish_drain(self) -> None:
        """Abort leftover brackets, force group commit, retire sessions."""
        fire("service.drain")
        with self._mu:
            leftovers = list(self.sessions.values())
        for session in leftovers:
            self.close_session(session, "drain")
        if self.db.txn_mgr.unacked_commits:
            self.db.flush_commits()

    # -- idempotency cache ----------------------------------------------------

    def _dedup_get(self, request_id):
        with self._mu:
            entry = self._dedup.get(request_id)
            if entry is not None and entry is not _PENDING:
                self._dedup.move_to_end(request_id)
            return entry

    def _dedup_put(self, request_id, response) -> None:
        with self._mu:
            self._dedup[request_id] = response
            self._dedup.move_to_end(request_id)
            while len(self._dedup) > self._dedup_capacity:
                self._dedup.popitem(last=False)

    def _dedup_drop(self, request_id) -> None:
        with self._mu:
            self._dedup.pop(request_id, None)

    # -- request handling ------------------------------------------------------

    def handle_payload(self, session: ServiceSession, payload: bytes) -> dict:
        """Decode one frame payload and dispatch it."""
        try:
            message = protocol.decode_message(payload)
        except ProtocolError as exc:
            return protocol.error_response(None, exc, retryable=False)
        return self.handle_message(session, message)

    def handle_message(self, session: ServiceSession, message: dict) -> dict:
        fire("service.request")
        self.stats.requests += 1
        request_id = message.get("id")
        if session.closed:
            return protocol.error_response(
                request_id,
                SessionStateError(
                    f"session closed ({session.close_reason})"
                ),
                retryable=True,
            )
        session.touch()
        session.requests += 1
        # Transaction-scoped requests (BEGIN/COMMIT/ROLLBACK, or any
        # statement inside an open bracket) are NOT idempotency-cached:
        # their effects die with the session, so a cached ack would lie to
        # a retry arriving on a fresh connection after the bracket was
        # aborted.  Clients must treat a connection loss mid-bracket as
        # losing the bracket, not retry blindly — and ours do.
        sql = message.get("sql")
        cacheable = request_id is not None and not (
            message.get("op") == "sql" and isinstance(sql, str)
            and (session.in_transaction or _is_txn_control(sql))
        )
        if cacheable:
            cached = self._dedup_get(request_id)
            if cached is _PENDING:
                self.stats.duplicate_hits += 1
                return protocol.error_response(
                    request_id,
                    SessionStateError("request is already in flight"),
                    retryable=True,
                )
            if cached is not None:
                self.stats.duplicate_hits += 1
                return cached
            self._dedup_put(request_id, _PENDING)
        try:
            response = self._dispatch(session, request_id, message)
        except ServiceOverloadedError as exc:
            self.stats.rejects += 1
            # Not cached: a later retry of this id must be re-admitted.
            if cacheable:
                self._dedup_drop(request_id)
            return protocol.overloaded_response(
                request_id,
                retry_after_ms=exc.retry_after_ms,
                shed_kind=exc.shed_kind,
            )
        except Exception as exc:   # SimulatedCrash (BaseException) passes
            if cacheable:
                self._dedup_drop(request_id)
            return protocol.error_response(request_id, exc, retryable=False)
        if cacheable:
            # Only successful outcomes are worth replaying to a retry;
            # errors are side-effect-free (a failed statement aborted its
            # txn) and deserve a live re-execution, which may now succeed.
            if response.get("status") in (
                protocol.STATUS_OK, protocol.STATUS_DEGRADED
            ):
                self._dedup_put(request_id, response)
            else:
                self._dedup_drop(request_id)
        if session.defunct:
            # The connection died while this request executed; its outcome
            # is cached for a retry, and the session retires now (aborting
            # any bracket the dead client left open).
            self.close_session(session, session.close_reason or "disconnect")
        return response

    # -- dispatch --------------------------------------------------------------

    def _dispatch(self, session, request_id, message: dict) -> dict:
        op = message.get("op")
        if op == "ping":
            return protocol.ok_response(request_id, message="pong")
        if op == "stats":
            return protocol.ok_response(
                request_id, rows=[self.db.stats()], rowcount=1
            )
        if op == "close":
            return protocol.bye_response("client close") | {"id": request_id}
        if op == "sql":
            return self._handle_sql(session, request_id, message)
        if op == "ingest":
            return self._handle_ingest(session, request_id, message)
        raise ProtocolError(f"unknown op {op!r}")

    def _call(self, fn):
        """Run a statement body: through the pool's bounded queue or inline."""
        if self.pool is None:
            return fn()
        return self.pool.submit_call(fn).result()

    def _handle_sql(self, session, request_id, message: dict) -> dict:
        sql = message.get("sql")
        if not isinstance(sql, str):
            raise ProtocolError("sql op needs a 'sql' string")
        kind = classify_statement(sql)
        continuation = session.in_transaction or _is_txn_control(sql)
        admitted = False
        if not continuation:
            # Continuations bypass admission: shedding a COMMIT (or any
            # statement of an already-open bracket) would strand its locks.
            self.admission.try_admit(kind)
            admitted = True
            self.stats.accepts += 1
        try:
            with session.lock:
                return self._execute_sql(
                    session, request_id, sql, kind,
                    retryable=not continuation,
                )
        finally:
            if admitted:
                self.admission.release()

    def _execute_sql(self, session, request_id, sql, kind, *, retryable):
        fire("service.execute")
        degraded_reason = None
        result = None
        error: Exception | None = None
        for attempt in range(1, self.max_retries + 2):
            try:
                result = self._call(lambda: session.sql.execute(sql))
                error = None
                break
            except CLUSTER_WAIT_ERRORS as exc:
                # Retryable for the client, pointless for the server: the
                # condition clears on 2PC resolution / shard recovery, not
                # on a fresh attempt a few milliseconds later.
                error = exc
                break
            except RETRYABLE_ERRORS + (
                RetriesExhaustedError, CrossShardAbort,
            ) as exc:
                error = exc
                if not retryable or attempt > self.max_retries:
                    break
                self.stats.retries += 1
                steps = self.retry_policy.backoff_steps(attempt)
                if self.retry_step_ms:
                    time.sleep(steps * self.retry_step_ms / 1000.0)
            except PageQuarantinedError as exc:
                degraded_reason = str(exc)
                error = None
                break
            except ImmortalDBError as exc:
                error = exc
                break
        if error is not None:
            is_retryable = isinstance(
                error,
                RETRYABLE_ERRORS + (RetriesExhaustedError, CrossShardAbort)
                + CLUSTER_WAIT_ERRORS,
            )
            return protocol.error_response(
                request_id, error, retryable=is_retryable
            )
        # Ack-implies-durable: before acknowledging a write that left the
        # session outside a bracket, force any batched commits.
        if kind == "write" and not session.in_transaction \
                and self.db.txn_mgr.unacked_commits:
            self.db.flush_commits()
        if degraded_reason is not None:
            self.stats.degraded_replies += 1
            return protocol.degraded_response(
                request_id, rows=[], rowcount=0, degraded=[degraded_reason]
            )
        if result.degraded:
            self.stats.degraded_replies += 1
            return protocol.degraded_response(
                request_id,
                rows=result.rows,
                rowcount=result.rowcount,
                degraded=[
                    f"page {d.page_id}: {d.reason}" for d in result.degraded
                ],
            )
        return protocol.ok_response(
            request_id,
            rows=result.rows,
            rowcount=result.rowcount,
            message=result.message,
        )

    # -- bulk ingest ------------------------------------------------------------

    def _handle_ingest(self, session, request_id, message: dict) -> dict:
        table_name = message.get("table")
        text = message.get("csv")
        if not isinstance(table_name, str) or not isinstance(text, str):
            raise ProtocolError("ingest op needs 'table' and 'csv' strings")
        batch = int(message.get("batch", 64))
        if batch < 1:
            raise ProtocolError("ingest batch must be >= 1")
        self.admission.try_admit("write")
        self.stats.accepts += 1
        try:
            with session.lock:
                if session.in_transaction:
                    raise SessionStateError(
                        "ingest is not allowed inside a transaction bracket"
                    )
                return self._ingest(request_id, table_name, text, batch)
        except (SessionStateError, ImmortalDBError) as exc:
            if isinstance(exc, ServiceOverloadedError):
                raise
            return protocol.error_response(request_id, exc, retryable=False)
        finally:
            self.admission.release()

    def _ingest(self, request_id, table_name, text, batch) -> dict:
        table = self.db.table(table_name)
        coercers = {
            c.name: _coercer(c.column_type) for c in table.schema.columns
        }
        reader = _csv.reader(io.StringIO(text))
        try:
            header = next(reader)
        except StopIteration:
            raise ProtocolError("ingest csv is empty") from None
        unknown = set(header) - set(coercers)
        if unknown:
            raise ProtocolError(f"ingest csv has unknown columns {unknown}")
        rows = [
            {
                name: coercers[name](value)
                for name, value in zip(header, raw)
            }
            for raw in reader
        ]
        batches = [rows[i:i + batch] for i in range(0, len(rows), batch)]

        futures = []
        for chunk in batches:
            fire("service.ingest.batch")

            def body(txn, chunk=chunk):
                for row in chunk:
                    table.insert(txn, row)
                return len(chunk)

            if self.pool is not None:
                # Fresh-txn bodies: the pool retries conflicts and batches
                # the commits through group commit.
                futures.append(self.pool.submit(body))
            else:
                with self.db.transaction() as txn:
                    body(txn)
            self.stats.ingest_batches += 1
        for future in futures:
            future.result()
        if self.db.txn_mgr.unacked_commits:
            self.db.flush_commits()
        self.stats.ingest_rows += len(rows)
        return protocol.ok_response(
            request_id,
            rowcount=len(rows),
            message=f"INGEST {len(rows)} rows in {len(batches)} batches",
        )


def _coercer(column_type: ColumnType):
    if column_type in (
        ColumnType.SMALLINT, ColumnType.INT, ColumnType.BIGINT
    ):
        return lambda v: int(v) if v != "" else None
    if column_type is ColumnType.FLOAT:
        return lambda v: float(v) if v != "" else None
    if column_type is ColumnType.BOOL:
        return lambda v: v.strip().lower() in ("1", "true", "t", "yes")
    return lambda v: v
