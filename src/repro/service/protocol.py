"""Wire protocol: length-prefixed, CRC-framed JSON messages.

Frames reuse the file WAL's shape (``repro.wal.filelog``): a big-endian
4-byte payload length, a 4-byte CRC32 of the payload, then the payload.
The CRC turns torn or garbled frames into a typed
:class:`~repro.errors.TornFrameError` instead of silent misparses — the
same role it plays for the log's crash tail.

Payloads are compact JSON objects.  Requests carry:

``{"id": <int>, "op": "sql"|"ingest"|"stats"|"ping"|"close", ...}``

``id`` is a client-chosen request id used for idempotency: the server
caches the response it sent for each id, so a client that retries after a
lost response gets the original answer back instead of a second execution.

Responses carry ``{"id": ..., "status": ..., ...}`` with status one of
``ok``, ``degraded`` (rows present but some reads were quarantine-degraded),
``error`` (typed engine/SQL error), ``overloaded`` (admission rejection,
with ``retry_after_ms``), ``timeout``, or ``bye`` (drain/close notice).

:class:`FrameDecoder` is incremental: feed it arbitrary byte chunks (a
slow-loris client delivering one byte at a time is fine) and it yields
complete payloads as they close.
"""

from __future__ import annotations

import json
import struct
import zlib

from repro.errors import ProtocolError, TornFrameError

_HEADER = struct.Struct(">II")     # payload length, crc32(payload)
HEADER_SIZE = _HEADER.size
MAX_FRAME = 16 * 1024 * 1024       # refuse absurd lengths before allocating

STATUS_OK = "ok"
STATUS_DEGRADED = "degraded"
STATUS_ERROR = "error"
STATUS_OVERLOADED = "overloaded"
STATUS_TIMEOUT = "timeout"
STATUS_BYE = "bye"


def encode_frame(payload: bytes) -> bytes:
    """Wrap a payload in the length+CRC header."""
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def encode_message(message: dict) -> bytes:
    """JSON-encode a message dict and frame it."""
    payload = json.dumps(
        message, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    return encode_frame(payload)


def decode_message(payload: bytes) -> dict:
    try:
        message = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"frame payload is not valid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("frame payload must be a JSON object")
    return message


class FrameDecoder:
    """Incremental frame reassembly over an arbitrary chunk stream."""

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> list[bytes]:
        """Append bytes; return every payload that completed.

        Raises :class:`TornFrameError` on a CRC mismatch or an impossible
        length — after that, the stream cannot be trusted (there is no way
        to find the next frame boundary) and the connection must close.
        """
        self._buf.extend(data)
        payloads: list[bytes] = []
        while True:
            if len(self._buf) < HEADER_SIZE:
                return payloads
            length, crc = _HEADER.unpack_from(self._buf)
            if length > MAX_FRAME:
                raise TornFrameError(
                    f"frame claims {length} bytes (max {MAX_FRAME}); "
                    "framing sync lost"
                )
            if len(self._buf) < HEADER_SIZE + length:
                return payloads
            payload = bytes(self._buf[HEADER_SIZE:HEADER_SIZE + length])
            if zlib.crc32(payload) != crc:
                raise TornFrameError(
                    "frame payload failed its CRC32 check; framing sync lost"
                )
            del self._buf[:HEADER_SIZE + length]
            payloads.append(payload)

    @property
    def pending_bytes(self) -> int:
        return len(self._buf)


# -- response constructors (the server's half of the protocol) ---------------

def ok_response(request_id, *, rows=None, rowcount=0, message="") -> dict:
    response = {"id": request_id, "status": STATUS_OK,
                "rowcount": rowcount, "message": message}
    if rows is not None:
        response["rows"] = rows
    return response


def degraded_response(request_id, *, rows, rowcount, degraded) -> dict:
    """Rows the engine could serve, plus which pages it could not."""
    return {
        "id": request_id,
        "status": STATUS_DEGRADED,
        "rows": rows,
        "rowcount": rowcount,
        "degraded": degraded,
    }


def error_response(request_id, exc: BaseException, *, retryable: bool) -> dict:
    return {
        "id": request_id,
        "status": STATUS_ERROR,
        "error": type(exc).__name__,
        "message": str(exc),
        "retryable": retryable,
    }


def overloaded_response(request_id, *, retry_after_ms, shed_kind) -> dict:
    return {
        "id": request_id,
        "status": STATUS_OVERLOADED,
        "retry_after_ms": retry_after_ms,
        "shed_kind": shed_kind,
        "retryable": True,
    }


def timeout_response(request_id, *, deadline_ms) -> dict:
    return {"id": request_id, "status": STATUS_TIMEOUT,
            "deadline_ms": deadline_ms}


def bye_response(reason: str) -> dict:
    """Unsolicited close notice (drain, idle timeout)."""
    return {"id": None, "status": STATUS_BYE, "reason": reason}
