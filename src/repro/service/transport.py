"""Deterministic in-process transport: the wire without the sockets.

:class:`LoopbackConnection` round-trips every request through the real
byte protocol — encode, (optionally faulty) delivery, incremental decode,
dispatch, response encode, client decode — with no threads and no event
loop.  That makes it the crashtest's client: a
:class:`~repro.faults.failpoints.SimulatedCrash` fired at any
``service.*`` crossing propagates synchronously out of ``request()``, and
a :class:`~repro.faults.models.FaultyWire` armed with one network fault
perturbs exactly one exchange, deterministically.

The client-side retry discipline is the production one: on a lost
connection the request is resent *with the same request id* on a fresh
session, after the seeded backoff schedule of
:class:`~repro.storage.disk.RetryPolicy` — so the server's idempotency
cache, not client caution, is what makes retries exactly-once.
"""

from __future__ import annotations

import time

from repro.errors import ConnectionLostError, TornFrameError
from repro.faults.failpoints import fire
from repro.service import protocol
from repro.service.core import ServiceCore
from repro.storage.disk import RetryPolicy


class LoopbackConnection:
    """A client and its server-side session, joined by an in-process wire."""

    def __init__(
        self,
        core: ServiceCore,
        *,
        wire=None,
        retry_policy: RetryPolicy | None = None,
        retry_step_ms: float = 0.0,
        client_key: str = "loopback",
    ) -> None:
        self.core = core
        self.wire = wire
        self.retry_policy = retry_policy or RetryPolicy(max_attempts=5)
        self.retry_step_ms = retry_step_ms
        # Deterministic ids: the crashtest replays the same id sequence at
        # every crash point; distinct connections need distinct keys (the
        # idempotency cache is keyed by request id alone).
        self.client_key = client_key
        self._next_id = 1
        self._session = None
        self.reconnects = 0
        # True while this client believes a BEGIN...COMMIT bracket is open.
        # A lost connection aborts the bracket server-side, so statements
        # in flight then must NOT be retried (see request()).
        self._bracket_open = False

    # -- connection management ------------------------------------------------

    @property
    def session(self):
        if self._session is None or self._session.closed:
            self._session = self.core.open_session()
        return self._session

    def drop_connection(self, reason: str = "disconnect") -> None:
        """Simulate the client vanishing (mid-bracket disconnects)."""
        if self._session is not None and not self._session.closed:
            self.core.on_disconnect(self._session, reason)
        self._session = None
        self._bracket_open = False

    def close(self) -> None:
        if self._session is not None and not self._session.closed:
            self.core.close_session(self._session, "client close")
        self._session = None

    # -- requests --------------------------------------------------------------

    def request(self, message: dict) -> dict:
        """Send one request; retry through connection loss; return the reply.

        Exception: while a transaction bracket is open, a lost connection
        means the server aborted the bracket — retrying the statement on a
        fresh session would run it *outside* the bracket (autocommit), so
        the loss is surfaced to the caller instead, who must restart the
        bracket from BEGIN.
        """
        message = dict(message)
        message.setdefault("id", self._fresh_id())
        last_exc: Exception | None = None
        for attempt in range(1, self.retry_policy.max_attempts + 1):
            if attempt > 1:
                self.reconnects += 1
                steps = self.retry_policy.backoff_steps(attempt - 1)
                if self.retry_step_ms:
                    time.sleep(steps * self.retry_step_ms / 1000.0)
            # Captured BEFORE the attempt: the drop paths inside _exchange
            # reset the flag, and a loss that happened while the bracket
            # was open must not be retried regardless.
            in_bracket = self._bracket_open
            try:
                response = self._exchange(message)
            except ConnectionLostError as exc:
                if in_bracket:
                    self._bracket_open = False
                    raise
                last_exc = exc
                continue
            self._track_bracket(message, response)
            return response
        raise ConnectionLostError(
            f"request {message['id']} still failing after "
            f"{self.retry_policy.max_attempts} attempts"
        ) from last_exc

    def _track_bracket(self, message: dict, response: dict) -> None:
        if message.get("op") != "sql" or response.get("status") != "ok":
            return
        head = str(message.get("sql", "")).lstrip().upper()
        if head.startswith("BEGIN"):
            self._bracket_open = True
        elif head.startswith(("COMMIT", "ROLLBACK")):
            self._bracket_open = False

    def execute(self, sql: str) -> dict:
        return self.request({"op": "sql", "sql": sql})

    def ingest(self, table: str, csv_text: str, *, batch: int = 64) -> dict:
        return self.request(
            {"op": "ingest", "table": table, "csv": csv_text, "batch": batch}
        )

    def _fresh_id(self) -> str:
        request_id = f"{self.client_key}:{self._next_id}"
        self._next_id += 1
        return request_id

    # -- the wire ---------------------------------------------------------------

    def _exchange(self, message: dict) -> dict:
        session = self.session
        frame = protocol.encode_message(message)
        fault = self.wire.next_fault() if self.wire is not None else None

        if fault == "torn_frame":
            frame = self.wire.corrupt(frame)
        deliveries = [frame, frame] if fault == "dup_deliver" else [frame]

        decoder = protocol.FrameDecoder()
        payloads: list[bytes] = []
        try:
            for delivered in deliveries:
                if fault == "slow_loris":
                    for i in range(len(delivered)):
                        payloads.extend(decoder.feed(delivered[i:i + 1]))
                else:
                    payloads.extend(decoder.feed(delivered))
        except TornFrameError:
            # Framing sync is lost: both sides hang up.  The server never
            # saw the request, so the retry is trivially safe.
            self.core.stats.torn_frames += 1
            self.drop_connection("torn frame")
            raise ConnectionLostError("frame torn in flight") from None
        if not payloads:
            # The tear landed in the length header: the server just waits
            # for bytes that never come.  Its idle timeout would reap the
            # session; the client gives up and redials.
            self.drop_connection("stalled frame")
            raise ConnectionLostError("request frame never completed")

        responses = []
        for payload in payloads:
            fire("service.read_frame")
            response = self.core.handle_payload(session, payload)
            fire("service.write_frame")
            responses.append(self._roundtrip(response))

        if fault == "drop_response":
            # The response(s) were computed and sent, but the connection
            # died first — the ambiguous-ack case.  The retry (same id)
            # must hit the idempotency cache, not execute again.
            self.drop_connection("response lost")
            raise ConnectionLostError("connection died before the response")
        return responses[0]

    @staticmethod
    def _roundtrip(response: dict) -> dict:
        """Encode + decode the response, exercising the real codec."""
        decoder = protocol.FrameDecoder()
        payloads = decoder.feed(protocol.encode_message(response))
        assert len(payloads) == 1
        return protocol.decode_message(payloads[0])
