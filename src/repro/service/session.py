"""Per-connection session state.

A :class:`ServiceSession` wraps one SQL :class:`repro.sql.executor.Session`
(at most one open transaction) with the connection-lifecycle state the
service needs: an activity clock for idle reaping, a per-session mutex so
a pipelining client cannot interleave two statements inside one
transaction bracket, and a defunct flag for sessions whose connection died
while a request was still executing.

State machine (documented in DESIGN.md):

    open ──execute──▶ open ──disconnect/idle/drain──▶ closed
      │ (defunct: connection gone, request still in flight;
      ▼  the finishing worker observes the flag and aborts)
    defunct ──request completes──▶ closed

Closing a session mid-transaction aborts the transaction, which releases
every lock it holds — a dropped connection can never strand a lock.
"""

from __future__ import annotations

import threading
import time

from repro.sql.executor import Session


class ServiceSession:
    """One client connection's server-side state."""

    def __init__(self, session_id: int, db, *, now=time.monotonic) -> None:
        self.id = session_id
        self.sql = Session(db)
        self.db = db
        self._now = now
        self.lock = threading.Lock()    # serializes statements per session
        self.last_active = now()
        self.closed = False
        self.defunct = False
        self.close_reason: str | None = None
        self.requests = 0

    @property
    def in_transaction(self) -> bool:
        return self.sql.in_transaction

    def touch(self) -> None:
        self.last_active = self._now()

    def idle_for(self) -> float:
        return self._now() - self.last_active

    def mark_defunct(self, reason: str) -> None:
        """Connection is gone but a request may still be executing."""
        self.defunct = True
        if self.close_reason is None:
            self.close_reason = reason

    def close(self, reason: str = "disconnect") -> bool:
        """Abort any open transaction and retire the session (idempotent).

        Returns True when an open transaction was aborted — the caller
        counts those as ``service_aborted_on_disconnect``.
        """
        if self.closed:
            return False
        self.closed = True
        self.close_reason = self.close_reason or reason
        aborted = self.sql.in_transaction
        self.sql.close()   # aborts the open txn → releases its locks
        return aborted
