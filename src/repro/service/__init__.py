"""Network service layer: an asyncio SQL server over the engine.

The package splits sans-IO from transport, the same separation the WAL
uses (framing/codec vs. file):

* :mod:`repro.service.protocol` — CRC-framed wire format + JSON messages;
* :mod:`repro.service.admission` — bounded admission with read-first shed;
* :mod:`repro.service.session` — per-connection session state;
* :mod:`repro.service.core` — sans-IO request dispatcher (the part the
  crashtest drives deterministically, byte-in/byte-out, no sockets);
* :mod:`repro.service.transport` — in-process loopback transport with the
  network fault model (torn frames, dropped responses, duplicate delivery,
  slow-loris chunking);
* :mod:`repro.service.server` — the asyncio socket server;
* :mod:`repro.service.client` — a blocking socket client with seeded
  retry/backoff.

``python -m repro.service`` starts a server (see ``--help``).
"""

from repro.service.admission import AdmissionController
from repro.service.client import ServiceClient
from repro.service.core import ServiceCore, ServiceStats
from repro.service.pool import ClientPool, PoolStats
from repro.service.server import SQLService, ThreadedService
from repro.service.session import ServiceSession
from repro.service.transport import LoopbackConnection

__all__ = [
    "AdmissionController",
    "ClientPool",
    "LoopbackConnection",
    "PoolStats",
    "ServiceClient",
    "ServiceCore",
    "ServiceSession",
    "ServiceStats",
    "SQLService",
    "ThreadedService",
]
