"""Admission control: a bounded in-flight budget with read-first shedding.

The controller tracks how many requests are executing (or queued into the
worker pool) right now and rejects above a budget, raising
:class:`~repro.errors.ServiceOverloadedError` with a load-scaled
retry-after hint instead of letting latency grow without bound.

Shedding is *tiered*: reads are rejected once in-flight crosses
``read_shed_fraction`` of the budget, writes only at the full budget.
Reads are stateless and cheap to retry (no locks held, no log force
wasted); letting writes keep draining is what prevents the collapse mode
where a retry storm of reads starves the writes whose locks everyone
waits on.

Decisions are a pure function of the current counters — no clocks, no
randomness — so rejection is deterministic under the interleave scheduler.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.errors import ServiceOverloadedError


@dataclass
class AdmissionStats:
    admitted: int = 0
    rejected_reads: int = 0
    rejected_writes: int = 0
    rejected_draining: int = 0
    peak_inflight: int = 0

    @property
    def rejected(self) -> int:
        return (self.rejected_reads + self.rejected_writes
                + self.rejected_draining)


class AdmissionController:
    """Bounded concurrent admission; sheds reads before writes."""

    def __init__(
        self,
        *,
        max_inflight: int = 64,
        read_shed_fraction: float = 0.75,
        retry_after_ms: float = 50.0,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if not 0.0 < read_shed_fraction <= 1.0:
            raise ValueError("read_shed_fraction must be in (0, 1]")
        self.max_inflight = max_inflight
        # ceil-like: a budget of 4 at 0.75 sheds reads from the 3rd slot.
        self.read_high_water = max(1, int(max_inflight * read_shed_fraction))
        self.retry_after_ms = retry_after_ms
        self.stats = AdmissionStats()
        self.draining = False
        self._mu = threading.Lock()
        self._inflight = 0

    @property
    def inflight(self) -> int:
        return self._inflight

    def _hint_ms(self) -> float:
        # Scale the hint with saturation so herds spread out: an exactly-
        # full service says "come back in one budget-drain", a drain says
        # "come back after the restart".  Deterministic (no jitter here —
        # the client adds seeded jitter from its RetryPolicy).
        load = self._inflight / self.max_inflight
        return round(self.retry_after_ms * (1.0 + load), 3)

    def try_admit(self, kind: str) -> None:
        """Admit a request of ``kind`` ("read" or "write") or raise.

        Every successful admit must be paired with one :meth:`release`.
        """
        with self._mu:
            if self.draining:
                self.stats.rejected_draining += 1
                raise ServiceOverloadedError(
                    "service is draining; no new requests",
                    retry_after_ms=self._hint_ms(),
                    shed_kind=kind,
                )
            limit = (
                self.read_high_water if kind == "read" else self.max_inflight
            )
            if self._inflight >= limit:
                if kind == "read":
                    self.stats.rejected_reads += 1
                else:
                    self.stats.rejected_writes += 1
                raise ServiceOverloadedError(
                    f"service saturated ({self._inflight} in flight, "
                    f"{kind} limit {limit})",
                    retry_after_ms=self._hint_ms(),
                    shed_kind=kind,
                )
            self._inflight += 1
            self.stats.admitted += 1
            if self._inflight > self.stats.peak_inflight:
                self.stats.peak_inflight = self._inflight

    def release(self) -> None:
        with self._mu:
            assert self._inflight > 0, "release without admit"
            self._inflight -= 1

    def begin_drain(self) -> None:
        with self._mu:
            self.draining = True
