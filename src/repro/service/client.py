"""Blocking socket client with seeded reconnect/retry.

The client side of the robustness contract: every request carries a
client-unique ``id``; on a lost connection (reset, torn frame, dropped
response) the client redials and resends the *same id* after a seeded
backoff (:class:`~repro.storage.disk.RetryPolicy` steps), and the server's
idempotency cache turns the retry into exactly-once delivery.  Overload
(``status="overloaded"``) is returned to the caller, not retried blindly —
the caller owns the pacing decision the ``retry_after_ms`` hint feeds.
"""

from __future__ import annotations

import itertools
import os
import socket
import time

# Client keys must be unique per client *object* (the idempotency cache is
# keyed by request id alone), stable across that client's reconnects.
_client_counter = itertools.count(1)

from repro.errors import ConnectionLostError, SessionStateError, TornFrameError
from repro.service import protocol
from repro.storage.disk import RetryPolicy


class ServiceClient:
    """One connection to an :class:`~repro.service.server.SQLService`."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout_s: float = 30.0,
        retry_policy: RetryPolicy | None = None,
        retry_step_ms: float = 2.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.retry_policy = retry_policy or RetryPolicy(max_attempts=5)
        self.retry_step_ms = retry_step_ms
        self._sock: socket.socket | None = None
        self._decoder = protocol.FrameDecoder()
        self._client_key = f"c{os.getpid()}-{next(_client_counter)}"
        self._next_id = 1
        self.reconnects = 0
        # True while a BEGIN...COMMIT bracket is open on this connection.
        # Connection loss aborts the bracket server-side, so in-bracket
        # statements are never blindly retried (see request()).
        self._bracket_open = False

    # -- connection -----------------------------------------------------------

    def _connect(self) -> socket.socket:
        if self._sock is None:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout_s
            )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
            self._decoder = protocol.FrameDecoder()
        return self._sock

    def _disconnect(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.sendall(protocol.encode_message(
                    {"id": self._fresh_id(), "op": "close"}
                ))
            except OSError:
                pass
            self._disconnect()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- requests --------------------------------------------------------------

    def _fresh_id(self) -> str:
        request_id = f"{self._client_key}:{self._next_id}"
        self._next_id += 1
        return request_id

    def request(self, message: dict) -> dict:
        """Send one request, retrying through connection loss.

        Exception: a connection lost while a transaction bracket is open
        aborted that bracket server-side; the statement is NOT retried
        (it would execute outside the bracket) — the loss surfaces to the
        caller, who must restart from BEGIN.
        """
        message = dict(message)
        message.setdefault("id", self._fresh_id())
        last: Exception | None = None
        for attempt in range(1, self.retry_policy.max_attempts + 1):
            if attempt > 1:
                self.reconnects += 1
                steps = self.retry_policy.backoff_steps(attempt - 1)
                time.sleep(steps * self.retry_step_ms / 1000.0)
            # Captured BEFORE the attempt so nothing inside _exchange can
            # clear it: a loss while the bracket was open is never retried.
            in_bracket = self._bracket_open
            try:
                response = self._exchange(message)
            except ConnectionLostError as exc:
                self._disconnect()
                if in_bracket:
                    self._bracket_open = False
                    raise
                last = exc
                continue
            self._track_bracket(message, response)
            return response
        raise ConnectionLostError(
            f"request {message['id']} still failing after "
            f"{self.retry_policy.max_attempts} attempts"
        ) from last

    def _track_bracket(self, message: dict, response: dict) -> None:
        if message.get("op") != "sql" or response.get("status") != "ok":
            return
        head = str(message.get("sql", "")).lstrip().upper()
        if head.startswith("BEGIN"):
            self._bracket_open = True
        elif head.startswith(("COMMIT", "ROLLBACK")):
            self._bracket_open = False

    def execute(self, sql: str) -> dict:
        return self.request({"op": "sql", "sql": sql})

    def ingest(self, table: str, csv_text: str, *, batch: int = 64) -> dict:
        return self.request(
            {"op": "ingest", "table": table, "csv": csv_text, "batch": batch}
        )

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    # -- the wire ---------------------------------------------------------------

    def _exchange(self, message: dict) -> dict:
        sock = self._connect()
        try:
            sock.sendall(protocol.encode_message(message))
        except OSError as exc:
            raise ConnectionLostError(f"send failed: {exc}") from None
        while True:
            response = self._read_response(sock)
            if response.get("status") == protocol.STATUS_BYE \
                    and response.get("id") != message["id"]:
                # Unsolicited bye: drain refusal or idle reap.
                self._disconnect()
                raise SessionStateError(
                    f"server closed the session: {response.get('reason')}"
                )
            return response

    def _read_response(self, sock: socket.socket) -> dict:
        while True:
            try:
                payloads = self._decoder.feed(self._recv(sock))
            except TornFrameError:
                raise ConnectionLostError(
                    "response frame torn in flight"
                ) from None
            if payloads:
                return protocol.decode_message(payloads[0])

    def _recv(self, sock: socket.socket) -> bytes:
        try:
            data = sock.recv(65536)
        except socket.timeout:
            raise ConnectionLostError("response timed out") from None
        except OSError as exc:
            raise ConnectionLostError(f"recv failed: {exc}") from None
        if not data:
            raise ConnectionLostError("server closed the connection")
        return data
