"""Transactions: TID allocation, late timestamping, commit, rollback.

The key Immortal DB decision reproduced here (Section 2.1): a transaction's
timestamp is chosen **at commit**, after its serialization order is known,
so timestamp order always equals serialization order — unlike
timestamp-order concurrency control, which picks early and must abort
transactions that serialize differently.

Commit processing for an update transaction is exactly the paper's stage
III: choose the timestamp, do the *single* PTT insert (via the timestamp
manager), append and force the commit record, release locks.  No updated
record is revisited (that is lazy timestamping's job, stage IV).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.clock import SimClock, Timestamp
from repro.errors import ReadOnlyTransactionError, TransactionStateError
from repro.concurrency.locks import LockManager
from repro.faults.failpoints import fire
from repro.timestamp.manager import TimestampManager
from repro.wal.log import LogManager
from repro.wal.records import (
    AbortEnd,
    AbortTxn,
    BeginTxn,
    CommitTxn,
    InPlaceUpdate,
    LogRecord,
    PrepareTxn,
    TxnPhase,
    VersionOp,
)
from repro.wal import recovery as _recovery


class TxnMode(enum.Enum):
    SERIALIZABLE = "serializable"   # fine-grained 2PL
    SNAPSHOT = "snapshot"           # snapshot isolation: lock-free reads
    AS_OF = "as_of"                 # read-only historical transaction


class TxnState(enum.Enum):
    ACTIVE = "active"
    PREPARED = "prepared"     # voted yes in 2PC; awaiting the coordinator
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class Transaction:
    """One transaction's volatile state."""

    tid: int
    mode: TxnMode
    state: TxnState = TxnState.ACTIVE
    last_lsn: int = 0                 # backchain head for rollback
    logged_begin: bool = False        # BeginTxn is logged lazily at first write
    snapshot_ts: Timestamp | None = None   # visibility horizon (snapshot / as-of)
    commit_ts: Timestamp | None = None
    pinned_ts: Timestamp | None = None     # set by CURRENT TIME (§7.2)
    writes: set[tuple[int, bytes]] = field(default_factory=set)
    touched_immortal: bool = False
    version_count: int = 0
    # Optimistic mode (cc_mode="occ"): reads run against the snapshot
    # without locks but record every (table_id, key) probed; commit then
    # validates that none was overwritten by a later committed transaction.
    occ: bool = False
    read_keys: set[tuple[int, bytes]] = field(default_factory=set)
    gtid: int | None = None           # global 2PC transaction id, once prepared

    @property
    def is_read_only(self) -> bool:
        return not self.writes and self.version_count == 0

    @property
    def is_historical(self) -> bool:
        return self.mode is TxnMode.AS_OF

    def require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionStateError(
                f"transaction {self.tid} is {self.state.value}"
            )

    def require_writable(self) -> None:
        self.require_active()
        if self.is_historical:
            raise ReadOnlyTransactionError(
                f"transaction {self.tid} is a read-only AS OF transaction"
            )


class TransactionManager:
    """Begin/commit/abort orchestration over the log and timestamp manager."""

    def __init__(
        self,
        clock: SimClock,
        log: LogManager,
        tsmgr: TimestampManager,
        locks: LockManager,
        support: "_recovery.RecoverySupport",
        *,
        group_commit_window: int = 1,
    ) -> None:
        if group_commit_window < 1:
            raise ValueError("group_commit_window must be >= 1")
        self.clock = clock
        self.log = log
        self.tsmgr = tsmgr
        self.locks = locks
        self.support = support           # the engine (locator, buffer)
        self.group_commit_window = group_commit_window
        self.next_tid = 1
        self.active: dict[int, Transaction] = {}
        self.commits = 0
        self.aborts = 0
        self.group_commit_acks = 0       # commits durably acked via a batch force
        self.txn_retries = 0             # worker-pool retries after conflicts
        self.occ_validation_failures = 0  # commit-time validation rejections
        # Set by the engine when cc_mode="occ": called with the transaction
        # at commit, raises OCCValidationError if a read was invalidated.
        self.occ_validate: Callable[[Transaction], None] | None = None
        # Commit-timestamp source.  None draws from the local clock (the
        # single-engine default); a ShardRouter points every shard at one
        # shared CommitTimestampAuthority so timestamp order is a cluster-wide
        # total order and cross-shard as-of reads see one consistent cut.
        self.ts_source: Callable[[], Timestamp] | None = None
        # Prepared-but-undecided transactions by gtid (2PC participants).
        self.in_doubt: dict[int, Transaction] = {}
        # Group commit: transactions whose commit record is appended but not
        # yet durable, in enqueue (= LSN) order.  Any physical log force —
        # the window filling, a WAL-rule page flush, a checkpoint — makes a
        # prefix (in practice: all) of these durable; the post-force hook
        # then delivers their durable acknowledgements in order.
        self._pending_commits: deque[tuple[Transaction, int]] = deque()
        # Called once per transaction when its commit becomes durable (test
        # oracles hook this to learn the exact durable-ack instant).
        self.durable_commit_hook: Callable[[Transaction], None] | None = None
        log.post_force_hooks.append(self._on_log_force)

    # -- begin -------------------------------------------------------------

    def begin(
        self,
        mode: TxnMode = TxnMode.SERIALIZABLE,
        *,
        as_of: Timestamp | None = None,
    ) -> Transaction:
        if as_of is not None and mode is not TxnMode.AS_OF:
            raise TransactionStateError("as_of requires TxnMode.AS_OF")
        tid = self.next_tid
        self.next_tid += 1
        txn = Transaction(tid=tid, mode=mode)
        if mode is TxnMode.SNAPSHOT:
            txn.snapshot_ts = self.clock.now()
        elif mode is TxnMode.AS_OF:
            if as_of is None:
                raise TransactionStateError("AS OF transaction needs a timestamp")
            txn.snapshot_ts = as_of
        self.tsmgr.on_begin(tid, is_snapshot=mode is TxnMode.SNAPSHOT)
        self.active[tid] = txn
        return txn

    # -- logging helpers (called by the table layer) ----------------------------

    def log_update(self, txn: Transaction, record: LogRecord) -> int:
        """Append a txn-scoped update record, maintaining the backchain."""
        txn.require_writable()
        if not txn.logged_begin:
            begin_lsn = self.log.append(BeginTxn(tid=txn.tid))
            txn.last_lsn = begin_lsn
            txn.logged_begin = True
        record.tid = txn.tid
        record.prev_lsn = txn.last_lsn
        lsn = self.log.append(record)
        txn.last_lsn = lsn
        return lsn

    # -- CURRENT TIME (paper Section 7.2, built as an extension) ------------------

    def current_time(self, txn: Transaction) -> Timestamp:
        """SQL CURRENT TIME: a time consistent with the commit timestamp.

        Answering forces the timestamp to be chosen *earlier* than commit
        (the paper's §7.2 observation).  We pin it now; the table layer then
        validates every subsequent access against the pinned time — reading
        or overwriting a version committed after the pin would put the
        transaction's serialization point after its timestamp, so such
        accesses raise and the transaction must abort (the cost of early
        choice that Section 2.1 describes for TO schemes).
        """
        txn.require_active()
        if txn.is_historical:
            assert txn.snapshot_ts is not None
            return txn.snapshot_ts
        if txn.pinned_ts is None:
            txn.pinned_ts = self.clock.next_timestamp()
        return txn.pinned_ts

    # -- commit -----------------------------------------------------------------

    def commit(self, txn: Transaction) -> Timestamp | None:
        """Commit; returns the commit timestamp (None for pure readers)."""
        txn.require_active()
        if txn.is_read_only:
            txn.state = TxnState.COMMITTED
            self.tsmgr.on_abort(txn.tid)  # drop the (empty) VTT entry
            self._finish(txn)
            return None

        fire("txn.commit.begin")
        # Optimistic validation happens before anything is made permanent:
        # a failure leaves the transaction active, and the caller aborts it
        # (backward validation against committed writers, Larson et al.).
        if txn.occ and txn.read_keys and self.occ_validate is not None:
            self.occ_validate(txn)
        # Late choice: the timestamp is drawn now, when serialization order
        # is settled, guaranteeing timestamp order == serialization order —
        # unless CURRENT TIME already pinned one (validated at every access).
        if txn.pinned_ts is not None:
            ts = txn.pinned_ts
        elif self.ts_source is not None:
            ts = self.ts_source()
        else:
            ts = self.clock.next_timestamp()
        txn.commit_ts = ts
        # Eager mode does its revisit-and-stamp work here; lazy does nothing.
        self.tsmgr.on_commit_prepare(txn.tid, ts)
        commit_lsn = self.log.append(
            CommitTxn(
                tid=txn.tid,
                prev_lsn=txn.last_lsn,
                ttime=ts.ttime,
                sn=ts.sn,
                ptt=txn.touched_immortal,
            )
        )
        if self.group_commit_window > 1:
            return self._commit_grouped(txn, ts, commit_lsn)
        fire("txn.commit.force")      # commit record appended, not yet durable
        self.log.force(commit_lsn)
        fire("txn.commit.stamp")      # durable, VTT/PTT transition still pending
        self.tsmgr.on_commit(
            txn.tid, ts, commit_lsn, persistent=txn.touched_immortal
        )
        txn.state = TxnState.COMMITTED
        self._finish(txn)
        self.commits += 1
        fire("txn.commit.done")
        return ts

    def _commit_grouped(
        self, txn: Transaction, ts: Timestamp, commit_lsn: int
    ) -> Timestamp:
        """Group-commit tail: volatile commit now, durable ack at the force.

        The transaction's volatile transitions (VTT/PTT bookkeeping, lock
        release, COMMITTED state) happen immediately — early lock release is
        safe because any later transaction's commit record follows this one
        in the log, so it cannot become durable first.  The *durable*
        acknowledgement is deferred to the next physical force; a crash
        before it rolls the whole un-acked batch back (no commit record is
        durable), which is exactly what recovery's analysis pass does.
        """
        fire("txn.groupcommit.enqueue")   # record appended, ack deferred
        self.tsmgr.on_commit(
            txn.tid, ts, commit_lsn, persistent=txn.touched_immortal
        )
        txn.state = TxnState.COMMITTED
        self._finish(txn)
        self.commits += 1
        self._pending_commits.append((txn, commit_lsn))
        if len(self._pending_commits) >= self.group_commit_window:
            self.flush_commits()
        fire("txn.commit.done")
        return ts

    def flush_commits(self) -> None:
        """Force the log if group-committed transactions await durable acks."""
        if not self._pending_commits:
            return
        fire("txn.groupcommit.force")     # batch assembled, force still pending
        self.log.force()

    def _on_log_force(self) -> None:
        """Post-force hook: durably acknowledge every now-covered commit."""
        while self._pending_commits \
                and self._pending_commits[0][1] < self.log.flushed_lsn:
            txn, _ = self._pending_commits.popleft()
            self.group_commit_acks += 1
            fire("txn.groupcommit.ack")   # this commit is durable, ack in flight
            if self.durable_commit_hook is not None:
                self.durable_commit_hook(txn)

    @property
    def unacked_commits(self) -> int:
        """Group-committed transactions still awaiting their durable ack."""
        return len(self._pending_commits)

    def discard_pending_commits(self) -> None:
        """Crash: un-acked batched commits are lost with the log suffix."""
        self._pending_commits.clear()

    # -- two-phase commit (participant side) ------------------------------------------

    def prepare(self, txn: Transaction, gtid: int) -> int:
        """Phase one: force-log the vote, keep the locks, await the decision.

        After this returns the transaction is PREPARED: it can no longer
        abort unilaterally — a crash restores it *in doubt* with its write
        locks re-acquired, and only :meth:`commit_prepared` (coordinator said
        commit) or :meth:`abort` (coordinator said abort) resolves it.
        """
        txn.require_writable()
        if txn.is_read_only:
            raise TransactionStateError(
                f"transaction {txn.tid} is read-only; prepare is meaningless"
            )
        fire("txn.prepare.begin")
        # Validation runs at prepare: a yes vote promises the transaction
        # *can* commit, so optimistic conflicts must surface here, while the
        # participant can still vote no.
        if txn.occ and txn.read_keys and self.occ_validate is not None:
            self.occ_validate(txn)
        txn.gtid = gtid
        lsn = self.log.append(
            PrepareTxn(
                tid=txn.tid,
                prev_lsn=txn.last_lsn,
                gtid=gtid,
                ptt=txn.touched_immortal,
                writes=sorted(txn.writes),
            )
        )
        txn.last_lsn = lsn
        fire("txn.prepare.force")     # vote appended, not yet durable
        # Force to end-of-log, not force(lsn): an LSN is a *start* offset,
        # and this record may be the first append since a force that left
        # flushed_lsn exactly here — force(lsn) would no-op and the vote
        # would not be durable.
        self.log.force()
        txn.state = TxnState.PREPARED
        self.in_doubt[gtid] = txn
        fire("txn.prepare.done")      # durable yes vote
        return lsn

    def commit_prepared(self, txn: Transaction, ts: Timestamp) -> Timestamp:
        """Phase two, commit decision: stamp the coordinator-issued timestamp.

        Identical to the tail of :meth:`commit` except the timestamp comes
        from the decision (issued once by the shared authority, the same
        value on every participant shard) instead of being drawn locally.
        """
        if txn.state is not TxnState.PREPARED:
            raise TransactionStateError(
                f"transaction {txn.tid} is {txn.state.value}, not prepared"
            )
        fire("txn.commit.begin")
        txn.commit_ts = ts
        self.tsmgr.on_commit_prepare(txn.tid, ts)
        commit_lsn = self.log.append(
            CommitTxn(
                tid=txn.tid,
                prev_lsn=txn.last_lsn,
                ttime=ts.ttime,
                sn=ts.sn,
                ptt=txn.touched_immortal,
            )
        )
        fire("txn.commit.force")
        # force(), not force(commit_lsn): prepare's force left flushed_lsn
        # exactly at this record's start offset, where force(commit_lsn)
        # would no-op (see prepare).
        self.log.force()
        fire("txn.commit.stamp")
        self.tsmgr.on_commit(
            txn.tid, ts, commit_lsn, persistent=txn.touched_immortal
        )
        txn.state = TxnState.COMMITTED
        if txn.gtid is not None:
            self.in_doubt.pop(txn.gtid, None)
        self._finish(txn)
        self.commits += 1
        fire("txn.commit.done")
        return ts

    def reinstate_in_doubt(
        self, entries: list[tuple[int, int]], lock_record: Callable
    ) -> None:
        """Restore prepared transactions after recovery (still undecided).

        ``entries`` is the recovery report's [(tid, prepare_lsn)] list; the
        prepare record supplies the write set for lock re-acquisition and
        the gtid for coordinator lookup.  Each transaction comes back
        PREPARED with an active VTT entry (so its TID-marked versions stay
        invisible and unstampable) and exclusive locks on every key it
        wrote (so conflicting access raises, surfaced as InDoubtError at
        the cluster layer).
        """
        for tid, prepare_lsn in entries:
            rec = self.log.record_at(prepare_lsn)
            if not isinstance(rec, PrepareTxn):
                raise TransactionStateError(
                    f"in-doubt LSN {prepare_lsn} is not a prepare record"
                )
            txn = Transaction(
                tid=tid,
                mode=TxnMode.SERIALIZABLE,
                state=TxnState.PREPARED,
                last_lsn=prepare_lsn,
                logged_begin=True,
                touched_immortal=rec.ptt,
                gtid=rec.gtid,
            )
            txn.writes = set(rec.writes)
            self.tsmgr.on_begin(tid)
            # The crash lost the count of unstamped versions this TID left on
            # pages (redo recreated the versions, not the bookkeeping), so
            # the RefCount is *undefined* — same post-crash posture as a VTT
            # entry cached from the PTT: stamping decrements become no-ops
            # and the PTT entry is never garbage-collected.
            self.tsmgr.vtt.require(tid).refcount = None
            for table_id, key in sorted(txn.writes):
                lock_record(tid, table_id, key)
            # Under blocking locks a waiter must not park behind this TID:
            # it releases only when 2PC resolution runs, so conflicts raise
            # immediately (surfaced as InDoubtError at the cluster layer).
            self.locks.wedged.add(tid)
            self.active[tid] = txn
            self.in_doubt[rec.gtid] = txn

    # -- abort ----------------------------------------------------------------------

    def abort(self, txn: Transaction) -> None:
        """Roll back every update via the log backchain, writing CLRs."""
        if txn.state is TxnState.PREPARED:
            # Coordinator said abort (or presumed abort after a crash):
            # resume as an ordinary rollback, releasing the in-doubt entry.
            txn.state = TxnState.ACTIVE
            if txn.gtid is not None:
                self.in_doubt.pop(txn.gtid, None)
        txn.require_active()
        if not txn.is_read_only:
            fire("txn.abort.begin")
            self.log.append(AbortTxn(tid=txn.tid, prev_lsn=txn.last_lsn))
            lsn = txn.last_lsn
            prev_clr = 0
            while lsn:
                rec = self.log.record_at(lsn)
                if isinstance(rec, (VersionOp, InPlaceUpdate)):
                    prev_clr = _recovery._undo_update(self.support, rec, prev_clr)
                    lsn = rec.prev_lsn
                elif isinstance(rec, BeginTxn):
                    break
                else:
                    lsn = rec.prev_lsn
            self.log.append(AbortEnd(tid=txn.tid, prev_lsn=prev_clr))
        self.tsmgr.on_abort(txn.tid)
        txn.state = TxnState.ABORTED
        self._finish(txn)
        self.aborts += 1

    # -- bookkeeping -----------------------------------------------------------------

    def _finish(self, txn: Transaction) -> None:
        self.locks.wedged.discard(txn.tid)
        self.locks.release_all(txn.tid)
        self.active.pop(txn.tid, None)

    def att_snapshot(self) -> dict[int, tuple[int, int]]:
        """{tid: (last_lsn, phase)} of update transactions, for checkpoints."""
        return {
            tid: (
                txn.last_lsn,
                int(
                    TxnPhase.PREPARED
                    if txn.state is TxnState.PREPARED
                    else TxnPhase.ACTIVE
                ),
            )
            for tid, txn in self.active.items()
            if txn.logged_begin
        }

    def adopt_tid_floor(self, max_seen_tid: int) -> None:
        """After recovery: never reuse a TID that appears in the log or PTT."""
        self.next_tid = max(self.next_tid, max_seen_tid + 1)
