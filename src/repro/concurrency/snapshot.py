"""Snapshot isolation: visibility, the oldest-active watermark, version GC.

Snapshot readers take no locks: a reader sees, for every record, the newest
version committed strictly before its snapshot horizon (the clock value at
transaction begin).  AS OF transactions reuse the same machinery with an
*inclusive* horizon — the version with the largest timestamp ≤ the
requested time (Section 4.2).

For conventional tables (snapshot isolation enabled, but not immortal),
versions are transient: "Immortal DB keeps track of the time of the oldest
active snapshot transaction O; versions earlier than the version seen by O
are garbage collected" (Section 3).  :func:`prune_conventional_page`
implements exactly that rule.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.clock import Timestamp
from repro.storage.page import DataPage
from repro.storage.record import RecordVersion

Resolver = Callable[[int], tuple[Timestamp | None, bool]]
"""TID -> (timestamp, committed?) — :meth:`TimestampManager.resolve`."""


def visible_version(
    chain: Iterable[RecordVersion],
    *,
    horizon: Timestamp | None,
    inclusive: bool,
    resolve: Resolver,
    own_tid: int | None = None,
    stats=None,
) -> RecordVersion | None:
    """Pick the version a reader should see from a newest-first chain.

    ``horizon=None`` means a current-time read: the newest committed version
    (or the reader's own uncommitted one) wins.  Otherwise the first version
    whose timestamp is ``< horizon`` (or ``<= horizon`` when ``inclusive``)
    is returned.  Delete stubs are returned as-is — the caller decides
    whether a stub means "not found".

    Versions written by *other* active transactions are skipped: they are
    invisible at any horizon.

    ``stats`` (an :class:`~repro.core.asof.AsOfStats`, when provided) counts
    one ``chain_steps`` per version examined — structural read work for the
    bench output; never affects the outcome.
    """
    for version in chain:
        if stats is not None:
            stats.chain_steps += 1
        if not version.is_timestamped:
            if own_tid is not None and version.tid == own_tid:
                if horizon is None:
                    return version
                continue  # own writes are newer than any snapshot horizon
            ts, committed = resolve(version.tid)
            if not committed:
                continue
            # resolve() learned the timestamp but did not stamp the record;
            # use the resolved value for the visibility decision.
        else:
            ts = version.timestamp
        assert ts is not None
        if horizon is None:
            return version
        if ts < horizon or (inclusive and ts == horizon):
            return version
    return None


class SnapshotRegistry:
    """Tracks active snapshot transactions and their horizons."""

    def __init__(self) -> None:
        self._horizons: dict[int, Timestamp] = {}

    def register(self, tid: int, horizon: Timestamp) -> None:
        self._horizons[tid] = horizon

    def unregister(self, tid: int) -> None:
        self._horizons.pop(tid, None)

    def oldest(self) -> Timestamp | None:
        """Horizon of the oldest active snapshot transaction (O), or None."""
        if not self._horizons:
            return None
        return min(self._horizons.values())

    def __len__(self) -> int:
        return len(self._horizons)

    def clear(self) -> None:
        """Snapshot transactions are aborted at a crash (Section 3)."""
        self._horizons.clear()


def prune_conventional_page(
    page: DataPage,
    oldest: Timestamp | None,
    resolve: Resolver,
) -> tuple[DataPage, int]:
    """Garbage collect snapshot versions no active snapshot can see.

    For every record the page keeps: every not-yet-timestamped version
    (uncommitted, or committed with stamping pending), every version the
    oldest active snapshot ``O`` could still read (timestamp ≥ the one
    visible to O), and the version visible to O itself.  Everything older
    is dropped.  With no active snapshot, only chain heads survive.

    Returns a rebuilt page (same id and header) and the number of versions
    dropped.  Callers should stamp the page first so committed versions
    carry timestamps.
    """
    rebuilt = DataPage(
        page.page_id,
        is_history=page.is_history,
        page_size=page.page_size,
        table_id=page.table_id,
        immortal=page.immortal,
    )
    rebuilt.lsn = page.lsn
    rebuilt.split_ts = page.split_ts
    rebuilt.end_ts = page.end_ts
    rebuilt.history_page_id = page.history_page_id
    rebuilt.next_leaf_id = page.next_leaf_id
    dropped = 0
    for key in page.keys():
        chain = list(page.chain(key))
        keep: list[RecordVersion] = []
        horizon_satisfied = False
        for i, version in enumerate(chain):
            if not version.is_timestamped:
                keep.append(version.copy())
                continue
            if i == 0:
                keep.append(version.copy())
            elif oldest is not None and not horizon_satisfied:
                keep.append(version.copy())
            else:
                dropped += 1
                continue
            if oldest is not None and version.timestamp <= oldest:
                # This is the version O reads (inclusive horizon);
                # everything older is garbage.
                horizon_satisfied = True
        # A chain whose only survivor is an old delete stub is fully dead.
        if (
            len(keep) == 1
            and keep[0].is_delete_stub
            and keep[0].is_timestamped
            and (oldest is None or keep[0].timestamp < oldest)
        ):
            dropped += 1
            continue
        rebuilt.add_chain(keep)
    return rebuilt, dropped
