"""Concurrency control: locking, transactions, snapshot isolation.

SQL Server (and hence Immortal DB) supports serializable transactions via
fine-grained locking *and* snapshot isolation where readers never block
(Section 2.1).  This package provides both:

* :mod:`repro.concurrency.locks` — a lock manager with S/X record locks and
  IS/IX table intents,
* :mod:`repro.concurrency.transaction` — the transaction manager: TID
  allocation, late (commit-time) timestamp choice so timestamp order always
  agrees with serialization order, rollback via the log backchain,
* :mod:`repro.concurrency.snapshot` — snapshot visibility rules, the
  oldest-active-snapshot watermark, and version garbage collection for
  conventional (non-immortal) tables.
"""

from repro.concurrency.locks import LockManager, LockMode
from repro.concurrency.transaction import (
    Transaction,
    TransactionManager,
    TxnMode,
    TxnState,
)
from repro.concurrency.snapshot import SnapshotRegistry, prune_conventional_page

__all__ = [
    "LockManager",
    "LockMode",
    "Transaction",
    "TransactionManager",
    "TxnMode",
    "TxnState",
    "SnapshotRegistry",
    "prune_conventional_page",
]
