"""Engine latching for concurrent execution.

The concurrent-execution design (see DESIGN.md, "Concurrent execution")
uses a two-level discipline:

1. **Record/table locks first** — every table operation acquires its 2PL
   locks *before* touching any shared structure, and may block there.
2. **One engine latch second** — the structural work (B-tree descent, page
   mutation, WAL append, clock draw, VTT/PTT updates) runs under a single
   reentrant engine latch, held only for the duration of one operation,
   never across a lock wait.

Because no thread ever blocks on a record lock while holding the latch,
lock waits cannot entangle with latch waits: the latch is always released
in bounded time, so the only cycles possible are record-lock cycles — which
the lock manager detects and breaks.

:class:`NullLatch` is the zero-cost stand-in used when concurrency is off
(the default), keeping the single-threaded paths byte-identical in
behaviour and almost identical in cost.

Latch waiters queue FIFO and are woken by the releaser in queue order, the
same grant-on-release scheme the blocking lock manager uses; combined with
the ``wait_hooks`` seam this makes latch handoff replayable under the
deterministic interleaving scheduler.
"""

from __future__ import annotations

import threading
import time

from repro.errors import ConcurrencyError


class NullLatch:
    """A free pass: the latch used while concurrency is disabled."""

    __slots__ = ()

    def acquire(self) -> None:
        pass

    def release(self) -> None:
        pass

    def __enter__(self) -> "NullLatch":
        return self

    def __exit__(self, *exc) -> None:
        pass


class ReentrantLatch:
    """A FIFO-fair reentrant mutex with scheduler hooks.

    Unlike :class:`threading.RLock`, waiters are granted strictly in
    arrival order, and the *releasing* thread decides (and announces via
    ``wait_hooks.on_wake``) who runs next — the properties the
    deterministic interleaving harness needs.  ``wait_hooks`` follows the
    same protocol as the lock manager's: ``on_wait()`` before parking,
    ``on_wake(ident)`` from the releaser, ``on_resume()`` after waking,
    outside the monitor.
    """

    def __init__(self, *, timeout_s: float = 30.0) -> None:
        self._cv = threading.Condition()
        self._owner: int | None = None
        self._depth = 0
        self._queue: list[int] = []     # thread idents, FIFO
        self.timeout_s = timeout_s
        self.wait_hooks = None
        self.acquisitions = 0
        self.waits = 0
        self.wait_ns = 0

    def acquire(self) -> None:
        me = threading.get_ident()
        hooks = self.wait_hooks
        with self._cv:
            if self._owner == me:
                self._depth += 1
                return
            if self._owner is None and not self._queue:
                self._owner = me
                self._depth = 1
                self.acquisitions += 1
                return
            self._queue.append(me)
            self.waits += 1
            if hooks is not None:
                hooks.on_wait()
            started = time.perf_counter_ns()
            deadline = time.monotonic() + self.timeout_s
            while not (self._owner is None and self._queue[0] == me):
                if not self._cv.wait(timeout=self.timeout_s) \
                        and time.monotonic() >= deadline:
                    self._queue.remove(me)
                    self._cv.notify_all()
                    raise ConcurrencyError(
                        f"engine latch wait timed out after {self.timeout_s}s"
                    )
            self.wait_ns += time.perf_counter_ns() - started
            self._queue.pop(0)
            self._owner = me
            self._depth = 1
            self.acquisitions += 1
        if hooks is not None:
            hooks.on_resume()

    def release(self) -> None:
        with self._cv:
            if self._owner != threading.get_ident():
                raise ConcurrencyError(
                    "engine latch released by a thread that does not hold it"
                )
            self._depth -= 1
            if self._depth:
                return
            self._owner = None
            if self._queue:
                if self.wait_hooks is not None:
                    self.wait_hooks.on_wake(self._queue[0])
                self._cv.notify_all()

    def __enter__(self) -> "ReentrantLatch":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    @property
    def held(self) -> bool:
        """True when the calling thread owns the latch."""
        return self._owner == threading.get_ident()
