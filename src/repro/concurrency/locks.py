"""Lock manager: fine-grained record locks with table intents.

The simulation is single-threaded, so a conflicting request does not block;
it raises :exc:`~repro.errors.LockConflictError` naming the holder.  Tests
interleave transactions cooperatively and assert on exactly these conflicts
— which is also how the paper motivates snapshot isolation: "reads are not
blocked by concurrent updates" because snapshot readers take no locks at
all (see :mod:`repro.concurrency.snapshot`).
"""

from __future__ import annotations

import enum
from collections import defaultdict
from typing import Hashable

from repro.errors import LockConflictError


class LockMode(enum.IntEnum):
    IS = 0   # intent shared (table)
    IX = 1   # intent exclusive (table)
    S = 2    # shared (record, or whole-table scans)
    X = 3    # exclusive (record)


# Compatibility matrix: _COMPAT[held][requested]
_COMPAT: dict[LockMode, set[LockMode]] = {
    LockMode.IS: {LockMode.IS, LockMode.IX, LockMode.S},
    LockMode.IX: {LockMode.IS, LockMode.IX},
    LockMode.S: {LockMode.IS, LockMode.S},
    LockMode.X: set(),
}

Resource = Hashable


def record_resource(table_id: int, key: bytes) -> tuple:
    return ("record", table_id, key)


def table_resource(table_id: int) -> tuple:
    return ("table", table_id)


class LockManager:
    """Lock table keyed by resource; per-transaction held-lock index."""

    def __init__(self) -> None:
        self._holders: dict[Resource, dict[int, LockMode]] = defaultdict(dict)
        self._held_by: dict[int, set[Resource]] = defaultdict(set)
        self.grants = 0
        self.conflicts = 0
        self.upgrades = 0

    def acquire(self, tid: int, resource: Resource, mode: LockMode) -> None:
        """Grant ``mode`` on ``resource`` to ``tid`` or raise on conflict.

        Re-acquiring an equal or weaker mode is a no-op; a stronger mode is
        an upgrade, granted only if no *other* holder conflicts.
        """
        holders = self._holders[resource]
        current = holders.get(tid)
        if current is not None and current >= mode:
            return
        for other_tid, other_mode in holders.items():
            if other_tid == tid:
                continue
            if mode not in _COMPAT[other_mode]:
                self.conflicts += 1
                raise LockConflictError(
                    f"{mode.name} lock on {resource!r} conflicts with "
                    f"{other_mode.name} held by transaction {other_tid}",
                    holder_tid=other_tid,
                )
        if current is not None:
            self.upgrades += 1
        holders[tid] = mode
        self._held_by[tid].add(resource)
        self.grants += 1

    def lock_record_shared(self, tid: int, table_id: int, key: bytes) -> None:
        self.acquire(tid, table_resource(table_id), LockMode.IS)
        self.acquire(tid, record_resource(table_id, key), LockMode.S)

    def lock_record_exclusive(self, tid: int, table_id: int, key: bytes) -> None:
        self.acquire(tid, table_resource(table_id), LockMode.IX)
        self.acquire(tid, record_resource(table_id, key), LockMode.X)

    def lock_table_shared(self, tid: int, table_id: int) -> None:
        self.acquire(tid, table_resource(table_id), LockMode.S)

    def release_all(self, tid: int) -> int:
        """Drop every lock held by ``tid`` (commit/abort).  Returns count."""
        resources = self._held_by.pop(tid, set())
        for resource in resources:
            holders = self._holders.get(resource)
            if holders is not None:
                holders.pop(tid, None)
                if not holders:
                    del self._holders[resource]
        return len(resources)

    def mode_held(self, tid: int, resource: Resource) -> LockMode | None:
        return self._holders.get(resource, {}).get(tid)

    def locks_held(self, tid: int) -> int:
        return len(self._held_by.get(tid, ()))

    def total_locks(self) -> int:
        return sum(len(h) for h in self._holders.values())
