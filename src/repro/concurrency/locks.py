"""Lock manager: fine-grained record locks with table intents.

Two execution modes share one lock table:

* **Non-blocking** (the default, and the historical behaviour): a
  conflicting request raises :exc:`~repro.errors.LockConflictError` naming
  the holders.  Single-threaded tests interleave transactions cooperatively
  and assert on exactly these conflicts — which is also how the paper
  motivates snapshot isolation: "reads are not blocked by concurrent
  updates" because snapshot readers take no locks at all (see
  :mod:`repro.concurrency.snapshot`).

* **Blocking** (``blocking=True``, enabled by the worker pool): a
  conflicting request parks the calling thread on a condition variable in a
  per-resource FIFO wait queue.  Grants happen *on release* — the releasing
  thread scans the queue and hands locks to every waiter that is compatible
  with the remaining holders and with every conflicting waiter ahead of it
  (no barging past a conflicting request, but a compatible one may pass a
  blocked stranger).  Granting in the releaser's context keeps the grant
  order deterministic under the interleaving harness: who gets the lock
  never depends on which sleeping thread the OS wakes first.

  Every wait first runs cycle detection over the waits-for graph (edges to
  conflicting holders and to conflicting earlier waiters).  A cycle picks a
  victim — by default the *youngest* transaction (highest TID), a
  deterministic choice — which is woken with a doom marker and raises
  :exc:`~repro.errors.DeadlockError` from its wait; its owner aborts the
  transaction, releasing the locks that let the cycle drain.

Upgrades (a transaction that already holds S requesting X) never queue
behind strangers: they are granted the moment no *other* holder conflicts,
and while waiting they contribute waits-for edges like any waiter, so two
crossing upgraders become a detected deadlock instead of a livelock.
"""

from __future__ import annotations

import enum
import threading
import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Hashable

from repro.errors import ConcurrencyError, DeadlockError, LockConflictError


class LockMode(enum.IntEnum):
    IS = 0   # intent shared (table)
    IX = 1   # intent exclusive (table)
    S = 2    # shared (record, or whole-table scans)
    X = 3    # exclusive (record)


# Compatibility matrix: _COMPAT[held][requested]
_COMPAT: dict[LockMode, set[LockMode]] = {
    LockMode.IS: {LockMode.IS, LockMode.IX, LockMode.S},
    LockMode.IX: {LockMode.IS, LockMode.IX},
    LockMode.S: {LockMode.IS, LockMode.S},
    LockMode.X: set(),
}

Resource = Hashable


def record_resource(table_id: int, key: bytes) -> tuple:
    return ("record", table_id, key)


def table_resource(table_id: int) -> tuple:
    return ("table", table_id)


def _conflicts(held: LockMode, requested: LockMode) -> bool:
    return requested not in _COMPAT[held]


def _cross_conflicts(a: LockMode, b: LockMode) -> bool:
    """Conflict in either direction — the ordering test between two waiters."""
    return a not in _COMPAT[b] or b not in _COMPAT[a]


@dataclass
class _Waiter:
    """One parked lock request (blocking mode only)."""

    tid: int
    mode: LockMode
    resource: Resource
    thread_ident: int
    granted: bool = False
    doomed: tuple[int, ...] | None = None   # the cycle, once chosen as victim


@dataclass
class LockStats:
    """Concurrency counters (all zero in single-threaded runs)."""

    lock_waits: int = 0          # requests that had to park
    lock_wait_ns: int = 0        # total parked time
    deadlocks_detected: int = 0  # waits-for cycles found


class LockManager:
    """Lock table keyed by resource; per-transaction held-lock index."""

    def __init__(
        self,
        *,
        blocking: bool = False,
        wait_timeout_s: float = 30.0,
        victim_policy: Callable[[tuple[int, ...]], int] | None = None,
    ) -> None:
        self._holders: dict[Resource, dict[int, LockMode]] = defaultdict(dict)
        self._held_by: dict[int, set[Resource]] = defaultdict(set)
        self._waiters: dict[Resource, list[_Waiter]] = {}
        self._waiting_tids: dict[int, _Waiter] = {}
        self._cv = threading.Condition()
        # TIDs that cannot finish without external action (in-doubt 2PC
        # participants reinstated after recovery): waiting behind one is
        # futile — the holder releases only when resolution runs — so
        # conflicts with a wedged holder raise immediately even in
        # blocking mode, where they can be surfaced as typed errors.
        self.wedged: set[int] = set()
        self.blocking = blocking
        self.wait_timeout_s = wait_timeout_s
        # Deterministic default: abort the youngest transaction in the cycle.
        self.victim_policy = victim_policy or max
        # Scheduler seam (the interleaving harness installs one): an object
        # with on_wait() [caller is about to sleep], on_wake(thread_ident)
        # [another thread made `ident` runnable], on_resume() [caller woke
        # and wants to run engine code again].
        self.wait_hooks = None
        self.grants = 0
        self.conflicts = 0
        self.upgrades = 0
        self.stats = LockStats()

    # -- acquisition --------------------------------------------------------

    def acquire(self, tid: int, resource: Resource, mode: LockMode) -> None:
        """Grant ``mode`` on ``resource`` to ``tid``.

        Re-acquiring an equal or weaker mode is a no-op; a stronger mode is
        an upgrade, granted as soon as no *other* holder conflicts.  In
        non-blocking mode a conflict raises :exc:`LockConflictError`
        immediately; in blocking mode the caller parks until granted, or
        raises :exc:`DeadlockError` if its wait would close (and it is
        chosen to break) a waits-for cycle.
        """
        try:
            with self._cv:
                holders = self._holders[resource]
                current = holders.get(tid)
                if current is not None and current >= mode:
                    return
                blocking_holders = [
                    (t, m) for t, m in holders.items()
                    if t != tid and _conflicts(m, mode)
                ]
                queue = self._waiters.get(resource, ())
                blocking_waiters = [
                    w for w in queue
                    if w.tid != tid and _cross_conflicts(mode, w.mode)
                ]
                if not blocking_holders and (current is not None
                                             or not blocking_waiters):
                    # Free, or an upgrade with no conflicting co-holder:
                    # upgrades barge (queueing behind a stranger's X request
                    # on a resource we already hold would be a self-made
                    # deadlock).
                    self._grant(
                        tid, resource, mode, upgrade=current is not None
                    )
                    return
                if not self.blocking or any(
                    t in self.wedged for t, _ in blocking_holders
                ):
                    self.conflicts += 1
                    raise self._conflict_error(
                        tid, resource, mode, blocking_holders
                    )
                self._wait_for_grant(tid, resource, mode)
        finally:
            # Token re-entry happens outside the monitor — including the
            # deadlock-victim and timeout raise paths, so an aborting victim
            # still runs under the scheduler's token.  Threads that never
            # slept resume as a no-op.
            if self.wait_hooks is not None:
                self.wait_hooks.on_resume()

    def _grant(
        self, tid: int, resource: Resource, mode: LockMode, *, upgrade: bool
    ) -> None:
        if upgrade:
            self.upgrades += 1
        current = self._holders[resource].get(tid)
        if current is None or mode > current:
            self._holders[resource][tid] = mode
        self._held_by[tid].add(resource)
        self.grants += 1

    def _conflict_error(
        self,
        tid: int,
        resource: Resource,
        mode: LockMode,
        blocking_holders: list[tuple[int, LockMode]],
    ) -> LockConflictError:
        holder_tid, holder_mode = blocking_holders[0]
        return LockConflictError(
            f"{mode.name} lock on {resource!r} conflicts with "
            f"{holder_mode.name} held by transaction {holder_tid}",
            holder_tid=holder_tid,
            waiter_tid=tid,
            holder_tids=tuple(t for t, _ in blocking_holders),
            holder_modes=tuple(m for _, m in blocking_holders),
            resource=resource,
            requested_mode=mode,
        )

    # -- blocking wait path -------------------------------------------------

    def _wait_for_grant(
        self, tid: int, resource: Resource, mode: LockMode
    ) -> None:
        """Park until granted or doomed.  Monitor held on entry and exit."""
        if tid in self._waiting_tids:
            raise ConcurrencyError(
                f"transaction {tid} is already waiting for a lock "
                f"(one thread per transaction is required)"
            )
        waiter = _Waiter(tid, mode, resource, threading.get_ident())
        self._waiters.setdefault(resource, []).append(waiter)
        self._waiting_tids[tid] = waiter
        self.stats.lock_waits += 1
        self.conflicts += 1
        self._resolve_deadlocks(waiter)
        if self.wait_hooks is not None and waiter.doomed is None \
                and not waiter.granted:
            self.wait_hooks.on_wait()
        started = time.perf_counter_ns()
        deadline = time.monotonic() + self.wait_timeout_s
        while not waiter.granted and waiter.doomed is None:
            if not self._cv.wait(timeout=self.wait_timeout_s) \
                    and time.monotonic() >= deadline:
                self._remove_waiter(waiter)
                self.stats.lock_wait_ns += time.perf_counter_ns() - started
                raise ConcurrencyError(
                    f"transaction {tid} timed out after "
                    f"{self.wait_timeout_s}s waiting for {mode.name} on "
                    f"{resource!r}"
                )
        self.stats.lock_wait_ns += time.perf_counter_ns() - started
        if waiter.doomed is not None:
            raise DeadlockError(
                f"transaction {tid} chosen as deadlock victim "
                f"(cycle {' -> '.join(map(str, waiter.doomed))}) while "
                f"requesting {mode.name} on {resource!r}",
                cycle=waiter.doomed,
                victim_tid=tid,
                resource=resource,
            )

    def _resolve_deadlocks(self, waiter: _Waiter) -> None:
        """Detect and break every cycle the new wait closes (monitor held)."""
        while waiter.doomed is None and not waiter.granted:
            cycle = self._find_cycle(waiter.tid)
            if cycle is None:
                return
            self.stats.deadlocks_detected += 1
            victim = self.victim_policy(cycle)
            victim_waiter = self._waiting_tids.get(victim)
            if victim_waiter is None:   # policy picked a non-waiting tid
                victim_waiter = waiter
            victim_waiter.doomed = cycle
            # Remove the victim from the graph in the *detector's* context,
            # so promotion order never depends on when the victim thread
            # wakes (determinism under the interleaving harness).
            self._remove_waiter(victim_waiter)
            if self.wait_hooks is not None and victim_waiter is not waiter:
                self.wait_hooks.on_wake(victim_waiter.thread_ident)
            self._cv.notify_all()
            if victim_waiter is waiter:
                return

    def _blockers(self, waiter: _Waiter) -> set[int]:
        """TIDs this waiter is waiting for (the waits-for out-edges)."""
        out: set[int] = set()
        for t, m in self._holders.get(waiter.resource, {}).items():
            if t != waiter.tid and _conflicts(m, waiter.mode):
                out.add(t)
        for other in self._waiters.get(waiter.resource, ()):
            if other is waiter:
                break
            if other.tid != waiter.tid and not other.granted \
                    and _cross_conflicts(waiter.mode, other.mode):
                out.add(other.tid)
        return out

    def _find_cycle(self, start: int) -> tuple[int, ...] | None:
        """DFS from ``start`` through the waits-for graph; a path back to
        ``start`` is returned as the cycle (monitor held)."""
        path: list[int] = []
        visited: set[int] = set()

        def dfs(tid: int) -> tuple[int, ...] | None:
            w = self._waiting_tids.get(tid)
            if w is None:
                return None
            for nxt in sorted(self._blockers(w)):
                if nxt == start:
                    return tuple(path + [tid])
                if nxt in visited:
                    continue
                visited.add(nxt)
                path.append(tid)
                found = dfs(nxt)
                path.pop()
                if found is not None:
                    return found
            return None

        return dfs(start)

    def _remove_waiter(self, waiter: _Waiter) -> None:
        queue = self._waiters.get(waiter.resource)
        if queue is not None and waiter in queue:
            queue.remove(waiter)
            if not queue:
                del self._waiters[waiter.resource]
        self._waiting_tids.pop(waiter.tid, None)
        # Whoever queued behind the removed request may now be grantable.
        self._promote(waiter.resource)

    def _promote(self, resource: Resource) -> None:
        """Grant every queued waiter the current state allows (monitor held).

        Runs in the context of the thread that changed the lock table (a
        release, or a waiter removal), which makes grant order a pure
        function of the request order — deterministic under the harness.
        """
        queue = self._waiters.get(resource)
        if not queue:
            return
        holders = self._holders[resource]
        pending: list[_Waiter] = []
        woke = False
        for waiter in list(queue):
            blocked = any(
                _conflicts(m, waiter.mode)
                for t, m in holders.items() if t != waiter.tid
            ) or any(
                _cross_conflicts(waiter.mode, p.mode)
                for p in pending if p.tid != waiter.tid
            )
            if blocked:
                pending.append(waiter)
                continue
            upgrade = waiter.tid in holders
            self._grant(waiter.tid, resource, waiter.mode, upgrade=upgrade)
            waiter.granted = True
            queue.remove(waiter)
            self._waiting_tids.pop(waiter.tid, None)
            if self.wait_hooks is not None:
                self.wait_hooks.on_wake(waiter.thread_ident)
            woke = True
        if not queue:
            del self._waiters[resource]
        if woke:
            self._cv.notify_all()

    # -- convenience wrappers ------------------------------------------------

    def lock_record_shared(self, tid: int, table_id: int, key: bytes) -> None:
        self.acquire(tid, table_resource(table_id), LockMode.IS)
        self.acquire(tid, record_resource(table_id, key), LockMode.S)

    def lock_record_exclusive(self, tid: int, table_id: int, key: bytes) -> None:
        self.acquire(tid, table_resource(table_id), LockMode.IX)
        self.acquire(tid, record_resource(table_id, key), LockMode.X)

    def lock_table_shared(self, tid: int, table_id: int) -> None:
        self.acquire(tid, table_resource(table_id), LockMode.S)

    # -- release --------------------------------------------------------------

    def release_all(self, tid: int) -> int:
        """Drop every lock held by ``tid`` (commit/abort).  Returns count."""
        with self._cv:
            resources = self._held_by.pop(tid, set())
            for resource in resources:
                holders = self._holders.get(resource)
                if holders is not None:
                    holders.pop(tid, None)
                    if not holders:
                        del self._holders[resource]
                self._promote(resource)
            return len(resources)

    # -- inspection ------------------------------------------------------------

    def mode_held(self, tid: int, resource: Resource) -> LockMode | None:
        with self._cv:
            return self._holders.get(resource, {}).get(tid)

    def locks_held(self, tid: int) -> int:
        with self._cv:
            return len(self._held_by.get(tid, ()))

    def total_locks(self) -> int:
        with self._cv:
            return sum(len(h) for h in self._holders.values())

    def waiting_tids(self) -> list[int]:
        """TIDs currently parked (diagnostics and harness assertions)."""
        with self._cv:
            return sorted(self._waiting_tids)
