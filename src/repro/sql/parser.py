"""Recursive-descent parser for the Immortal DB SQL dialect."""

from __future__ import annotations

from repro.errors import SQLSyntaxError
from repro.sql import ast
from repro.sql.lexer import Token, TokenType, tokenize

_TYPE_KEYWORDS = {
    "SMALLINT", "INT", "INTEGER", "BIGINT",
    "FLOAT", "REAL", "DOUBLE",
    "TEXT", "VARCHAR", "CHAR",
    "BOOL", "BOOLEAN",
}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- cursor helpers ------------------------------------------------------

    @property
    def current(self) -> Token:
        """The token under the cursor."""
        return self.tokens[self.pos]

    def advance(self) -> Token:
        """Consume and return the current token."""
        token = self.current
        self.pos += 1
        return token

    def error(self, message: str) -> SQLSyntaxError:
        """Build a SQLSyntaxError at the current position."""
        token = self.current
        return SQLSyntaxError(
            f"{message} (got {token.value!r} at position {token.position})",
            token.position,
        )

    def expect_keyword(self, *names: str) -> Token:
        """Consume one of the named keywords or fail."""
        if not self.current.is_keyword(*names):
            raise self.error(f"expected {' or '.join(names)}")
        return self.advance()

    def accept_keyword(self, *names: str) -> bool:
        """Consume one of the named keywords if present."""
        if self.current.is_keyword(*names):
            self.advance()
            return True
        return False

    def expect_punct(self, value: str) -> Token:
        """Consume the given punctuation or fail."""
        if self.current.type is not TokenType.PUNCT or \
                self.current.value != value:
            raise self.error(f"expected {value!r}")
        return self.advance()

    def accept_punct(self, value: str) -> bool:
        """Consume the given punctuation if present."""
        if self.current.type is TokenType.PUNCT and self.current.value == value:
            self.advance()
            return True
        return False

    def expect_ident(self) -> str:
        """Consume an identifier or fail."""
        if self.current.type is TokenType.IDENT:
            return self.advance().value
        # Allow non-reserved-looking keywords as identifiers where sensible.
        raise self.error("expected an identifier")

    # -- statements --------------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        """Parse one statement at the cursor."""
        token = self.current
        if token.is_keyword("CREATE"):
            return self._create()
        if token.is_keyword("ALTER"):
            return self._alter()
        if token.is_keyword("DROP"):
            return self._drop()
        if token.is_keyword("INSERT"):
            return self._insert()
        if token.is_keyword("UPDATE"):
            return self._update()
        if token.is_keyword("DELETE"):
            return self._delete()
        if token.is_keyword("SELECT"):
            return self._select()
        if token.is_keyword("BEGIN"):
            return self._begin()
        if token.is_keyword("COMMIT"):
            self.advance()
            self.accept_keyword("TRAN", "TRANSACTION")
            return ast.CommitTran()
        if token.is_keyword("ROLLBACK"):
            self.advance()
            self.accept_keyword("TRAN", "TRANSACTION")
            return ast.RollbackTran()
        raise self.error("expected a statement")

    def _create(self) -> ast.CreateTable:
        self.expect_keyword("CREATE")
        immortal = self.accept_keyword("IMMORTAL")
        self.expect_keyword("TABLE")
        name = self.expect_ident()
        self.expect_punct("(")
        columns = [self._column_spec()]
        while self.accept_punct(","):
            columns.append(self._column_spec())
        self.expect_punct(")")
        filegroup = None
        if self.accept_keyword("ON"):
            # The paper's example: "ON [PRIMARY]".
            if self.accept_punct("["):
                filegroup = self.expect_keyword("PRIMARY").value \
                    if self.current.is_keyword("PRIMARY") else self.expect_ident()
                self.expect_punct("]")
            else:
                filegroup = self.expect_ident()
        return ast.CreateTable(
            name=name, columns=tuple(columns),
            immortal=immortal, filegroup=filegroup,
        )

    def _column_spec(self) -> ast.ColumnSpec:
        name = self.expect_ident()
        if self.current.type is not TokenType.KEYWORD or \
                self.current.value not in _TYPE_KEYWORDS:
            raise self.error("expected a column type")
        type_name = self.advance().value
        size = None
        if self.accept_punct("("):
            if self.current.type is not TokenType.NUMBER:
                raise self.error("expected a size")
            size = int(self.advance().value)
            self.expect_punct(")")
        primary = False
        if self.accept_keyword("PRIMARY"):
            self.expect_keyword("KEY")
            primary = True
        return ast.ColumnSpec(name, type_name, size, primary)

    def _alter(self) -> ast.AlterTableEnableSnapshot:
        self.expect_keyword("ALTER")
        self.expect_keyword("TABLE")
        name = self.expect_ident()
        self.expect_keyword("ENABLE")
        self.expect_keyword("SNAPSHOT")
        return ast.AlterTableEnableSnapshot(name)

    def _drop(self) -> ast.DropTable:
        self.expect_keyword("DROP")
        self.expect_keyword("TABLE")
        return ast.DropTable(self.expect_ident())

    def _insert(self) -> ast.Insert:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_ident()
        columns: tuple[str, ...] | None = None
        if self.accept_punct("("):
            names = [self.expect_ident()]
            while self.accept_punct(","):
                names.append(self.expect_ident())
            self.expect_punct(")")
            columns = tuple(names)
        self.expect_keyword("VALUES")
        rows = [self._value_tuple()]
        while self.accept_punct(","):
            rows.append(self._value_tuple())
        return ast.Insert(table, columns, tuple(rows))

    def _value_tuple(self) -> tuple[ast.Literal, ...]:
        self.expect_punct("(")
        values = [self._literal()]
        while self.accept_punct(","):
            values.append(self._literal())
        self.expect_punct(")")
        return tuple(values)

    def _literal(self) -> ast.Literal:
        token = self.current
        if token.type is TokenType.NUMBER:
            self.advance()
            return float(token.value) if "." in token.value else int(token.value)
        if token.type is TokenType.STRING:
            self.advance()
            return token.value
        if token.is_keyword("NULL"):
            self.advance()
            return None
        if token.is_keyword("TRUE"):
            self.advance()
            return True
        if token.is_keyword("FALSE"):
            self.advance()
            return False
        if token.type is TokenType.OPERATOR and token.value == "<":
            raise self.error("expected a literal")
        raise self.error("expected a literal")

    def _update(self) -> ast.Update:
        self.expect_keyword("UPDATE")
        table = self.expect_ident()
        self.expect_keyword("SET")
        assignments = [self._assignment()]
        while self.accept_punct(","):
            assignments.append(self._assignment())
        where = self._optional_where()
        return ast.Update(table, tuple(assignments), where)

    def _assignment(self) -> tuple[str, ast.Literal]:
        column = self.expect_ident()
        if self.current.type is not TokenType.OPERATOR or \
                self.current.value != "=":
            raise self.error("expected '='")
        self.advance()
        return column, self._literal()

    def _delete(self) -> ast.Delete:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_ident()
        return ast.Delete(table, self._optional_where())

    def _select(self):
        self.expect_keyword("SELECT")
        if self.accept_keyword("HISTORY"):
            return self._select_history()
        columns: tuple[str, ...] | None
        if self.accept_punct("*"):
            columns = None
        else:
            names = [self.expect_ident()]
            while self.accept_punct(","):
                names.append(self.expect_ident())
            columns = tuple(names)
        self.expect_keyword("FROM")
        table = self.expect_ident()
        as_of = None
        if self.accept_keyword("AS"):
            self.expect_keyword("OF")
            if self.current.type is not TokenType.STRING:
                raise self.error("AS OF expects a quoted datetime")
            as_of = self.advance().value
        where = self._optional_where()
        order_by = None
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            column = self.expect_ident()
            descending = False
            if self.accept_keyword("DESC"):
                descending = True
            else:
                self.accept_keyword("ASC")
            order_by = ast.OrderBy(column, descending)
        limit = None
        if self.accept_keyword("LIMIT"):
            if self.current.type is not TokenType.NUMBER:
                raise self.error("LIMIT expects a number")
            limit = int(self.advance().value)
        return ast.Select(table, columns, where, as_of, order_by, limit)

    def _select_history(self) -> ast.SelectHistory:
        """SELECT HISTORY OF t WHERE k = v [FROM 'dt' TO 'dt']."""
        self.expect_keyword("OF")
        table = self.expect_ident()
        self.expect_keyword("WHERE")
        where = self._expr()
        t_low = t_high = None
        if self.accept_keyword("FROM"):
            if self.current.type is not TokenType.STRING:
                raise self.error("FROM expects a quoted datetime")
            t_low = self.advance().value
            self.expect_keyword("TO")
            if self.current.type is not TokenType.STRING:
                raise self.error("TO expects a quoted datetime")
            t_high = self.advance().value
        return ast.SelectHistory(table, where, t_low, t_high)

    def _begin(self) -> ast.BeginTran:
        self.expect_keyword("BEGIN")
        snapshot = self.accept_keyword("SNAPSHOT")
        self.expect_keyword("TRAN", "TRANSACTION")
        as_of = None
        if self.accept_keyword("AS"):
            self.expect_keyword("OF")
            if self.current.type is not TokenType.STRING:
                raise self.error("AS OF expects a quoted datetime")
            as_of = self.advance().value
        return ast.BeginTran(as_of=as_of, snapshot=snapshot)

    def _optional_where(self):
        if self.accept_keyword("WHERE"):
            return self._expr()
        return None

    # -- expressions --------------------------------------------------------------

    def _expr(self):
        return self._or_expr()

    def _or_expr(self):
        left = self._and_expr()
        while self.accept_keyword("OR"):
            left = ast.Or(left, self._and_expr())
        return left

    def _and_expr(self):
        left = self._primary_expr()
        while self.accept_keyword("AND"):
            left = ast.And(left, self._primary_expr())
        return left

    def _primary_expr(self):
        if self.accept_keyword("NOT"):
            return ast.Not(self._primary_expr())
        if self.accept_punct("("):
            inner = self._expr()
            self.expect_punct(")")
            return inner
        column = self.expect_ident()
        if self.current.type is not TokenType.OPERATOR:
            raise self.error("expected a comparison operator")
        op = self.advance().value
        if op == "!=":
            op = "<>"
        return ast.Comparison(column, op, self._literal())


def parse_statement(sql: str) -> ast.Statement:
    """Parse exactly one statement (a trailing semicolon is allowed)."""
    parser = _Parser(tokenize(sql))
    statement = parser.parse_statement()
    parser.accept_punct(";")
    if parser.current.type is not TokenType.EOF:
        raise parser.error("unexpected trailing input")
    return statement


def parse_script(sql: str) -> list[ast.Statement]:
    """Parse a semicolon-separated sequence of statements."""
    parser = _Parser(tokenize(sql))
    statements: list[ast.Statement] = []
    while parser.current.type is not TokenType.EOF:
        statements.append(parser.parse_statement())
        while parser.accept_punct(";"):
            pass
    return statements
