"""AST node types produced by the SQL parser."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

Literal = Union[int, float, str, bool, None]


# -- expressions -------------------------------------------------------------

@dataclass(frozen=True)
class Comparison:
    """``column <op> literal``."""
    column: str
    op: str              # one of = <> != < <= > >=
    value: Literal


@dataclass(frozen=True)
class And:
    """Logical conjunction of two predicates."""
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class Or:
    """Logical disjunction of two predicates."""
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class Not:
    """Logical negation of a predicate."""
    operand: "Expr"


Expr = Union[Comparison, And, Or, Not]


# -- statements -----------------------------------------------------------------

@dataclass(frozen=True)
class ColumnSpec:
    """One column definition inside CREATE TABLE."""
    name: str
    type_name: str           # normalized SQL type keyword
    size: int | None = None  # VARCHAR(n) — accepted, not enforced
    primary_key: bool = False


@dataclass(frozen=True)
class CreateTable:
    """``CREATE [IMMORTAL] TABLE name (columns…) [ON […]]``."""
    name: str
    columns: tuple[ColumnSpec, ...]
    immortal: bool = False
    filegroup: str | None = None  # the paper's "ON [PRIMARY]" — cosmetic


@dataclass(frozen=True)
class AlterTableEnableSnapshot:
    """``ALTER TABLE name ENABLE SNAPSHOT``."""
    name: str


@dataclass(frozen=True)
class DropTable:
    """``DROP TABLE name``."""
    name: str


@dataclass(frozen=True)
class Insert:
    """``INSERT INTO name [(cols)] VALUES (…), …``."""
    table: str
    columns: tuple[str, ...] | None
    rows: tuple[tuple[Literal, ...], ...]


@dataclass(frozen=True)
class Update:
    """``UPDATE name SET col = lit, … [WHERE expr]``."""
    table: str
    assignments: tuple[tuple[str, Literal], ...]
    where: Expr | None


@dataclass(frozen=True)
class Delete:
    """``DELETE FROM name [WHERE expr]``."""
    table: str
    where: Expr | None


@dataclass(frozen=True)
class OrderBy:
    """``ORDER BY column [ASC|DESC]``."""
    column: str
    descending: bool = False


@dataclass(frozen=True)
class Select:
    """``SELECT cols FROM name [AS OF '…'] [WHERE …] [ORDER BY …] [LIMIT n]``."""
    table: str
    columns: tuple[str, ...] | None   # None = '*'
    where: Expr | None = None
    as_of: str | None = None          # inline FROM-table AS OF
    order_by: OrderBy | None = None
    limit: int | None = None


@dataclass(frozen=True)
class SelectHistory:
    """Time travel: SELECT HISTORY OF t WHERE key = v [FROM 'dt' TO 'dt'].

    A non-standard extension (the paper notes time travel "requires
    changing the query processor", Section 4.2) returning one row per
    version, with ``_start_time`` and ``_deleted`` pseudo-columns.
    """

    table: str
    where: Expr
    t_low: str | None = None
    t_high: str | None = None


@dataclass(frozen=True)
class BeginTran:
    """``BEGIN [SNAPSHOT] TRAN [AS OF \"…\"]`` (the paper's Section 4.2 syntax)."""
    as_of: str | None = None     # the paper's AS OF clause (Section 4.2)
    snapshot: bool = False       # BEGIN SNAPSHOT TRAN


@dataclass(frozen=True)
class CommitTran:
    """``COMMIT TRAN``."""
    pass


@dataclass(frozen=True)
class RollbackTran:
    """``ROLLBACK TRAN``."""
    pass


Statement = Union[
    CreateTable,
    AlterTableEnableSnapshot,
    DropTable,
    Insert,
    Update,
    Delete,
    Select,
    SelectHistory,
    BeginTran,
    CommitTran,
    RollbackTran,
]
