"""A small SQL front end with the paper's syntax extensions (Section 4).

Two extensions distinguish Immortal DB's SQL surface:

* ``CREATE IMMORTAL TABLE …`` — the ``IMMORTAL`` keyword sets the catalog
  flag that enables persistent versions and AS OF queries (Section 4.1),
* ``BEGIN TRAN AS OF "8/12/2004 10:15:20"`` — a read-only transaction whose
  every read sees the database as of that time (Section 4.2).

The dialect also covers what the examples and benches need: column
definitions with PRIMARY KEY, INSERT/UPDATE/DELETE, SELECT with WHERE /
ORDER BY / LIMIT (and an inline ``AS OF`` on the FROM table), ``ALTER TABLE
… ENABLE SNAPSHOT``, and explicit transaction control including
``BEGIN SNAPSHOT TRAN``.

Use through :class:`~repro.sql.executor.Session`::

    session = Session(db)
    session.execute('CREATE IMMORTAL TABLE MovingObjects ('
                    'Oid SMALLINT PRIMARY KEY, LocationX INT, LocationY INT)')
    session.execute("INSERT INTO MovingObjects VALUES (1, 10, 20)")
    session.execute('BEGIN TRAN AS OF "2006-01-01 00:05:00"')
    rows = session.execute(
        "SELECT * FROM MovingObjects WHERE Oid < 10").rows
    session.execute("COMMIT TRAN")
"""

from repro.sql.lexer import Token, TokenType, tokenize
from repro.sql.parser import parse_statement, parse_script
from repro.sql.executor import Result, Session

__all__ = [
    "tokenize",
    "Token",
    "TokenType",
    "parse_statement",
    "parse_script",
    "Session",
    "Result",
]
