"""SQL executor: binds parsed statements to the engine.

A :class:`Session` holds at most one open transaction.  Statements outside
an explicit ``BEGIN TRAN … COMMIT TRAN`` bracket run autocommitted.  The
paper's historical transactions — ``BEGIN TRAN AS OF "…"`` — make every
read inside the bracket see the database as of that time.

Point lookups are recognized from WHERE clauses: an equality comparison on
the primary key becomes a B-tree point read instead of a scan.
"""

from __future__ import annotations

import datetime as _dt
import itertools
from dataclasses import dataclass, field
from typing import Iterable

from repro.clock import Timestamp
from repro.concurrency.transaction import Transaction, TxnMode
from repro.core.engine import ImmortalDB
from repro.core.rowcodec import ColumnType
from repro.core.table import Table
from repro.errors import SQLExecutionError
from repro.repair.quarantine import Degraded
from repro.sql import ast
from repro.sql.parser import parse_script, parse_statement

_TYPE_MAP = {
    "SMALLINT": ColumnType.SMALLINT,
    "INT": ColumnType.INT,
    "INTEGER": ColumnType.INT,
    "BIGINT": ColumnType.BIGINT,
    "FLOAT": ColumnType.FLOAT,
    "REAL": ColumnType.FLOAT,
    "DOUBLE": ColumnType.FLOAT,
    "TEXT": ColumnType.TEXT,
    "VARCHAR": ColumnType.TEXT,
    "CHAR": ColumnType.TEXT,
    "BOOL": ColumnType.BOOL,
    "BOOLEAN": ColumnType.BOOL,
}

_DATETIME_FORMATS = (
    "%m/%d/%Y %H:%M:%S",   # the paper's example: "8/12/2004 10:15:20"
    "%m/%d/%Y %H:%M",
    "%Y-%m-%d %H:%M:%S.%f",
    "%Y-%m-%d %H:%M:%S",
    "%Y-%m-%d %H:%M",
    "%Y-%m-%d",
)


def parse_sql_datetime(text: str) -> _dt.datetime:
    """Parse the datetime formats the AS OF clause accepts."""
    for fmt in _DATETIME_FORMATS:
        try:
            return _dt.datetime.strptime(text, fmt)
        except ValueError:
            continue
    try:
        return _dt.datetime.fromisoformat(text)
    except ValueError:
        raise SQLExecutionError(f"unrecognized datetime {text!r}") from None


@dataclass
class Result:
    """Outcome of one statement.

    ``degraded`` lists the quarantine-degraded reads the statement hit
    (:class:`~repro.repair.quarantine.Degraded` markers): the rows that
    *were* readable are still in ``rows``, and the service layer surfaces
    a non-empty list as a ``degraded`` protocol status rather than an
    error — partial answers beat refusals while a page awaits repair.
    """

    rows: list[dict] = field(default_factory=list)
    rowcount: int = 0
    message: str = ""
    degraded: list = field(default_factory=list)


def _evaluate(expr: ast.Expr | None, row: dict) -> bool:
    if expr is None:
        return True
    if isinstance(expr, ast.And):
        return _evaluate(expr.left, row) and _evaluate(expr.right, row)
    if isinstance(expr, ast.Or):
        return _evaluate(expr.left, row) or _evaluate(expr.right, row)
    if isinstance(expr, ast.Not):
        return not _evaluate(expr.operand, row)
    assert isinstance(expr, ast.Comparison)
    if expr.column not in row:
        raise SQLExecutionError(f"unknown column {expr.column!r}")
    actual = row[expr.column]
    wanted = expr.value
    if expr.op == "=":
        return actual == wanted
    if expr.op == "<>":
        return actual != wanted
    if actual is None or wanted is None:
        return False
    if expr.op == "<":
        return actual < wanted
    if expr.op == "<=":
        return actual <= wanted
    if expr.op == ">":
        return actual > wanted
    if expr.op == ">=":
        return actual >= wanted
    raise SQLExecutionError(f"unknown operator {expr.op!r}")


def _key_equality(expr: ast.Expr | None, key_column: str):
    """If the WHERE clause pins the primary key to one value, return it."""
    if isinstance(expr, ast.Comparison) and expr.op == "=" \
            and expr.column == key_column:
        return expr.value
    if isinstance(expr, ast.And):
        for side in (expr.left, expr.right):
            value = _key_equality(side, key_column)
            if value is not None:
                return value
    return None


def _key_range(expr: ast.Expr | None, key_column: str):
    """Extract an inclusive key range (low, high) implied by the WHERE clause.

    Only top-level AND-connected comparisons on the key column contribute
    (anything under OR/NOT cannot restrict soundly).  Returns (None, None)
    when unbounded; the caller still applies the full predicate afterwards,
    so the range only needs to be an over-approximation.
    """
    low = high = None

    def visit(node) -> None:
        nonlocal low, high
        if isinstance(node, ast.And):
            visit(node.left)
            visit(node.right)
            return
        if not isinstance(node, ast.Comparison) or node.column != key_column:
            return
        value = node.value
        if value is None:
            return
        if node.op in (">", ">="):
            if low is None or value > low:
                low = value
        elif node.op in ("<", "<="):
            if high is None or value < high:
                high = value
        elif node.op == "=":
            low = high = value

    visit(expr)
    return low, high


class Session:
    """One SQL session over an :class:`~repro.core.engine.ImmortalDB`."""

    def __init__(self, db: ImmortalDB) -> None:
        self.db = db
        self._txn: Transaction | None = None

    # -- public API ----------------------------------------------------------

    def execute(self, sql: str) -> Result:
        """Parse and execute a single statement."""
        return self._dispatch(parse_statement(sql))

    def execute_script(self, sql: str) -> list[Result]:
        """Execute a semicolon-separated script; returns one Result each."""
        return [self._dispatch(stmt) for stmt in parse_script(sql)]

    @property
    def in_transaction(self) -> bool:
        return self._txn is not None

    def close(self) -> None:
        """Release underlying resources (idempotent)."""
        if self._txn is not None:
            self.db.abort(self._txn)
            self._txn = None

    # -- transaction bracketing -------------------------------------------------

    def _begin(self, stmt: ast.BeginTran) -> Result:
        if self._txn is not None:
            raise SQLExecutionError("a transaction is already open")
        if stmt.as_of is not None:
            when = parse_sql_datetime(stmt.as_of)
            self._txn = self.db.begin(as_of=when)
            return Result(message=f"BEGIN TRAN AS OF {when.isoformat()}")
        mode = TxnMode.SNAPSHOT if stmt.snapshot else TxnMode.SERIALIZABLE
        self._txn = self.db.begin(mode)
        return Result(message=f"BEGIN TRAN ({mode.value})")

    def _commit(self) -> Result:
        if self._txn is None:
            raise SQLExecutionError("no open transaction")
        ts = self.db.commit(self._txn)
        self._txn = None
        suffix = f" at {ts}" if ts is not None else ""
        return Result(message=f"COMMIT{suffix}")

    def _rollback(self) -> Result:
        if self._txn is None:
            raise SQLExecutionError("no open transaction")
        self.db.abort(self._txn)
        self._txn = None
        return Result(message="ROLLBACK")

    def _run(self, fn) -> Result:
        """Run a statement body in the open txn or autocommit a fresh one."""
        if self._txn is not None:
            return fn(self._txn)
        txn = self.db.begin()
        try:
            result = fn(txn)
        except BaseException:
            self.db.abort(txn)
            raise
        self.db.commit(txn)
        return result

    # -- dispatch ------------------------------------------------------------------

    def _dispatch(self, stmt: ast.Statement) -> Result:
        if isinstance(stmt, ast.BeginTran):
            return self._begin(stmt)
        if isinstance(stmt, ast.CommitTran):
            return self._commit()
        if isinstance(stmt, ast.RollbackTran):
            return self._rollback()
        if isinstance(stmt, ast.CreateTable):
            return self._create_table(stmt)
        if isinstance(stmt, ast.AlterTableEnableSnapshot):
            self.db.enable_snapshot_isolation(stmt.name)
            return Result(message=f"ALTER TABLE {stmt.name} ENABLE SNAPSHOT")
        if isinstance(stmt, ast.DropTable):
            self.db.drop_table(stmt.name)
            return Result(message=f"DROP TABLE {stmt.name}")
        if isinstance(stmt, ast.Insert):
            return self._run(lambda txn: self._insert(txn, stmt))
        if isinstance(stmt, ast.Update):
            return self._run(lambda txn: self._update(txn, stmt))
        if isinstance(stmt, ast.Delete):
            return self._run(lambda txn: self._delete(txn, stmt))
        if isinstance(stmt, ast.Select):
            return self._select(stmt)
        if isinstance(stmt, ast.SelectHistory):
            return self._select_history(stmt)
        raise SQLExecutionError(f"unsupported statement {stmt!r}")

    # -- DDL ---------------------------------------------------------------------------

    def _create_table(self, stmt: ast.CreateTable) -> Result:
        columns: list[tuple[str, ColumnType]] = []
        key_column: str | None = None
        for spec in stmt.columns:
            try:
                ctype = _TYPE_MAP[spec.type_name]
            except KeyError:
                raise SQLExecutionError(
                    f"unsupported column type {spec.type_name}"
                ) from None
            columns.append((spec.name, ctype))
            if spec.primary_key:
                if key_column is not None:
                    raise SQLExecutionError("only one PRIMARY KEY is supported")
                key_column = spec.name
        if key_column is None:
            raise SQLExecutionError(
                f"table {stmt.name} needs a PRIMARY KEY column"
            )
        self.db.create_table(
            stmt.name, columns, key_column, immortal=stmt.immortal
        )
        kind = "IMMORTAL TABLE" if stmt.immortal else "TABLE"
        return Result(message=f"CREATE {kind} {stmt.name}")

    # -- DML ------------------------------------------------------------------------------

    def _table(self, name: str) -> Table:
        return self.db.table(name)

    def _insert(self, txn: Transaction, stmt: ast.Insert) -> Result:
        table = self._table(stmt.table)
        column_names = (
            list(stmt.columns)
            if stmt.columns is not None
            else [c.name for c in table.schema.columns]
        )
        count = 0
        for values in stmt.rows:
            if len(values) != len(column_names):
                raise SQLExecutionError(
                    f"INSERT has {len(values)} values for "
                    f"{len(column_names)} columns"
                )
            table.insert(txn, dict(zip(column_names, values)))
            count += 1
        return Result(rowcount=count, message=f"INSERT {count}")

    def _matching_keys(
        self,
        txn: Transaction,
        table: Table,
        where: ast.Expr | None,
        degraded: list,
    ) -> list:
        key_column = table.codec.key_column
        pinned = _key_equality(where, key_column)
        if pinned is not None:
            row = table.read(txn, pinned)
            if isinstance(row, Degraded):
                # The page is quarantined: we cannot prove the predicate,
                # so the key is not matched (and the caller reports it).
                degraded.append(row)
                return []
            if row is not None and _evaluate(where, row):
                return [pinned]
            return []
        low, high = _key_range(where, key_column)
        if low is not None or high is not None:
            candidates = table.scan_range_iter(txn, low, high)
        else:
            candidates = table.scan_iter(txn)
        keys = []
        for row in candidates:
            if isinstance(row, Degraded):
                degraded.append(row)
                continue
            if _evaluate(where, row):
                keys.append(row[key_column])
        return keys

    def _update(self, txn: Transaction, stmt: ast.Update) -> Result:
        table = self._table(stmt.table)
        updates = dict(stmt.assignments)
        degraded: list = []
        keys = self._matching_keys(txn, table, stmt.where, degraded)
        for key in keys:
            table.update(txn, key, updates)
        return Result(rowcount=len(keys), message=f"UPDATE {len(keys)}",
                      degraded=degraded)

    def _delete(self, txn: Transaction, stmt: ast.Delete) -> Result:
        table = self._table(stmt.table)
        degraded: list = []
        keys = self._matching_keys(txn, table, stmt.where, degraded)
        for key in keys:
            table.delete(txn, key)
        return Result(rowcount=len(keys), message=f"DELETE {len(keys)}",
                      degraded=degraded)

    # -- queries -----------------------------------------------------------------------------

    def _select_history(self, stmt: ast.SelectHistory) -> Result:
        """Time travel: one result row per version of the matched record."""
        table = self._table(stmt.table)
        key = _key_equality(stmt.where, table.codec.key_column)
        if key is None:
            raise SQLExecutionError(
                "SELECT HISTORY OF needs 'WHERE <primary key> = <value>'"
            )
        t_low = (
            self.db.to_timestamp(parse_sql_datetime(stmt.t_low))
            if stmt.t_low is not None else None
        )
        t_high = (
            self.db.to_timestamp(parse_sql_datetime(stmt.t_high))
            if stmt.t_high is not None else None
        )
        rows = []
        for ts, row in table.history(key, t_low=t_low, t_high=t_high):
            out = {
                "_start_time": ts.to_datetime().isoformat(sep=" "),
                "_deleted": row is None,
            }
            if row is not None:
                out.update(row)
            rows.append(out)
        return Result(rows=rows, rowcount=len(rows))

    def _select(self, stmt: ast.Select) -> Result:
        table = self._table(stmt.table)
        inline_as_of = (
            self.db.to_timestamp(parse_sql_datetime(stmt.as_of))
            if stmt.as_of is not None
            else None
        )

        def body(txn: Transaction) -> Result:
            degraded: list = []
            rows = self._select_rows(txn, table, stmt, inline_as_of, degraded)
            return Result(rows=rows, rowcount=len(rows), degraded=degraded)

        return self._run(body)

    def _select_rows(
        self,
        txn: Transaction,
        table: Table,
        stmt: ast.Select,
        inline_as_of: Timestamp | None,
        degraded: list,
    ) -> list[dict]:
        key_column = table.codec.key_column
        pinned = _key_equality(stmt.where, key_column)
        if inline_as_of is not None:
            if pinned is not None:
                row = table.read_as_of(inline_as_of, pinned)
                candidates: Iterable[dict] = [row] if row is not None else []
            else:
                candidates = table.scan_as_of_iter(inline_as_of)
        elif pinned is not None:
            row = table.read(txn, pinned)
            candidates = [row] if row is not None else []
        else:
            low, high = _key_range(stmt.where, key_column)
            if low is not None or high is not None:
                candidates = table.scan_range_iter(txn, low, high)
            else:
                candidates = table.scan_iter(txn)

        def keep(row) -> bool:
            if isinstance(row, Degraded):
                degraded.append(row)
                return False
            return _evaluate(stmt.where, row)

        filtered = (row for row in candidates if keep(row))
        if stmt.order_by is not None:
            # ORDER BY is a pipeline breaker: materialize, sort, then LIMIT.
            rows = sorted(
                filtered,
                key=lambda r: r[stmt.order_by.column],
                reverse=stmt.order_by.descending,
            )
            if stmt.limit is not None:
                rows = rows[: stmt.limit]
        elif stmt.limit is not None:
            # LIMIT pushdown: stop consuming the scan after `limit` rows, so
            # the streaming table iterators never touch the rest of the table.
            rows = list(itertools.islice(filtered, stmt.limit))
        else:
            rows = list(filtered)
        if stmt.columns is not None:
            rows = [{c: row[c] for c in stmt.columns} for row in rows]
        return rows
