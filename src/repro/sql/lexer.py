"""SQL lexer: a small regex-driven tokenizer.

Keywords are case-insensitive; identifiers keep their original case.
String literals accept both single and double quotes (the paper's AS OF
example uses double quotes: ``AS OF "8/12/2004 10:15:20"``).
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from repro.errors import SQLSyntaxError

KEYWORDS = {
    "CREATE", "IMMORTAL", "TABLE", "PRIMARY", "KEY", "ON",
    "ALTER", "ENABLE", "SNAPSHOT", "DROP",
    "INSERT", "INTO", "VALUES",
    "UPDATE", "SET",
    "DELETE", "FROM",
    "SELECT", "WHERE", "AND", "OR", "NOT",
    "ORDER", "BY", "ASC", "DESC", "LIMIT",
    "AS", "OF", "HISTORY", "TO",
    "BEGIN", "TRAN", "TRANSACTION", "COMMIT", "ROLLBACK",
    "NULL", "TRUE", "FALSE",
    "SMALLINT", "INT", "INTEGER", "BIGINT",
    "FLOAT", "REAL", "DOUBLE",
    "TEXT", "VARCHAR", "CHAR",
    "BOOL", "BOOLEAN",
}


class TokenType(enum.Enum):
    """Lexical category of a token."""
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""
    type: TokenType
    value: str
    position: int

    def is_keyword(self, *names: str) -> bool:
        """True if this token is one of the named keywords."""
        return self.type is TokenType.KEYWORD and self.value in names


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>--[^\n]*)
  | (?P<number>\d+\.\d+|\.\d+|\d+)
  | (?P<word>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<string>'(?:[^']|'')*'|"(?:[^"]|"")*")
  | (?P<operator><=|>=|<>|!=|=|<|>)
  | (?P<punct>[(),;*\[\]])
    """,
    re.VERBOSE,
)


def tokenize(sql: str) -> list[Token]:
    """Tokenize one or more SQL statements; ends with an EOF token."""
    tokens: list[Token] = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            raise SQLSyntaxError(
                f"unexpected character {sql[pos]!r} at position {pos}", pos
            )
        kind = match.lastgroup
        text = match.group()
        if kind == "word":
            upper = text.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, pos))
            else:
                tokens.append(Token(TokenType.IDENT, text, pos))
        elif kind == "number":
            tokens.append(Token(TokenType.NUMBER, text, pos))
        elif kind == "string":
            quote = text[0]
            body = text[1:-1].replace(quote * 2, quote)
            tokens.append(Token(TokenType.STRING, body, pos))
        elif kind == "operator":
            tokens.append(Token(TokenType.OPERATOR, text, pos))
        elif kind == "punct":
            tokens.append(Token(TokenType.PUNCT, text, pos))
        # whitespace and comments are skipped
        pos = match.end()
    tokens.append(Token(TokenType.EOF, "", len(sql)))
    return tokens
