"""An interactive SQL shell for Immortal DB.

Run::

    python -m repro.sql.repl [database-file]

Without an argument the database is in-memory (and vanishes on exit);
with a path it is file-backed and durable.  Statements end with ``;`` and
may span lines.  Meta-commands:

    \\t              list tables
    \\i <table>      storage inspection report
    \\check          run the full integrity checker
    \\now            show the simulated clock
    \\advance <ms>   advance the simulated clock
    \\q              quit
"""

from __future__ import annotations

import sys

from repro.core.engine import ImmortalDB
from repro.core.inspect import format_report, inspect_table
from repro.core.integrity import verify_integrity
from repro.errors import ImmortalDBError
from repro.sql.executor import Result, Session


def render_rows(result: Result) -> str:
    """Render a statement Result as an aligned text table."""
    if not result.rows:
        return result.message or f"({result.rowcount} row(s))"
    columns = list(result.rows[0])
    widths = {
        c: max(len(c), *(len(str(r.get(c))) for r in result.rows))
        for c in columns
    }
    header = " | ".join(c.ljust(widths[c]) for c in columns)
    sep = "-+-".join("-" * widths[c] for c in columns)
    body = "\n".join(
        " | ".join(str(row.get(c)).ljust(widths[c]) for c in columns)
        for row in result.rows
    )
    return f"{header}\n{sep}\n{body}\n({len(result.rows)} row(s))"


def run_meta(db: ImmortalDB, line: str) -> bool:
    """Handle a meta-command; returns False to quit."""
    parts = line.split()
    command = parts[0]
    if command == "\\q":
        return False
    if command == "\\t":
        for name, schema in sorted(db.catalog.tables.items()):
            kind = "immortal" if schema.immortal else (
                "snapshot" if schema.snapshot_enabled else "plain"
            )
            print(f"  {name}  ({kind}, key={schema.key_column})")
    elif command == "\\i" and len(parts) == 2:
        print(format_report(inspect_table(db.table(parts[1]))))
    elif command == "\\check":
        problems = verify_integrity(db)
        print("CLEAN" if not problems else "\n".join(problems))
    elif command == "\\now":
        print(db.now())
    elif command == "\\advance" and len(parts) == 2:
        db.advance_time(float(parts[1]))
        print(f"clock is now {db.now()}")
    else:
        print(f"unknown meta-command: {line}")
    return True


def main(argv: list[str] | None = None) -> int:
    r"""Entry point: read statements from stdin until \q or EOF."""
    args = sys.argv[1:] if argv is None else argv
    path = args[0] if args else None
    db = ImmortalDB(path)
    session = Session(db)
    where = path or "in memory"
    print(f"Immortal DB ({where}) — statements end with ';', \\q quits")
    buffer = ""
    try:
        while True:
            try:
                prompt = "....> " if buffer else "sql> "
                line = input(prompt)
            except EOFError:
                break
            stripped = line.strip()
            if not buffer and stripped.startswith("\\"):
                if not run_meta(db, stripped):
                    break
                continue
            buffer += line + "\n"
            if not stripped.endswith(";"):
                continue
            statement, buffer = buffer, ""
            try:
                for result in session.execute_script(statement):
                    print(render_rows(result))
            except ImmortalDBError as exc:
                print(f"error: {exc}")
    finally:
        session.close()
        db.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
