"""A thread-based transaction worker pool.

``WorkerPool(db, n_workers)`` drives many concurrent transactions against
one :class:`~repro.core.engine.ImmortalDB`:

* **Bounded admission**: :meth:`submit` enqueues a transaction body
  (a callable receiving the open transaction) onto a bounded queue and
  returns a :class:`TxnFuture`; when the queue is full, submit blocks —
  backpressure instead of unbounded buffering.
* **Conflict retry**: deadlock victimhood, lock conflicts, snapshot
  write-conflicts, and OCC validation failures abort the attempt and
  retry the body in a *fresh* transaction, after a seeded exponential
  backoff (deterministic per task, so reruns of a seeded workload retry
  on the same schedule).  Anything else fails the future with the
  original exception.
* **Group-commit batching**: with ``group_commit_window > 1`` commits are
  volatile until a force.  The pool's durability policy is
  *last-active-worker-flushes*: a worker that finishes a task while no
  other task is in flight forces the log.  One worker therefore behaves
  like a synchronous-commit client (a force per transaction); N busy
  workers share forces across whole batches — which is exactly the group
  commit amortization the paper's commit protocol is designed for.

The pool enables the engine's concurrent mode lazily (blocking locks,
engine latch, buffer/WAL/timestamp-manager mutexes), so it can wrap an
engine built with the defaults.
"""

from __future__ import annotations

import queue
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.concurrency.transaction import Transaction, TxnMode
from repro.errors import (
    ConcurrencyError,
    DeadlockError,
    LockConflictError,
    OCCValidationError,
    TimestampOrderError,
    WriteConflictError,
)

#: Conflicts a fresh attempt may well not hit again.
RETRYABLE_ERRORS = (
    DeadlockError,
    LockConflictError,
    OCCValidationError,
    TimestampOrderError,
    WriteConflictError,
)


class RetriesExhaustedError(ConcurrencyError):
    """A task kept conflicting past the pool's retry budget."""

    def __init__(self, message: str, *, attempts: int, last: Exception) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.last = last


class TxnFuture:
    """The pending result of one pooled transaction."""

    def __init__(self) -> None:
        self._completed = threading.Event()
        self._durable = threading.Event()
        self.result_value = None
        self.exception: BaseException | None = None
        self.retries = 0
        self.commit_ts = None
        self.tid: int | None = None    # TID of the attempt that committed

    def done(self) -> bool:
        return self._completed.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        return self._completed.wait(timeout)

    def result(self, timeout: float | None = None):
        """Block for the outcome; re-raise the task's failure if it failed."""
        if not self._completed.wait(timeout):
            raise TimeoutError("transaction still pending")
        if self.exception is not None:
            raise self.exception
        return self.result_value

    @property
    def durable(self) -> bool:
        """True once the commit record is known forced to the log."""
        return self._durable.is_set()

    def wait_durable(self, timeout: float | None = None) -> bool:
        return self._durable.wait(timeout)


@dataclass
class _Task:
    fn: Callable[[Transaction], object]
    future: TxnFuture
    rng: random.Random
    mode: TxnMode | None = None
    raw: bool = False   # call fn() directly: no txn bracket, no retry


_STOP = _Task(fn=lambda txn: None, future=TxnFuture(), rng=random.Random())


@dataclass
class PoolStats:
    submitted: int = 0
    committed: int = 0
    failed: int = 0
    retries: int = 0
    flushes: int = 0     # durability forces issued by the pool policy


class WorkerPool:
    """N worker threads executing queued transaction bodies against one DB."""

    def __init__(
        self,
        db,
        n_workers: int = 4,
        *,
        max_retries: int = 16,
        backoff_base_ms: float = 0.1,
        backoff_cap_ms: float = 5.0,
        seed: int = 0,
        queue_depth: int = 128,
    ) -> None:
        if n_workers < 1:
            raise ValueError("need at least one worker")
        db.enable_concurrency()
        self.db = db
        self.max_retries = max_retries
        self.backoff_base_ms = backoff_base_ms
        self.backoff_cap_ms = backoff_cap_ms
        self.seed = seed
        self.stats = PoolStats()
        self._queue: queue.Queue[_Task] = queue.Queue(maxsize=queue_depth)
        self._mu = threading.Lock()
        self._in_flight = 0
        self._seq = 0
        self._closed = False
        self._awaiting_ack: dict[int, TxnFuture] = {}
        self._prior_durable_hook = db.txn_mgr.durable_commit_hook
        db.txn_mgr.durable_commit_hook = self._on_durable_commit
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"txn-worker-{i}", daemon=True
            )
            for i in range(n_workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        fn: Callable[[Transaction], object],
        *,
        mode: TxnMode | None = None,
    ) -> TxnFuture:
        """Queue ``fn(txn)`` to run in its own transaction; returns a future.

        ``fn`` may run more than once (in a fresh transaction each time) if
        it conflicts, so it must not carry side effects outside the
        transaction.  Blocks while the admission queue is full.
        """
        if self._closed:
            raise RuntimeError("worker pool is closed")
        future = TxnFuture()
        with self._mu:
            seq = self._seq
            self._seq += 1
            self.stats.submitted += 1
        task = _Task(
            fn=fn,
            future=future,
            # Deterministic per task: reruns back off on the same schedule.
            rng=random.Random((self.seed << 24) ^ seq),
            mode=mode,
        )
        self._queue.put(task)
        return future

    def map(self, fns) -> list[TxnFuture]:
        return [self.submit(fn) for fn in fns]

    def submit_call(self, fn: Callable[[], object]) -> TxnFuture:
        """Queue a raw ``fn()`` call (no transaction bracket, no retry).

        The service layer routes session-bracketed statements through this:
        the body manages its own transaction state (a SQL session's open
        bracket spans many requests), so the pool must not wrap or rerun
        it — but the call still flows through the bounded admission queue
        and still participates in the last-active-worker flush policy.
        """
        if self._closed:
            raise RuntimeError("worker pool is closed")
        future = TxnFuture()
        with self._mu:
            self._seq += 1
            self.stats.submitted += 1
        task = _Task(fn=fn, future=future, rng=random.Random(), raw=True)
        self._queue.put(task)
        return future

    # -- lifecycle ------------------------------------------------------------

    def join(self) -> None:
        """Wait for every queued task, then force any unacked commits."""
        self._queue.join()
        if self.db.txn_mgr.unacked_commits:
            self.db.flush_commits()

    def close(self) -> None:
        """Drain, stop the workers, and restore the engine's durable hook."""
        if self._closed:
            return
        self.join()
        self._closed = True
        for _ in self._workers:
            self._queue.put(_STOP)
        for worker in self._workers:
            worker.join()
        self.db.txn_mgr.durable_commit_hook = self._prior_durable_hook

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- worker internals ---------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            task = self._queue.get()
            if task is _STOP:
                self._queue.task_done()
                return
            try:
                self._run_task(task)
            finally:
                with self._mu:
                    self._in_flight -= 1
                    last_active = self._in_flight == 0
                self._queue.task_done()
                # Durability policy: the last active worker forces the log,
                # acking every batched commit.  Busy pools reach this rarely
                # (batches form); an idle pool acks promptly.
                if last_active and self.db.txn_mgr.unacked_commits:
                    self.stats.flushes += 1
                    self.db.flush_commits()

    def _run_task(self, task: _Task) -> None:
        with self._mu:
            self._in_flight += 1
        future = task.future
        if task.raw:
            try:
                future.result_value = task.fn()
            except BaseException as exc:
                future.exception = exc
                self.stats.failed += 1
            future._durable.set()   # durability is the caller's contract
            future._completed.set()
            return
        last_error: Exception | None = None
        for attempt in range(self.max_retries + 1):
            if attempt:
                self.db.txn_mgr.txn_retries += 1
                self.stats.retries += 1
                future.retries += 1
                self._backoff(task.rng, attempt)
            txn = (
                self.db.begin(task.mode)
                if task.mode is not None
                else self.db.begin()
            )
            try:
                result = task.fn(txn)
                with self._mu:
                    self._awaiting_ack[txn.tid] = future
                ts = self.db.commit(txn)
            except RETRYABLE_ERRORS as exc:
                last_error = exc
                self._cleanup_attempt(txn)
                continue
            except BaseException as exc:
                self._cleanup_attempt(txn)
                future.exception = exc
                self.stats.failed += 1
                future._completed.set()
                return
            future.result_value = result
            future.commit_ts = ts
            future.tid = txn.tid
            if ts is None or self.db.txn_mgr.group_commit_window == 1:
                # Read-only transactions have nothing awaiting durability,
                # and without group commit the commit itself forced the log.
                with self._mu:
                    self._awaiting_ack.pop(txn.tid, None)
                future._durable.set()
            self.stats.committed += 1
            future._completed.set()
            return
        future.exception = RetriesExhaustedError(
            f"task still conflicting after {self.max_retries + 1} attempts "
            f"(last: {last_error!r})",
            attempts=self.max_retries + 1,
            last=last_error,
        )
        self.stats.failed += 1
        future._completed.set()

    def _cleanup_attempt(self, txn: Transaction) -> None:
        with self._mu:
            self._awaiting_ack.pop(txn.tid, None)
        if txn.state.value == "active":
            try:
                self.db.abort(txn)
            except Exception:
                pass

    def _backoff(self, rng: random.Random, attempt: int) -> None:
        delay_ms = min(
            self.backoff_cap_ms, self.backoff_base_ms * (2 ** (attempt - 1))
        )
        # Jittered (0.5x..1.5x) from the task's seeded RNG: deterministic,
        # but desynchronized across tasks so conflicting retries spread out.
        time.sleep(delay_ms * (0.5 + rng.random()) / 1000.0)

    def _on_durable_commit(self, txn: Transaction) -> None:
        # Called from whichever thread performed the physical force, with
        # the engine latch held — keep it tiny.
        with self._mu:
            future = self._awaiting_ack.pop(txn.tid, None)
        if future is not None:
            future._durable.set()
        if self._prior_durable_hook is not None:
            self._prior_durable_hook(txn)
