"""Deterministic interleaving harness for concurrent-execution tests.

Concurrency bugs hide in *specific* interleavings; stress tests hit them
by luck.  :class:`InterleaveScheduler` removes the luck: it runs a small
cast of transaction scripts on real threads under a **token discipline** —
exactly one script executes engine code at any moment, and every switch
between scripts is decided by the scheduler, deterministically from a
seed.  The same seed therefore replays the same schedule, byte for byte,
which is what makes a failing interleaving a regression test instead of a
flake.

Switch points come from three seams:

* **Explicit yields**: a script calls :meth:`ScriptContext.pause`, either
  handing the token to a named peer (scripted scenarios: "A updates k and
  pauses; B blocks behind A's lock") or letting the seeded RNG choose.
* **Blocking waits**: the lock manager and the engine latch call the
  scheduler's ``on_wait``/``on_wake``/``on_resume`` hooks.  ``on_wait``
  fires inside the lock monitor just before the thread parks, so the
  scheduler marks it BLOCKED and passes the token on *without blocking*;
  ``on_wake`` (called by the releaser that granted the lock) marks it
  READY; ``on_resume`` re-acquires the token outside the monitor before
  the thread re-enters engine code — including on the deadlock-victim
  raise path, so even an aborting victim runs under the token.
* **Failpoint crossings**: :meth:`attach_failpoints` registers a wildcard
  rule on a :class:`~repro.faults.failpoints.FailpointRegistry`; every
  ``fire()`` site in the engine becomes a potential preemption point,
  taken with ``switch_probability`` using the scheduler's *own* seeded
  RNG (the rule's ``probability`` stays ``None`` so the registry's RNG
  stream — and thus crash-exploration reproducibility — is untouched).

Lock ordering: the scheduler's mutex is a leaf — hooks may be invoked
while a caller holds the lock-manager monitor or the latch monitor, and
the scheduler never blocks inside a hook except in ``on_resume``/
``pause``, which park on a per-script event *outside* every monitor.
A schedule where every script is BLOCKED is a genuine deadlock the lock
manager failed to break; it surfaces as a timeout in :meth:`run`.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable

from repro.errors import ConcurrencyError


class _Script:
    """One participant: a named function run on its own thread."""

    __slots__ = (
        "name", "fn", "thread", "state", "go", "parked", "result", "error"
    )

    def __init__(self, name: str, fn: Callable) -> None:
        self.name = name
        self.fn = fn
        self.thread: threading.Thread | None = None
        self.state = "ready"        # ready | running | blocked | done
        self.go = threading.Event()  # token handed to this script
        self.parked = True           # thread is (about to be) waiting on go
        self.result = None
        self.error: BaseException | None = None


class ScriptContext:
    """What a script's function receives: its identity and yield points."""

    def __init__(self, scheduler: "InterleaveScheduler", script: _Script):
        self._scheduler = scheduler
        self._script = script

    @property
    def name(self) -> str:
        return self._script.name

    @property
    def db(self):
        return self._scheduler.db

    def pause(self, to: str | None = None) -> None:
        """Yield the token: to the named peer, or a seeded-RNG choice.

        A no-op when no other script is ready (there is nobody to run).
        Handing off to a BLOCKED or DONE peer is a script bug and raises.
        """
        self._scheduler._switch_from(self._script, to)

    def note(self, message: str) -> None:
        """Append a marker to the schedule trace (for test assertions)."""
        self._scheduler.trace.append(f"note {self.name}: {message}")


class InterleaveScheduler:
    """Seeded one-token-at-a-time scheduler over real threads."""

    def __init__(
        self,
        db,
        *,
        seed: int = 0,
        switch_probability: float = 0.0,
        timeout_s: float = 20.0,
    ) -> None:
        db.enable_concurrency()
        self.db = db
        self.seed = seed
        self.switch_probability = switch_probability
        self.timeout_s = timeout_s
        self.trace: list[str] = []
        self._rng = random.Random(seed)
        self._mu = threading.Lock()
        self._scripts: list[_Script] = []
        self._by_name: dict[str, _Script] = {}
        self._by_ident: dict[int, _Script] = {}
        self._current: _Script | None = None
        self._prior_lock_hooks = db.locks.wait_hooks
        self._prior_latch_hooks = db._latch.wait_hooks
        db.locks.wait_hooks = self
        db._latch.wait_hooks = self

    # -- cast assembly -------------------------------------------------------

    def spawn(self, name: str, fn: Callable) -> None:
        """Register script ``fn(ctx)`` under ``name`` (spawn order matters:
        the first spawned script receives the token first)."""
        if name in self._by_name:
            raise ValueError(f"duplicate script name {name!r}")
        script = _Script(name, fn)
        self._scripts.append(script)
        self._by_name[name] = script

    def attach_failpoints(self, registry) -> None:
        """Make every failpoint crossing a potential preemption point."""
        registry.on("*", self._failpoint_action)

    # -- execution -----------------------------------------------------------

    def run(
        self, *, timeout_s: float | None = None, raise_errors: bool = True
    ) -> dict:
        """Run every script to completion; returns ``{name: result}``.

        With ``raise_errors`` (the default) the first script error — in
        spawn order — is re-raised here; scripts are expected to catch
        the exceptions their scenario *intends* to provoke.
        """
        if not self._scripts:
            raise ValueError("no scripts spawned")
        timeout = self.timeout_s if timeout_s is None else timeout_s
        for script in self._scripts:
            script.thread = threading.Thread(
                target=self._script_main,
                args=(script,),
                name=f"script-{script.name}",
                daemon=True,
            )
        for script in self._scripts:
            script.thread.start()
        with self._mu:
            self._grant_locked(self._scripts[0])
        deadline = time.monotonic() + timeout
        for script in self._scripts:
            script.thread.join(max(0.0, deadline - time.monotonic()))
        stuck = [s.name for s in self._scripts if s.thread.is_alive()]
        if stuck:
            states = {s.name: s.state for s in self._scripts}
            raise ConcurrencyError(
                f"interleaving stuck after {timeout}s "
                f"(alive: {stuck}, states: {states})"
            )
        self.db.locks.wait_hooks = self._prior_lock_hooks
        self.db._latch.wait_hooks = self._prior_latch_hooks
        if raise_errors:
            for script in self._scripts:
                if script.error is not None:
                    raise script.error
        return {s.name: s.result for s in self._scripts}

    def _script_main(self, script: _Script) -> None:
        with self._mu:
            self._by_ident[threading.get_ident()] = script
        self._park(script)   # wait for the opening grant
        try:
            script.result = script.fn(ScriptContext(self, script))
        except BaseException as exc:
            script.error = exc
        finally:
            with self._mu:
                script.state = "done"
                self.trace.append(f"done {script.name}")
                if self._current is script:
                    self._current = None
                    self._schedule_next_locked()

    # -- wait-hook protocol (lock manager + latch call these) -----------------

    def on_wait(self) -> None:
        """Caller is about to park on a cv — monitor held, must not block."""
        with self._mu:
            script = self._by_ident.get(threading.get_ident())
            if script is None:
                return
            script.state = "blocked"
            script.parked = True
            self.trace.append(f"block {script.name}")
            if self._current is script:
                self._current = None
                self._schedule_next_locked()

    def on_wake(self, ident: int) -> None:
        """The releaser made ``ident`` runnable — monitor held."""
        with self._mu:
            script = self._by_ident.get(ident)
            if script is None or script.state != "blocked":
                return
            script.state = "ready"
            self.trace.append(f"wake {script.name}")
            if self._current is None:
                self._grant_locked(script)

    def on_resume(self) -> None:
        """Caller woke from its wait — outside every monitor; may block."""
        with self._mu:
            script = self._by_ident.get(threading.get_ident())
            if script is None or not script.parked:
                return   # never yielded the token (immediate-grant path)
            if script.state == "blocked":
                # Woken without an on_wake (wait timeout): self-promote.
                script.state = "ready"
            if self._current is None:
                self._grant_locked(script)
        self._park(script)

    # -- internals -----------------------------------------------------------

    def _switch_from(self, script: _Script, to: str | None) -> None:
        with self._mu:
            if self._current is not script:
                return
            if to is not None:
                target = self._by_name.get(to)
                if target is None:
                    raise ConcurrencyError(f"no script named {to!r}")
                if target is script:
                    return
                if target.state != "ready":
                    raise ConcurrencyError(
                        f"cannot hand the token to {to!r}: it is "
                        f"{target.state}"
                    )
                nxt = target
            else:
                candidates = [
                    s for s in self._scripts
                    if s is not script and s.state == "ready"
                ]
                if not candidates:
                    return   # nobody else to run; keep going
                nxt = (
                    candidates[0] if len(candidates) == 1
                    else self._rng.choice(candidates)
                )
            script.state = "ready"
            script.parked = True
            self._current = None
            self.trace.append(f"pause {script.name}")
            self._grant_locked(nxt)
        self._park(script)

    def _schedule_next_locked(self) -> None:
        candidates = [s for s in self._scripts if s.state == "ready"]
        if not candidates:
            return   # everyone blocked or done; a wake will grant directly
        nxt = (
            candidates[0] if len(candidates) == 1
            else self._rng.choice(candidates)
        )
        self._grant_locked(nxt)

    def _grant_locked(self, script: _Script) -> None:
        self._current = script
        script.state = "running"
        self.trace.append(f"run {script.name}")
        script.go.set()

    def _park(self, script: _Script) -> None:
        if not script.go.wait(timeout=self.timeout_s):
            raise ConcurrencyError(
                f"script {script.name!r} starved waiting for the token"
            )
        with self._mu:
            script.go.clear()
            script.parked = False

    def _failpoint_action(self, event) -> None:
        if self.switch_probability <= 0.0:
            return
        with self._mu:
            script = self._by_ident.get(threading.get_ident())
            if script is None or self._current is not script:
                return
            # The scheduler's own RNG stream: the registry's stays pristine.
            roll = self._rng.random()
        if roll < self.switch_probability:
            self._switch_from(script, None)
