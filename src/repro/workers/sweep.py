"""Seeded interleaving sweep: many schedules, one shadow oracle.

Each seed builds a fresh in-memory engine, spawns a small cast of
transaction scripts under the deterministic
:class:`~repro.workers.interleave.InterleaveScheduler` (preempting at
failpoint crossings with the scheduler's seeded RNG), then replays every
*committed* transaction single-threaded through a shadow oracle and
checks:

* **Serialization = timestamp order**: for every commit timestamp, the
  engine's ``read_as_of`` answers equal the oracle state built by
  applying commits in timestamp order.
* **No lost updates**: counter keys are only modified by read-modify-write
  increments, so the final counter total must equal the number of
  committed increments.
* **Structural integrity**: ``verify_integrity`` reports no problems.

A slice of the seeds (``seed % 4 == 0``) additionally runs a *forced
deadlock*: two scripts locking the same two keys in opposite order with a
directed handoff in between, so the sweep always exercises cycle
detection, victim abort, and post-abort drain — not just whatever
conflicts the random schedules happen to produce.

Run it::

    PYTHONPATH=src python -m repro.workers.sweep --seeds 100

Exit status is non-zero if any seed reports a violation.
"""

from __future__ import annotations

import argparse
import json
import random
import sys

from repro.core.engine import ImmortalDB
from repro.core.integrity import verify_integrity
from repro.core.rowcodec import ColumnType
from repro.errors import ConcurrencyError, DeadlockError
from repro.faults.failpoints import FailpointRegistry, installed
from repro.workers.interleave import InterleaveScheduler

#: Keys 0..N-1 are counters (RMW increments only); the rest take blind puts.
N_COUNTERS = 4
N_KEYS = 8


def _setup_db() -> tuple[ImmortalDB, object]:
    db = ImmortalDB(buffer_pages=64)
    table = db.create_table(
        "Sweep",
        columns=[("k", ColumnType.INT), ("v", ColumnType.INT)],
        key="k",
        immortal=True,
    )
    with db.transaction() as txn:
        for k in range(N_KEYS):
            table.insert(txn, {"k": k, "v": 0})
    return db, table


def _script(db, table, rng: random.Random, txns: int, record: dict):
    """A worker script: ``txns`` transactions of seeded conflicting ops."""

    def body(ctx):
        for _ in range(txns):
            txn = db.begin()
            writes: dict[int, int] = {}
            increments = 0
            try:
                for _ in range(rng.randint(1, 3)):
                    op = rng.random()
                    if op < 0.45:      # counter increment (lost-update bait)
                        k = rng.randrange(N_COUNTERS)
                        row = table.read(txn, k)
                        table.update(txn, k, {"v": row["v"] + 1})
                        writes[k] = row["v"] + 1
                        increments += 1
                    elif op < 0.65:    # two-key RMW, random order: deadlocks
                        ks = rng.sample(range(N_COUNTERS), 2)
                        for k in ks:
                            row = table.read(txn, k)
                            table.update(txn, k, {"v": row["v"] + 1})
                            writes[k] = row["v"] + 1
                            increments += 1
                    elif op < 0.85:    # blind put on a non-counter key
                        k = N_COUNTERS + rng.randrange(N_KEYS - N_COUNTERS)
                        value = rng.randrange(1_000_000)
                        table.update(txn, k, {"v": value})
                        writes[k] = value
                    else:              # plain read
                        table.read(txn, rng.randrange(N_KEYS))
                    if rng.random() < 0.3:
                        ctx.pause()
                ts = db.commit(txn)
                if writes:   # read-only commits have no timestamp
                    record["commits"].append((ts, dict(writes)))
                record["increments"] += increments
            except DeadlockError:
                record["deadlock_aborts"] += 1
                db.abort(txn)
            except ConcurrencyError:
                record["aborts"] += 1
                db.abort(txn)

    return body


def _run_forced_deadlock(db, table, record: dict) -> None:
    """A deterministic scripted round: two transactions lock counters 0
    and 1 in opposite orders with directed handoffs, guaranteeing a
    waits-for cycle.  The survivor's commit folds into ``record`` like
    any other; the victim's abort is counted."""

    def crossing(first: int, second: int, peer: str):
        def body(ctx):
            txn = db.begin()
            writes: dict[int, int] = {}
            try:
                row = table.read(txn, first)
                table.update(txn, first, {"v": row["v"] + 1})
                writes[first] = row["v"] + 1
                ctx.pause(to=peer)
                row = table.read(txn, second)
                table.update(txn, second, {"v": row["v"] + 1})
                writes[second] = row["v"] + 1
                ts = db.commit(txn)
                record["commits"].append((ts, writes))
                record["increments"] += len(writes)
            except DeadlockError:
                record["deadlock_aborts"] += 1
                db.abort(txn)

        return body

    sched = InterleaveScheduler(db)   # no preemption: pure directed script
    sched.spawn("DX", crossing(0, 1, "DY"))
    sched.spawn("DY", crossing(1, 0, "DX"))
    sched.run()


def run_one(
    seed: int,
    *,
    scripts: int = 3,
    txns: int = 4,
    switch_probability: float = 0.25,
) -> dict:
    """Run one seeded schedule; returns a report with any violations."""
    db, table = _setup_db()
    forced = seed % 4 == 0
    record = {
        "commits": [], "increments": 0, "deadlock_aborts": 0, "aborts": 0
    }

    if forced:
        _run_forced_deadlock(db, table, record)

    sched = InterleaveScheduler(
        db, seed=seed, switch_probability=switch_probability
    )
    registry = FailpointRegistry()
    sched.attach_failpoints(registry)
    for i in range(scripts):
        rng = random.Random((seed << 16) ^ (i + 1))
        sched.spawn(f"W{i}", _script(db, table, rng, txns, record))
    with installed(registry):
        sched.run()
    db.flush_commits()

    violations: list[str] = []
    stats = db.stats()

    if forced and stats["deadlocks_detected"] < 1:
        violations.append("forced deadlock was not detected")

    # -- shadow oracle: apply commits in timestamp order ---------------------
    commits = sorted(record["commits"], key=lambda item: item[0])
    timestamps = [ts for ts, _ in commits]
    if len(set(timestamps)) != len(timestamps):
        violations.append("duplicate commit timestamps")
    state = {k: 0 for k in range(N_KEYS)}
    for ts, writes in commits:
        state.update(writes)
        for k in range(N_KEYS):
            row = table.read_as_of(ts, k)
            got = row["v"] if row is not None else None
            if got != state[k]:
                violations.append(
                    f"as-of mismatch at ts={ts} key={k}: "
                    f"engine={got} oracle={state[k]}"
                )

    # -- lost updates: counter totals must equal committed increments --------
    with db.transaction() as txn:
        total = sum(table.read(txn, k)["v"] for k in range(N_COUNTERS))
    if total != record["increments"]:
        violations.append(
            f"lost updates: counters total {total}, "
            f"committed increments {record['increments']}"
        )

    problems = verify_integrity(db)
    violations.extend(f"integrity: {p}" for p in problems)

    return {
        "seed": seed,
        "forced_deadlock": forced,
        "commits": len(commits),
        "deadlock_aborts": record["deadlock_aborts"],
        "other_aborts": record["aborts"],
        "deadlocks_detected": stats["deadlocks_detected"],
        "lock_waits": stats["lock_waits"],
        "violations": violations,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="seeded interleaving sweep with shadow-oracle checks"
    )
    parser.add_argument("--seeds", type=int, default=100)
    parser.add_argument("--start", type=int, default=0)
    parser.add_argument("--scripts", type=int, default=3)
    parser.add_argument("--txns", type=int, default=4)
    parser.add_argument("--switch-prob", type=float, default=0.25)
    parser.add_argument("--json", action="store_true",
                        help="emit the full per-seed reports as JSON")
    args = parser.parse_args(argv)

    reports = []
    failed = 0
    for seed in range(args.start, args.start + args.seeds):
        report = run_one(
            seed,
            scripts=args.scripts,
            txns=args.txns,
            switch_probability=args.switch_prob,
        )
        reports.append(report)
        if report["violations"]:
            failed += 1
            print(f"seed {seed}: VIOLATIONS", file=sys.stderr)
            for v in report["violations"]:
                print(f"  - {v}", file=sys.stderr)

    summary = {
        "seeds": args.seeds,
        "failed": failed,
        "commits": sum(r["commits"] for r in reports),
        "deadlocks_detected": sum(r["deadlocks_detected"] for r in reports),
        "deadlock_aborts": sum(r["deadlock_aborts"] for r in reports),
        "lock_waits": sum(r["lock_waits"] for r in reports),
        "forced_deadlock_seeds": sum(
            1 for r in reports if r["forced_deadlock"]
        ),
    }
    if args.json:
        print(json.dumps({"summary": summary, "reports": reports}, indent=2))
    else:
        print(json.dumps(summary, indent=2))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
