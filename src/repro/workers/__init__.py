"""Concurrent transaction workers (opt-in; the engine default is serial).

:class:`WorkerPool` runs many transactions against one engine on real
threads, with blocking locks, deadlock-victim retry, and group-commit
batching of the durability forces.  :class:`InterleaveScheduler` runs a
small cast of transaction scripts one-at-a-time under a seeded scheduler,
so a specific interleaving — a write-write conflict, a deadlock cycle —
replays exactly.  :mod:`repro.workers.sweep` drives many seeded schedules
and checks every outcome against a single-threaded shadow oracle.
"""

from repro.workers.interleave import InterleaveScheduler, ScriptContext
from repro.workers.pool import RetriesExhaustedError, TxnFuture, WorkerPool

__all__ = [
    "InterleaveScheduler",
    "RetriesExhaustedError",
    "ScriptContext",
    "TxnFuture",
    "WorkerPool",
]
