"""Access methods: time splits, the B-tree primary index, the TSB-tree.

* :mod:`repro.access.timesplit` — the page time split of Section 3.3
  (Figure 3): the four-case assignment of versions between the current page
  and a new history page, delete-stub pruning, and the key-split-threshold
  policy that yields ≈ T·ln 2 single-timeslice utilization,
* :mod:`repro.access.btree` — the B+tree primary index whose leaves are the
  current data pages; full pages make room with a time split (immortal
  tables), snapshot-version pruning (conventional tables), and/or a key
  split,
* :mod:`repro.access.tsbtree` — the time-split B-tree index over key × time
  rectangles, giving direct access to the history page holding any
  (key, as-of-time) — the paper's "next step" (Section 7.2), built here as
  the indexed-as-of ablation.
"""

from repro.access.timesplit import (
    SplitOutcome,
    needs_key_split,
    time_split_page,
)
from repro.access.btree import BTree, BTreeIndexPage
from repro.access.tsbtree import TSBHistoryIndex, TSBIndexPage, Rect

__all__ = [
    "time_split_page",
    "needs_key_split",
    "SplitOutcome",
    "BTree",
    "BTreeIndexPage",
    "TSBHistoryIndex",
    "TSBIndexPage",
    "Rect",
]
