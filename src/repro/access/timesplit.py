"""Page time splits (Section 3.3, Figure 3).

A time split takes a full current page and the split time (the current
time) and produces a new *history* page, assigning record versions by the
paper's four cases:

1. versions whose **end time is before the split time** move to the history
   page;
2. versions whose **lifetime spans the split time** are copied to the
   history page and (redundantly) stay in the current page;
3. versions whose lifetime **starts after the split time** stay in the
   current page only;
4. **uncommitted** versions stay in the current page only.

Delete stubs earlier than the split time are removed from the current page
(their only purpose is to end the prior version, which now lives in the
history page).

The redundancy of case 2 is the load-bearing invariant: *every page contains
all the versions alive in its key × time region*, which is what makes direct
(TSB-tree) indexing of historical pages possible.

After the time split, if the current page's remaining utilization is still
above the threshold ``T`` (the paper suggests 70 %), a key split is also
needed; under usual assumptions single-timeslice utilization then converges
to ``T · ln 2``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clock import Timestamp
from repro.errors import AccessMethodError
from repro.storage.page import DataPage
from repro.storage.record import RecordVersion

DEFAULT_KEY_SPLIT_THRESHOLD = 0.70


@dataclass
class SplitOutcome:
    """Result of a time split: rebuilt current page + new history page."""

    current: DataPage
    history: DataPage
    moved: int = 0        # case 1 versions (history only)
    copied: int = 0       # case 2 versions (both pages)
    retained: int = 0     # case 3 + 4 versions (current only)
    stubs_dropped: int = 0

    @property
    def routing_interval(self) -> tuple[Timestamp, Timestamp, int]:
        """``(split_ts, end_ts, page_id)`` of the new history page.

        This is the one interval a time split appends to the leaf's routing
        chain; an as-of route cache can extend its memoized interval list
        with it instead of re-walking the whole chain.
        """
        return (self.history.split_ts, self.history.end_ts,
                self.history.page_id)


def time_split_page(
    page: DataPage,
    split_ts: Timestamp,
    history_page_id: int,
) -> SplitOutcome:
    """Perform the four-case split of ``page`` at ``split_ts``.

    Every *committed* version must already be timestamped (the caller runs
    the lazy-timestamping trigger first — "only if we know the timestamps
    for versions of records can we determine whether they belong on the
    history page").  The caller supplies the page id allocated for the
    history page; both returned pages are fresh in-memory objects, ready to
    be installed and logged as one atomic structure modification.
    """
    if page.is_history:
        raise AccessMethodError("history pages are read-only and never split")
    if split_ts <= page.split_ts:
        raise AccessMethodError(
            f"split time {split_ts} does not advance past page start "
            f"{page.split_ts}"
        )

    history = DataPage(
        history_page_id,
        is_history=True,
        page_size=page.page_size,
        table_id=page.table_id,
        immortal=page.immortal,
    )
    # The history page inherits the current page's old time range start and
    # is capped at the split time; it also inherits the link to the *older*
    # history page, extending the page chain (Section 3.2).
    history.split_ts = page.split_ts
    history.end_ts = split_ts
    history.history_page_id = page.history_page_id

    current = DataPage(
        page.page_id,
        page_size=page.page_size,
        table_id=page.table_id,
        immortal=page.immortal,
    )
    current.lsn = page.lsn
    current.split_ts = split_ts
    current.history_page_id = history_page_id
    current.next_leaf_id = page.next_leaf_id

    outcome = SplitOutcome(current=current, history=history)

    for key in page.keys():
        chain = list(page.chain(key))  # newest first
        tail_history_slot = page.continues_in_history(key)
        _split_chain(chain, tail_history_slot, split_ts, current,
                     history, outcome)
    return outcome


def _split_chain(
    chain: list[RecordVersion],
    tail_history_slot: int | None,
    split_ts: Timestamp,
    current: DataPage,
    history: DataPage,
    outcome: SplitOutcome,
) -> None:
    """Distribute one record's chain between the two pages."""
    current_part: list[RecordVersion] = []
    history_part: list[RecordVersion] = []

    # Walk newest → oldest.  A version's end time is the start time of its
    # successor (the previous element of the walk); the newest version's end
    # is open.  Uncommitted versions are "newer than any time", so they
    # never close their predecessor before the split time.
    end_open = True
    end_ts = Timestamp.MAX
    for version in chain:
        if not version.is_timestamped:
            # Case 4: uncommitted — current page only.
            if version.tid and not end_open:
                raise AccessMethodError(
                    "uncommitted version found below a committed one"
                )
            current_part.append(version.copy())
            outcome.retained += 1
            continue
        start_ts = version.timestamp
        if version.is_delete_stub and start_ts < split_ts:
            # Stubs before the split time leave the current page; in the
            # history page they end the version they deleted.
            history_part.append(version.copy())
            outcome.stubs_dropped += 1
        elif start_ts >= split_ts:
            # Case 3: born after the split time — current only.
            current_part.append(version.copy())
            outcome.retained += 1
        elif not end_open and end_ts <= split_ts:
            # Case 1: ended before the split time — history only.
            history_part.append(version.copy())
            outcome.moved += 1
        else:
            # Case 2: alive across the split time — copied to both.
            current_part.append(version.copy())
            history_part.append(version.copy())
            outcome.copied += 1
        end_open = False
        end_ts = start_ts

    if history_part:
        history.add_chain(history_part, history_slot=tail_history_slot)
    if current_part:
        if history_part:
            # The oldest current version continues in the new history page:
            # its VP becomes the record's slot number there (Section 3.1).
            slot = history.slot_of(current_part[0].key)
            assert slot is not None
            current.add_chain(current_part, history_slot=slot)
        elif tail_history_slot is not None:
            # No version moved now, but the chain already continued in an
            # older history page; that older page is still reachable via the
            # new history page's own chain link, so route through it only if
            # the new history page lacks the key.  Keep the original slot —
            # readers route by page time ranges, not by slot arithmetic.
            current.add_chain(current_part, history_slot=tail_history_slot)
        else:
            current.add_chain(current_part)


def needs_key_split(
    page: DataPage, threshold: float = DEFAULT_KEY_SPLIT_THRESHOLD
) -> bool:
    """True when storage utilization after a time split stays above ``T``.

    The check uses only the bytes a time split would leave behind (current
    versions and uncommitted ones); if those alone exceed the threshold the
    page must also key split, otherwise the very next updates would force
    another immediate time split.
    """
    from repro.storage.constants import DATA_HEADER_SIZE

    surviving = page.current_version_bytes() + DATA_HEADER_SIZE
    return surviving / page.page_size > threshold


def key_split_page(
    page: DataPage, right_page_id: int
) -> tuple[DataPage, DataPage, bytes]:
    """Split a current page's key range in half by content bytes.

    Whole version chains move with their key.  Both halves keep the page's
    time-range start and its link to the history page — the history page
    simply covers a wider key range than either child, which chain-based
    readers handle naturally (they check time ranges, not key bounds).

    Returns (left, right, separator_key); the separator is the lowest key of
    the right page.
    """
    keys = page.keys()
    if len(keys) < 2:
        raise AccessMethodError(
            f"page {page.page_id} has {len(keys)} key(s); cannot key split"
        )
    # Find the key boundary closest to half the record bytes.
    chain_bytes = {
        key: sum(v.size_on_page for v in page.chain(key)) for key in keys
    }
    total = sum(chain_bytes.values())
    running = 0
    cut = 1
    for i, key in enumerate(keys):
        running += chain_bytes[key]
        if running >= total / 2:
            cut = min(max(i + 1, 1), len(keys) - 1)
            break

    def build(page_id: int, subset: list[bytes]) -> DataPage:
        child = DataPage(
            page_id,
            page_size=page.page_size,
            table_id=page.table_id,
            immortal=page.immortal,
        )
        child.split_ts = page.split_ts
        child.end_ts = page.end_ts
        child.history_page_id = page.history_page_id
        for key in subset:
            chain = [v.copy() for v in page.chain(key)]
            child.add_chain(chain, history_slot=page.continues_in_history(key))
        return child

    left = build(page.page_id, keys[:cut])
    left.lsn = page.lsn
    right = build(right_page_id, keys[cut:])
    # Leaf sibling chain: left -> right -> old next.
    right.next_leaf_id = page.next_leaf_id
    left.next_leaf_id = right.page_id
    return left, right, keys[cut]
