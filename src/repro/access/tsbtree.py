"""TSB-tree: a time-split B-tree index over key × time rectangles.

The paper's prototype reaches historical versions by walking each leaf's
time-split page chain, and names the TSB-tree [20, 21] as the essential
next step: "we will index directly to the appropriate page, avoiding the
cost of searching down the page time split chain" (Section 4.2).  This
module implements that index so the repository can run the indexed-vs-chain
ablation (Abl 2 in DESIGN.md).

Structure: index nodes hold entries, each an axis-aligned rectangle in
(key × time) space plus a child page id.  A data page's rectangle is the
region whose live versions it is guaranteed to contain — the guarantee
established by the time split's case-2 redundancy.  Entries within a node
may overlap only by replication (an entry copied to both sides of a node
split), never by construction, so point search is unambiguous: any
containing entry leads to a page that holds the version sought.

Node splits follow Lomet & Salzberg: a full node is split **by time** when
most of its entries are historical (their time ranges are closed), else
**by key**; entries crossing the boundary are replicated to both sides.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clock import Timestamp
from repro.errors import AccessMethodError, PageFormatError
from repro.storage.buffer import BufferPool
from repro.storage.constants import COMMON_HEADER_SIZE, PAGE_SIZE, PageType
from repro.storage.page import DataPage, Page, register_page_codec


@dataclass(frozen=True)
class Rect:
    """Half-open rectangle in key × time space.

    ``key_high=None`` means "+infinity"; time bounds are always explicit
    (``Timestamp.MAX`` serves as the open end for current regions).
    """

    key_low: bytes
    key_high: bytes | None
    t_low: Timestamp
    t_high: Timestamp

    def contains_point(self, key: bytes, t: Timestamp) -> bool:
        if key < self.key_low:
            return False
        if self.key_high is not None and key >= self.key_high:
            return False
        return self.t_low <= t < self.t_high

    def contains_rect(self, other: "Rect") -> bool:
        if other.key_low < self.key_low:
            return False
        if self.key_high is not None:
            if other.key_high is None or other.key_high > self.key_high:
                return False
        return self.t_low <= other.t_low and other.t_high <= self.t_high

    def overlaps(self, other: "Rect") -> bool:
        if self.key_high is not None and other.key_low >= self.key_high:
            return False
        if other.key_high is not None and self.key_low >= other.key_high:
            return False
        return self.t_low < other.t_high and other.t_low < self.t_high

    @property
    def is_historical(self) -> bool:
        """A closed time range: the region can no longer grow."""
        return self.t_high < Timestamp.MAX


@dataclass
class TSBEntry:
    rect: Rect
    child_pid: int
    child_is_leaf: bool   # True: child is a history data page

    @property
    def size_on_page(self) -> int:
        key_high_len = 0 if self.rect.key_high is None else len(self.rect.key_high)
        return 2 + len(self.rect.key_low) + 3 + key_high_len + 24 + 4 + 1


_TSB_HEADER_FIXED = COMMON_HEADER_SIZE + 2  # entry count


def _encode_rect(rect: Rect) -> bytes:
    chunks = [len(rect.key_low).to_bytes(2, "big"), rect.key_low]
    if rect.key_high is None:
        chunks.append(b"\x00")
    else:
        chunks.append(b"\x01")
        chunks.append(len(rect.key_high).to_bytes(2, "big"))
        chunks.append(rect.key_high)
    chunks.append(rect.t_low.to_bytes())
    chunks.append(rect.t_high.to_bytes())
    return b"".join(chunks)


def _decode_rect(raw: bytes, pos: int) -> tuple[Rect, int]:
    klo_len = int.from_bytes(raw[pos : pos + 2], "big")
    pos += 2
    key_low = bytes(raw[pos : pos + klo_len])
    pos += klo_len
    has_high = raw[pos]
    pos += 1
    key_high: bytes | None = None
    if has_high:
        khi_len = int.from_bytes(raw[pos : pos + 2], "big")
        pos += 2
        key_high = bytes(raw[pos : pos + khi_len])
        pos += khi_len
    t_low = Timestamp.from_bytes(raw[pos : pos + 12])
    t_high = Timestamp.from_bytes(raw[pos + 12 : pos + 24])
    return Rect(key_low, key_high, t_low, t_high), pos + 24


class TSBIndexPage(Page):
    """One TSB-tree index node: its own rectangle plus child entries."""

    page_type = PageType.TSB_INDEX

    def __init__(
        self,
        page_id: int,
        rect: Rect | None = None,
        page_size: int = PAGE_SIZE,
    ) -> None:
        super().__init__(page_id)
        self.page_size = page_size
        self.rect = rect or Rect(b"", None, Timestamp.MIN, Timestamp.MAX)
        self.entries: list[TSBEntry] = []

    @property
    def used_bytes(self) -> int:
        own = len(_encode_rect(self.rect))
        return (
            _TSB_HEADER_FIXED
            + own
            + sum(e.size_on_page for e in self.entries)
        )

    def fits(self, entry: TSBEntry) -> bool:
        return self.used_bytes + entry.size_on_page <= self.page_size

    # -- codec --------------------------------------------------------------

    def _encode(self) -> bytes:
        """Build the fixed-size on-disk image (uncached)."""
        buf = bytearray(self.page_size)
        buf[0:COMMON_HEADER_SIZE] = self._common_header()
        body = bytearray()
        body += len(self.entries).to_bytes(2, "big")
        body += _encode_rect(self.rect)
        for entry in self.entries:
            body += _encode_rect(entry.rect)
            body += entry.child_pid.to_bytes(4, "big")
            body += b"\x01" if entry.child_is_leaf else b"\x00"
        end = COMMON_HEADER_SIZE + len(body)
        if end > self.page_size:
            raise PageFormatError(f"TSB node {self.page_id} overflows its image")
        buf[COMMON_HEADER_SIZE:end] = body
        return bytes(buf)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "TSBIndexPage":
        """Deserialize from an on-disk image."""
        page_id, page_type, flags, lsn = Page.read_common_header(raw)
        if page_type != PageType.TSB_INDEX:
            raise PageFormatError(f"not a TSB index page: type {page_type}")
        pos = COMMON_HEADER_SIZE
        count = int.from_bytes(raw[pos : pos + 2], "big")
        pos += 2
        rect, pos = _decode_rect(raw, pos)
        node = cls(page_id, rect, page_size=len(raw))
        node.header_flags = flags
        node.lsn = lsn
        for _ in range(count):
            entry_rect, pos = _decode_rect(raw, pos)
            child_pid = int.from_bytes(raw[pos : pos + 4], "big")
            child_is_leaf = bool(raw[pos + 4])
            pos += 5
            node.entries.append(TSBEntry(entry_rect, child_pid, child_is_leaf))
        return node


register_page_codec(PageType.TSB_INDEX, TSBIndexPage.from_bytes)


class TSBHistoryIndex:
    """Index of every history page a table's time splits have produced."""

    def __init__(
        self,
        buffer: BufferPool,
        table_id: int,
        root_pid: int | None = None,
    ) -> None:
        self.buffer = buffer
        self.table_id = table_id
        if root_pid is None:
            root = buffer.new_page(
                lambda pid: TSBIndexPage(pid, page_size=buffer.disk.page_size)
            )
            self.root_pid = root.page_id
        else:
            self.root_pid = root_pid
        self.searches = 0
        self.nodes_visited = 0
        # (key, ts) -> page id memo for repeated as-of lookups.  Leaf-entry
        # rectangles are immutable once inserted, so a positive answer can
        # never go stale; the memo is still cleared on every insert (and on
        # crash) for an obviously-sound invalidation story.
        self._search_memo: dict[tuple[bytes, Timestamp], int | None] = {}
        self._memo_limit = 8192

    # -- hooks called by the B-tree during splits --------------------------------

    def on_time_split(
        self,
        history_page: DataPage,
        key_low: bytes,
        key_high: bytes | None,
    ) -> list[Page]:
        """Register a freshly created history page; returns modified nodes."""
        rect = Rect(key_low, key_high, history_page.split_ts, history_page.end_ts)
        return self.insert(rect, history_page.page_id)

    def on_key_split(
        self, table_id: int, left_pid: int, right_pid: int, sep: bytes
    ) -> list[Page]:
        """Key splits touch only current pages; the history index is unchanged."""
        return []

    # -- core operations ---------------------------------------------------------------

    def _node(self, pid: int) -> TSBIndexPage:
        page = self.buffer.get_page(pid)
        if not isinstance(page, TSBIndexPage):
            raise AccessMethodError(f"page {pid} is not a TSB index node")
        return page

    def search(self, key: bytes, t: Timestamp) -> int | None:
        """Page id of the history page covering (key, t), or None."""
        self.searches += 1
        node = self._node(self.root_pid)
        while True:
            self.nodes_visited += 1
            hit: TSBEntry | None = None
            for entry in node.entries:
                if entry.rect.contains_point(key, t):
                    hit = entry
                    break
            if hit is None:
                return None
            if hit.child_is_leaf:
                return hit.child_pid
            node = self._node(hit.child_pid)

    def cached_search(
        self, key: bytes, t: Timestamp
    ) -> tuple[int | None, bool]:
        """Memoized :meth:`search`: (page id or None, answered-from-cache?)."""
        memo_key = (key, t)
        try:
            return self._search_memo[memo_key], True
        except KeyError:
            pass
        pid = self.search(key, t)
        if len(self._search_memo) >= self._memo_limit:
            self._search_memo.clear()
        self._search_memo[memo_key] = pid
        return pid, False

    def clear_cache(self) -> None:
        """Drop the search memo (crash / recovery)."""
        self._search_memo.clear()

    def insert(self, rect: Rect, page_id: int) -> list[Page]:
        """Add a history-page entry; returns every index node modified.

        Full nodes are fixed top-down (grow the root / split the first full
        node met), then the descent restarts — so a split only ever posts to
        a parent that was verified non-full earlier in the same descent.
        """
        self._search_memo.clear()
        modified: list[Page] = []
        entry = TSBEntry(rect, page_id, child_is_leaf=True)
        for _ in range(64):
            outcome = self._descend_for_insert(rect, entry, modified)
            if outcome is None:
                continue  # structure was fixed; restart the descent
            node = outcome
            node.entries.append(entry)
            self.buffer.mark_dirty_page(node)
            if node not in modified:
                modified.append(node)
            return modified
        raise AccessMethodError(
            f"TSB index {self.table_id}: insert did not converge"
        )

    def _descend_for_insert(
        self, rect: Rect, entry: TSBEntry, modified: list[Page]
    ) -> TSBIndexPage | None:
        """Descend to the insert target, fixing the first full node met.

        Returns the target node, or None when a structural fix was applied
        and the descent must restart.
        """
        node = self._node(self.root_pid)
        parent: TSBIndexPage | None = None
        while True:
            if not node.fits(entry):
                if parent is None:
                    self._grow_root(modified)
                else:
                    self._split_child(parent, node, modified)
                return None
            child: TSBIndexPage | None = None
            for e in node.entries:
                if not e.child_is_leaf and e.rect.contains_rect(rect):
                    child = self._node(e.child_pid)
                    break
            if child is None:
                return node
            parent = node
            node = child

    # -- node splits --------------------------------------------------------------------

    def _grow_root(self, modified: list[Page]) -> None:
        """Add a level while keeping the root's page id fixed."""
        root = self._node(self.root_pid)
        moved = self.buffer.new_page(
            lambda pid: TSBIndexPage(
                pid, root.rect, page_size=self.buffer.disk.page_size
            )
        )
        moved.entries = list(root.entries)
        new_root = TSBIndexPage(
            self.root_pid, root.rect, page_size=self.buffer.disk.page_size
        )
        new_root.entries = [TSBEntry(moved.rect, moved.page_id, False)]
        self.buffer.replace_page(new_root)
        self.buffer.mark_dirty_page(moved)
        self.buffer.mark_dirty_page(new_root)
        for page in (new_root, moved):
            if page not in modified:
                modified.append(page)

    def _split_child(
        self,
        parent: TSBIndexPage,
        node: TSBIndexPage,
        modified: list[Page],
    ) -> None:
        """Split ``node`` by time or key, posting the sibling to ``parent``.

        Entries crossing the boundary are replicated to both halves — the
        TSB-tree's index-term redundancy, mirroring the data pages' case-2
        redundancy.
        """
        historical = sum(1 for e in node.entries if e.rect.is_historical)
        boundary_t = None
        if historical * 3 >= len(node.entries) * 2:
            boundary_t = self._time_cut(node)
        if boundary_t is not None:
            low_rect = Rect(node.rect.key_low, node.rect.key_high,
                            node.rect.t_low, boundary_t)
            high_rect = Rect(node.rect.key_low, node.rect.key_high,
                             boundary_t, node.rect.t_high)

            def in_low(r: Rect) -> bool:
                return r.t_low < boundary_t

            def in_high(r: Rect) -> bool:
                return r.t_high > boundary_t
        else:
            boundary_k = self._key_cut(node)
            low_rect = Rect(node.rect.key_low, boundary_k,
                            node.rect.t_low, node.rect.t_high)
            high_rect = Rect(boundary_k, node.rect.key_high,
                             node.rect.t_low, node.rect.t_high)

            def in_low(r: Rect) -> bool:
                return r.key_low < boundary_k

            def in_high(r: Rect) -> bool:
                return r.key_high is None or r.key_high > boundary_k

        low_entries = [e for e in node.entries if in_low(e.rect)]
        high_entries = [e for e in node.entries if in_high(e.rect)]
        if len(low_entries) >= len(node.entries) or \
                len(high_entries) >= len(node.entries):
            raise AccessMethodError(
                f"TSB node {node.page_id}: split produced no progress "
                f"(every entry crosses the boundary)"
            )
        sibling = self.buffer.new_page(
            lambda pid: TSBIndexPage(
                pid, high_rect, page_size=self.buffer.disk.page_size
            )
        )
        sibling.entries = high_entries
        node.rect = low_rect
        node.entries = low_entries
        # Update the parent: shrink the old entry's rect, add the sibling.
        for i, e in enumerate(parent.entries):
            if e.child_pid == node.page_id and not e.child_is_leaf:
                parent.entries[i] = TSBEntry(low_rect, node.page_id, False)
                break
        parent.entries.append(TSBEntry(high_rect, sibling.page_id, False))
        self.buffer.mark_dirty_page(node)
        self.buffer.mark_dirty_page(sibling)
        self.buffer.mark_dirty_page(parent)
        for page in (node, sibling, parent):
            if page not in modified:
                modified.append(page)

    def _time_cut(self, node: TSBIndexPage) -> Timestamp | None:
        """Median closed end-time among historical entries, if it separates."""
        highs = sorted(
            e.rect.t_high for e in node.entries if e.rect.is_historical
        )
        if not highs:
            return None
        cut = highs[len(highs) // 2]
        if cut <= node.rect.t_low or cut >= node.rect.t_high:
            return None
        low = sum(1 for e in node.entries if e.rect.t_high <= cut)
        high = sum(1 for e in node.entries if e.rect.t_low >= cut)
        if low == 0 or high == 0:
            return None  # a side would keep everything: no progress
        return cut

    def _key_cut(self, node: TSBIndexPage) -> bytes:
        lows = sorted({e.rect.key_low for e in node.entries})
        if len(lows) < 2:
            raise AccessMethodError(
                f"TSB node {node.page_id}: cannot key split "
                f"(all entries share one key_low)"
            )
        return lows[len(lows) // 2]

    # -- inspection ----------------------------------------------------------------------

    def all_nodes(self) -> list[TSBIndexPage]:
        out: list[TSBIndexPage] = []
        stack = [self.root_pid]
        seen: set[int] = set()
        while stack:
            pid = stack.pop()
            if pid in seen:
                continue
            seen.add(pid)
            node = self._node(pid)
            out.append(node)
            for entry in node.entries:
                if not entry.child_is_leaf:
                    stack.append(entry.child_pid)
        return out

    def leaf_entry_count(self) -> int:
        return sum(
            1
            for node in self.all_nodes()
            for e in node.entries
            if e.child_is_leaf
        )
