"""B+tree primary index over current data pages.

The leaves of this tree are the engine's *current* data pages; history
pages hang off each leaf through the time-split page chain (Section 3.2)
and are never referenced by the B-tree itself — exactly the structure of
the Immortal DB prototype before its TSB-tree upgrade.

Making room in a full leaf follows the paper's policy (Section 3.3):

* **immortal table** — timestamp all committed versions, then time split at
  the current time; if the current-version utilization left behind still
  exceeds the threshold ``T``, key split as well.  If a time split would
  free nothing (every version current or uncommitted), go straight to the
  key split.
* **conventional table with snapshot isolation** — prune versions no active
  snapshot can see (Section 3's oldest-active-snapshot rule); key split if
  the page is still too full.
* **plain conventional table** — key split, as any B-tree would.

Structural discipline:

* The **root page id is fixed**: growing the tree moves the old root's
  content to a new page and turns the root page into an index node, so the
  catalog's stored root id never goes stale.
* Internal nodes are **split preemptively on the way down**, so a leaf split
  always posts its separator into a parent with guaranteed room.
* Every structure modification is logged as one atomic redo-only
  :class:`~repro.wal.records.MultiPageImage` carrying the after-images of
  all affected pages, so recovery can never observe half a split.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.clock import SimClock, Timestamp
from repro.errors import AccessMethodError, PageFormatError
from repro.storage.buffer import BufferPool
from repro.storage.constants import COMMON_HEADER_SIZE, PAGE_SIZE, PageType
from repro.storage.page import DataPage, Page, register_page_codec
from repro.storage.record import RecordVersion
from repro.access.timesplit import (
    DEFAULT_KEY_SPLIT_THRESHOLD,
    key_split_page,
    needs_key_split,
    time_split_page,
)
from repro.wal.log import LogManager
from repro.wal.records import MultiPageImage, SMOReason

_INDEX_HEADER = COMMON_HEADER_SIZE + 4  # count(2) + pad(2)

MAX_KEY_BYTES = 128
"""Upper bound on encoded primary-key size (checked by the table layer)."""

_MAX_SEP_COST = 4 + 2 + MAX_KEY_BYTES
"""Worst-case bytes one separator post can add to an index node."""


class BTreeIndexPage(Page):
    """Internal B+tree node: separators and child page ids.

    ``children[i]`` covers keys in ``[seps[i-1], seps[i])`` with the usual
    open ends; ``len(children) == len(seps) + 1``.
    """

    page_type = PageType.BTREE_INDEX

    def __init__(self, page_id: int, page_size: int = PAGE_SIZE) -> None:
        super().__init__(page_id)
        self.page_size = page_size
        self.seps: list[bytes] = []
        self.children: list[int] = []

    @property
    def used_bytes(self) -> int:
        return (
            _INDEX_HEADER
            + 4 * len(self.children)
            + sum(2 + len(s) for s in self.seps)
        )

    @property
    def is_full(self) -> bool:
        """No guaranteed room for one more separator of any legal size."""
        return self.used_bytes + _MAX_SEP_COST > self.page_size

    def child_index_for(self, key: bytes) -> int:
        return bisect_right(self.seps, key)

    # -- codec ------------------------------------------------------------

    def _encode(self) -> bytes:
        """Build the fixed-size on-disk image (uncached)."""
        buf = bytearray(self.page_size)
        buf[0:COMMON_HEADER_SIZE] = self._common_header()
        buf[COMMON_HEADER_SIZE : COMMON_HEADER_SIZE + 2] = len(
            self.children
        ).to_bytes(2, "big")
        pos = _INDEX_HEADER
        for i, child in enumerate(self.children):
            buf[pos : pos + 4] = child.to_bytes(4, "big")
            pos += 4
            if i < len(self.seps):
                sep = self.seps[i]
                buf[pos : pos + 2] = len(sep).to_bytes(2, "big")
                buf[pos + 2 : pos + 2 + len(sep)] = sep
                pos += 2 + len(sep)
        return bytes(buf)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "BTreeIndexPage":
        """Deserialize from an on-disk image."""
        page_id, page_type, flags, lsn = Page.read_common_header(raw)
        if page_type != PageType.BTREE_INDEX:
            raise PageFormatError(f"not a B-tree index page: type {page_type}")
        node = cls(page_id, page_size=len(raw))
        node.header_flags = flags
        node.lsn = lsn
        count = int.from_bytes(
            raw[COMMON_HEADER_SIZE : COMMON_HEADER_SIZE + 2], "big"
        )
        pos = _INDEX_HEADER
        for i in range(count):
            node.children.append(int.from_bytes(raw[pos : pos + 4], "big"))
            pos += 4
            if i < count - 1:
                sep_len = int.from_bytes(raw[pos : pos + 2], "big")
                node.seps.append(bytes(raw[pos + 2 : pos + 2 + sep_len]))
                pos += 2 + sep_len
        return node


register_page_codec(PageType.BTREE_INDEX, BTreeIndexPage.from_bytes)


@dataclass
class BTreeStats:
    """Split and prune counters for one B-tree."""
    time_splits: int = 0
    key_splits: int = 0
    index_splits: int = 0
    root_growths: int = 0
    prunes: int = 0
    versions_pruned: int = 0


class BTree:
    """The primary access structure for one table."""

    def __init__(
        self,
        buffer: BufferPool,
        log: LogManager,
        clock: SimClock,
        table_id: int,
        *,
        immortal: bool,
        root_pid: int | None = None,
        key_split_threshold: float = DEFAULT_KEY_SPLIT_THRESHOLD,
    ) -> None:
        self.buffer = buffer
        self.log = log
        self.clock = clock
        self.table_id = table_id
        self.immortal = immortal
        self.key_split_threshold = key_split_threshold
        self.stats = BTreeStats()
        # Wired by the engine:
        #   stamp_page(leaf) -> int: lazy-timestamping trigger before a split
        #   prune_page(leaf) -> (DataPage, int): snapshot GC for conventional
        #   history_index.on_time_split(...): TSB index maintenance (optional)
        #   route_cache: as-of route cache to notify on structure changes
        self.stamp_page: Callable[[DataPage], int] | None = None
        self.prune_page: Callable[[DataPage], tuple[DataPage, int]] | None = None
        self.history_index = None
        self.route_cache = None

        if root_pid is None:
            leaf = self.buffer.new_page(
                lambda pid: DataPage(
                    pid,
                    page_size=buffer.disk.page_size,
                    table_id=table_id,
                    immortal=immortal,
                )
            )
            self.root_pid = leaf.page_id
            self._log_smo(SMOReason.INDEX_POST, [leaf])
        else:
            self.root_pid = root_pid

    # -- navigation ---------------------------------------------------------

    def _page(self, pid: int) -> Page:
        return self.buffer.get_page(pid)

    def _descend(
        self, key: bytes
    ) -> tuple[list[tuple[BTreeIndexPage, int]], DataPage, bytes, bytes | None]:
        """Walk root→leaf; returns (path, leaf, key_low, key_high)."""
        path: list[tuple[BTreeIndexPage, int]] = []
        key_low = b""
        key_high: bytes | None = None
        node = self._page(self.root_pid)
        while isinstance(node, BTreeIndexPage):
            i = node.child_index_for(key)
            if i > 0:
                key_low = node.seps[i - 1]
            if i < len(node.seps):
                key_high = node.seps[i]
            path.append((node, i))
            node = self._page(node.children[i])
        if not isinstance(node, DataPage):
            raise AccessMethodError(
                f"B-tree {self.table_id}: leaf {node.page_id} has wrong type"
            )
        return path, node, key_low, key_high

    def search_leaf(self, key: bytes) -> DataPage:
        """The current page that holds (or would hold) ``key``."""
        return self._descend(key)[1]

    def leaf_bounds(self, key: bytes) -> tuple[DataPage, bytes, bytes | None]:
        _, leaf, low, high = self._descend(key)
        return leaf, low, high

    def leftmost_leaf(self) -> DataPage:
        return self._descend(b"")[1]

    def leaves(self) -> Iterator[DataPage]:
        """All current leaves in key order, via the sibling chain."""
        leaf: DataPage | None = self.leftmost_leaf()
        while leaf is not None:
            yield leaf
            next_pid = leaf.next_leaf_id
            if not next_pid:
                return
            nxt = self._page(next_pid)
            if not isinstance(nxt, DataPage):
                raise AccessMethodError(f"leaf chain hit non-leaf {next_pid}")
            leaf = nxt

    def leaves_with_bounds(
        self, start_key: bytes | None = None
    ) -> Iterator[tuple[DataPage, bytes, bytes | None]]:
        """(leaf, key_low, key_high) in key order, by index traversal.

        After key splits, sibling leaves share history pages; as-of scans
        need each leaf's key bounds to avoid double-counting shared history.

        ``start_key`` prunes the traversal: subtrees whose entire key range
        lies strictly below it are skipped (range scans start at the right
        leaf in logarithmic time instead of walking every leaf).
        """
        root = self._page(self.root_pid)
        yield from self._walk(root, b"", None, start_key)

    def _walk(
        self,
        node: Page,
        low: bytes,
        high: bytes | None,
        start_key: bytes | None = None,
    ) -> Iterator[tuple[DataPage, bytes, bytes | None]]:
        if isinstance(node, DataPage):
            yield node, low, high
            return
        assert isinstance(node, BTreeIndexPage)
        for i, child_pid in enumerate(node.children):
            child_low = node.seps[i - 1] if i > 0 else low
            child_high = node.seps[i] if i < len(node.seps) else high
            if start_key is not None and child_high is not None \
                    and child_high <= start_key:
                continue  # entire subtree below the range start
            yield from self._walk(
                self._page(child_pid), child_low, child_high, start_key
            )

    # -- insertion ------------------------------------------------------------

    def leaf_for_insert(self, record: RecordVersion) -> DataPage:
        """Find the leaf for ``record`` and guarantee it has room.

        May perform time splits, snapshot pruning, and key splits.  The
        caller then logs its VersionOp against the returned page id and
        applies the insert (WAL order: log first, then modify).
        """
        if len(record.key) > MAX_KEY_BYTES:
            raise AccessMethodError(
                f"key of {len(record.key)} bytes exceeds the "
                f"{MAX_KEY_BYTES}-byte limit"
            )
        for _ in range(8):
            path = self._descend_splitting(record.key)
            leaf = self._leaf_at(path, record.key)
            new_slot = leaf.slot_of(record.key) is None
            if leaf.fits(record, new_slot=new_slot):
                return leaf
            self._make_room(path, leaf, record.key)
        raise AccessMethodError(
            f"table {self.table_id}: could not make room for key "
            f"{record.key!r} after repeated splits"
        )

    def apply_insert(self, leaf: DataPage, record: RecordVersion, lsn: int) -> None:
        """Apply a logged insert to its leaf (sets page LSN, marks dirty)."""
        leaf.insert_version(record)
        leaf.lsn = lsn
        self.buffer.mark_dirty_page(leaf, lsn)

    # -- top-down splitting of index nodes -----------------------------------------

    def _descend_splitting(
        self, key: bytes
    ) -> list[tuple[BTreeIndexPage, int]]:
        """Descend for insert, pre-splitting full index nodes.

        Returns the index path; every node on it has room for one more
        separator, so a subsequent leaf key split cannot cascade.
        """
        root = self._page(self.root_pid)
        if isinstance(root, BTreeIndexPage) and root.is_full:
            self._grow_root_over_index(root)
            root = self._page(self.root_pid)
        path: list[tuple[BTreeIndexPage, int]] = []
        node = root
        while isinstance(node, BTreeIndexPage):
            i = node.child_index_for(key)
            child = self._page(node.children[i])
            if isinstance(child, BTreeIndexPage) and child.is_full:
                self._split_index_child(node, child)
                i = node.child_index_for(key)
                child = self._page(node.children[i])
            path.append((node, i))
            node = child
        return path

    def _leaf_at(
        self, path: list[tuple[BTreeIndexPage, int]], key: bytes
    ) -> DataPage:
        if path:
            node, i = path[-1]
            leaf = self._page(node.children[i])
        else:
            leaf = self._page(self.root_pid)
        if not isinstance(leaf, DataPage):
            raise AccessMethodError("descent did not reach a data page")
        return leaf

    def _grow_root_over_index(self, root: BTreeIndexPage) -> None:
        """Move a full index root's content aside; root page stays the root."""
        moved = self.buffer.new_page(
            lambda pid: BTreeIndexPage(pid, page_size=self.buffer.disk.page_size)
        )
        moved.seps = list(root.seps)
        moved.children = list(root.children)
        new_root = BTreeIndexPage(
            self.root_pid, page_size=self.buffer.disk.page_size
        )
        new_root.children = [moved.page_id]
        self.buffer.replace_page(new_root)
        self.stats.root_growths += 1
        self._log_smo(SMOReason.INDEX_POST, [new_root, moved])

    def _grow_root_over_leaf(self, leaf: DataPage) -> DataPage:
        """The root is a leaf that must split: push it down one level.

        The leaf's content moves to a new page id (redo of older VersionOps
        against the root id is fenced off by the page LSN), and the root
        page becomes an index node with the moved leaf as its only child.
        """
        moved = DataPage(
            self.buffer.disk.allocate(),
            is_history=leaf.is_history,
            page_size=leaf.page_size,
            table_id=leaf.table_id,
            immortal=leaf.immortal,
        )
        moved.split_ts = leaf.split_ts
        moved.end_ts = leaf.end_ts
        moved.history_page_id = leaf.history_page_id
        moved.next_leaf_id = leaf.next_leaf_id
        for key in leaf.keys():
            moved.add_chain(
                [v.copy() for v in leaf.chain(key)],
                history_slot=leaf.continues_in_history(key),
            )
        new_root = BTreeIndexPage(
            self.root_pid, page_size=self.buffer.disk.page_size
        )
        new_root.children = [moved.page_id]
        self.buffer.replace_page(new_root)
        self.buffer.replace_page(moved)
        if self.route_cache is not None:
            self.route_cache.invalidate(leaf.page_id)
        self.stats.root_growths += 1
        self._log_smo(SMOReason.INDEX_POST, [new_root, moved])
        return moved

    def _split_index_child(
        self, parent: BTreeIndexPage, child: BTreeIndexPage
    ) -> None:
        """Mid-split a full index child into the (non-full) parent."""
        mid = len(child.seps) // 2
        promoted = child.seps[mid]
        right = self.buffer.new_page(
            lambda pid: BTreeIndexPage(pid, page_size=self.buffer.disk.page_size)
        )
        right.seps = child.seps[mid + 1 :]
        right.children = child.children[mid + 1 :]
        child.seps = child.seps[:mid]
        child.children = child.children[: mid + 1]
        at = parent.child_index_for(promoted)
        parent.seps.insert(at, promoted)
        parent.children.insert(at + 1, right.page_id)
        self.stats.index_splits += 1
        self._log_smo(SMOReason.INDEX_POST, [parent, child, right])

    # -- making room in leaves ---------------------------------------------------------

    def _make_room(
        self,
        path: list[tuple[BTreeIndexPage, int]],
        leaf: DataPage,
        key: bytes,
    ) -> None:
        if self.immortal:
            self._make_room_immortal(path, leaf, key)
            return
        if self.prune_page is not None:
            pruned, dropped = self.prune_page(leaf)
            if dropped:
                self.stats.prunes += 1
                self.stats.versions_pruned += dropped
                self.buffer.replace_page(pruned)
                self._log_smo(SMOReason.OTHER, [pruned])
                # Pruning freed space; if plenty, no key split needed now.
                if pruned.free_bytes >= pruned.page_size // 4:
                    return
                leaf = pruned
        # Versions pinned by long-running snapshots can outgrow a page even
        # after pruning; spill them to a history page (a "version store"
        # spill — same time-split mechanism immortal tables use) before
        # resorting to a key split, which cannot help a single hot record.
        if self._try_time_split(path, leaf, key):
            return
        self._key_split(path, leaf)

    def _try_time_split(
        self,
        path: list[tuple[BTreeIndexPage, int]],
        leaf: DataPage,
        key: bytes,
    ) -> bool:
        """Attempt a space-freeing time split; False when it would not help."""
        if self.stamp_page is not None:
            self.stamp_page(leaf)
        split_ts = self._split_time(leaf)
        if split_ts is None:
            return False
        # A transaction may commit between the stamping pass and the
        # split-time draw; its versions would then be classified as
        # uncommitted (case 4) despite a commit time below split_ts.
        # Re-run the trigger until it finds nothing new to stamp — any
        # commit after the final draw carries a timestamp above split_ts
        # (the clock is monotonic), for which case 4 is correct.
        while self.stamp_page is not None and self.stamp_page(leaf):
            split_ts = self._split_time(leaf) or split_ts
        history_pid = self.buffer.disk.allocate()
        outcome = time_split_page(leaf, split_ts, history_pid)
        if outcome.moved == 0 and outcome.stubs_dropped == 0:
            return False
        self.stats.time_splits += 1
        self.buffer.replace_page(outcome.current)
        self.buffer.replace_page(outcome.history)
        if self.route_cache is not None:
            self.route_cache.on_time_split(outcome)
        affected: list[Page] = [outcome.current, outcome.history]
        if self.history_index is not None:
            key_low, key_high = self._bounds_from_path(path)
            affected.extend(
                self.history_index.on_time_split(
                    outcome.history, key_low, key_high
                )
            )
        self._log_smo(SMOReason.TIME_SPLIT, affected)
        return True

    def _make_room_immortal(
        self,
        path: list[tuple[BTreeIndexPage, int]],
        leaf: DataPage,
        key: bytes,
    ) -> None:
        # "When we time split a page … we timestamp all versions from
        # committed transactions" — _try_time_split runs that trigger, then
        # performs the four-case split of Section 3.3.  A time split that
        # frees nothing (all versions alive or uncommitted) falls through to
        # a key split.
        if not self._try_time_split(path, leaf, key):
            self._key_split(path, leaf)
            return
        current = self.search_leaf(key)
        if needs_key_split(current, self.key_split_threshold) \
                and len(current.keys()) > 1:
            path = self._descend_splitting(key)
            self._key_split(path, self._leaf_at(path, key))

    @staticmethod
    def _bounds_from_path(
        path: list[tuple[BTreeIndexPage, int]]
    ) -> tuple[bytes, bytes | None]:
        key_low = b""
        key_high: bytes | None = None
        for node, i in path:
            if i > 0:
                key_low = node.seps[i - 1]
            if i < len(node.seps):
                key_high = node.seps[i]
        return key_low, key_high

    def _split_time(self, leaf: DataPage) -> Timestamp | None:
        """The current time, if it advances past the page's range start."""
        now = self.clock.now()
        if now > leaf.split_ts:
            return now
        return None

    def _key_split(
        self, path: list[tuple[BTreeIndexPage, int]], leaf: DataPage
    ) -> None:
        if len(leaf.keys()) < 2:
            raise AccessMethodError(
                f"page {leaf.page_id} cannot make room: a single record's "
                f"chain exceeds the page (record too large)"
            )
        if not path:
            # The leaf is the root: push it down, keeping the root id fixed.
            leaf = self._grow_root_over_leaf(leaf)
            root = self._page(self.root_pid)
            assert isinstance(root, BTreeIndexPage)
            path = [(root, 0)]
        right_pid = self.buffer.disk.allocate()
        left, right, sep = key_split_page(leaf, right_pid)
        if self.route_cache is not None:
            self.route_cache.invalidate(leaf.page_id)
        self.stats.key_splits += 1
        self.buffer.replace_page(left)
        self.buffer.replace_page(right)
        parent, child_index = path[-1]
        parent.seps.insert(child_index, sep)
        parent.children.insert(child_index + 1, right.page_id)
        affected: list[Page] = [left, right, parent]
        if self.history_index is not None:
            affected.extend(
                self.history_index.on_key_split(
                    self.table_id, left.page_id, right.page_id, sep
                )
            )
        self._log_smo(SMOReason.KEY_SPLIT, affected)

    # -- logging -----------------------------------------------------------------

    def _log_smo(self, reason: SMOReason, pages: list[Page]) -> int:
        """Log one atomic multi-page image for a structure modification."""
        lsn = self.log.next_lsn
        seen: set[int] = set()
        unique: list[Page] = []
        for page in pages:
            if page.page_id in seen:
                continue
            seen.add(page.page_id)
            page.lsn = lsn
            unique.append(page)
        assigned = self.log.append(
            MultiPageImage(
                reason=reason,
                images=[(p.page_id, p.to_bytes()) for p in unique],
            )
        )
        assert assigned == lsn
        # mark_dirty_page, not mark_dirty: the admissions this SMO performed
        # (new siblings, history pages) may have evicted one of its own
        # unpinned pages already — re-admit the mutated object in that case.
        for page in unique:
            self.buffer.mark_dirty_page(page, lsn)
        return lsn
