"""Storage engine substrate: records, slotted pages, disk, buffer pool.

This package is the from-scratch replacement for the SQL Server storage
engine that the paper's prototype extends.  It provides:

* :mod:`repro.storage.record` — the record layout of Figure 1, with the
  14-byte versioning tail (VP, Ttime, SN) and delete stubs,
* :mod:`repro.storage.page` — 8 KB slotted pages with intra-page version
  chains and the two extra header fields (history pointer, split time) of
  Section 3.2,
* :mod:`repro.storage.disk` — page stores (in-memory and file-backed) with
  physical I/O accounting used by the benchmark cost model,
* :mod:`repro.storage.buffer` — a buffer pool with latching, dirty tracking,
  LRU eviction, and pre-flush hooks (the hook is how flush-triggered lazy
  timestamping is wired in, Section 2.2).
"""

from repro.storage.constants import PAGE_SIZE, PageType
from repro.storage.record import RecordVersion
from repro.storage.page import DataPage, Page, decode_page
from repro.storage.disk import DiskStats, FileDisk, InMemoryDisk, PageStore
from repro.storage.buffer import BufferPool, Frame

__all__ = [
    "PAGE_SIZE",
    "PageType",
    "RecordVersion",
    "Page",
    "DataPage",
    "decode_page",
    "PageStore",
    "InMemoryDisk",
    "FileDisk",
    "DiskStats",
    "BufferPool",
    "Frame",
]
