"""Record versions: the on-page record layout of Figure 1.

A record image is::

    flags        1 byte    (RecordFlag bits: delete stub, VP-in-history)
    key_len      2 bytes
    payload_len  2 bytes
    key          key_len bytes   (binary-comparable primary key image)
    payload      payload_len bytes
    --- 14-byte versioning tail (Figure 1b) ---
    VP           2 bytes   pointer to the previous version of the record
    Ttime        8 bytes   commit time of the writer, or its TID while
                           the record is not yet timestamped (high bit set)
    SN           4 bytes   sequence-number extension of the timestamp

The versioning tail reuses the same 14 bytes SQL Server spends on snapshot-
isolation versioning, so conventional tables pay no extra record overhead —
we keep that property by giving every record the tail regardless of whether
its table is immortal.

``VP`` is an *intra-page* pointer: the index of the previous version within
the same page's version area.  After a time split moves older versions to a
history page, ``VP`` holds the **slot number in the history page** instead
and the ``VP_IN_HISTORY`` flag is set (the page header's history pointer
identifies which page that is) — exactly the scheme of Section 3.1.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.clock import Timestamp, encode_tid_field, field_is_tid, field_tid
from repro.errors import PageFormatError
from repro.storage.constants import NO_PREVIOUS, RecordFlag, VERSIONING_TAIL_SIZE

_FIXED_OVERHEAD = 1 + 2 + 2 + VERSIONING_TAIL_SIZE  # flags + lengths + tail

_HEAD = struct.Struct(">BHH")   # flags, key_len, payload_len
_TAIL = struct.Struct(">HQI")   # vp, ttime_field, sn


@dataclass(slots=True)
class RecordVersion:
    """One version of one record, as stored in a page.

    Instances are mutable in exactly two ways after creation: lazy
    timestamping replaces a TID-marked ``ttime_field`` with the commit
    timestamp (:meth:`stamp`), and page splits rewrite ``vp``/``flags`` when
    chains are relinked.  Payload and key never change — updates create a
    *new* version (§1.2: old versions are immortal).
    """

    key: bytes
    payload: bytes
    flags: int = RecordFlag.NONE
    vp: int = NO_PREVIOUS
    ttime_field: int = 0
    sn: int = 0

    # -- classification ------------------------------------------------------

    @property
    def is_delete_stub(self) -> bool:
        return bool(self.flags & RecordFlag.DELETE_STUB)

    @property
    def vp_in_history(self) -> bool:
        return bool(self.flags & RecordFlag.VP_IN_HISTORY)

    @property
    def has_previous(self) -> bool:
        return self.vp != NO_PREVIOUS

    @property
    def is_timestamped(self) -> bool:
        """True once the Ttime field holds a real commit time, not a TID."""
        return not field_is_tid(self.ttime_field)

    @property
    def tid(self) -> int:
        """The writer's TID (only valid while not yet timestamped)."""
        return field_tid(self.ttime_field)

    @property
    def timestamp(self) -> Timestamp:
        """The version's start time (only valid once timestamped)."""
        if field_is_tid(self.ttime_field):
            raise ValueError(
                f"record for key {self.key!r} is not timestamped yet "
                f"(TID {field_tid(self.ttime_field)})"
            )
        return Timestamp(self.ttime_field, self.sn)

    # -- mutation ------------------------------------------------------------

    @classmethod
    def new(
        cls,
        key: bytes,
        payload: bytes,
        tid: int,
        *,
        delete_stub: bool = False,
    ) -> "RecordVersion":
        """Create a fresh, not-yet-timestamped version written by ``tid``."""
        flags = RecordFlag.DELETE_STUB if delete_stub else RecordFlag.NONE
        return cls(
            key=key,
            payload=b"" if delete_stub else payload,
            flags=int(flags),
            vp=NO_PREVIOUS,
            ttime_field=encode_tid_field(tid),
            sn=0,
        )

    def stamp(self, ts: Timestamp) -> None:
        """Replace the TID marking with the transaction's commit timestamp."""
        if self.is_timestamped:
            raise ValueError(f"record for key {self.key!r} is already timestamped")
        self.ttime_field = ts.ttime
        self.sn = ts.sn

    def copy(self) -> "RecordVersion":
        """A detached copy (used when a time split replicates spanning versions)."""
        return RecordVersion(
            key=self.key,
            payload=self.payload,
            flags=self.flags,
            vp=self.vp,
            ttime_field=self.ttime_field,
            sn=self.sn,
        )

    # -- sizing / codec ------------------------------------------------------

    @property
    def size_on_page(self) -> int:
        """Bytes this version occupies in a page's record area."""
        return _FIXED_OVERHEAD + len(self.key) + len(self.payload)

    def to_bytes(self) -> bytes:
        """Serialize to the fixed-size on-disk image."""
        if len(self.key) > 0xFFFF or len(self.payload) > 0xFFFF:
            raise PageFormatError("key or payload exceeds 64 KiB record limit")
        return b"".join(
            (
                _HEAD.pack(self.flags, len(self.key), len(self.payload)),
                self.key,
                self.payload,
                _TAIL.pack(self.vp, self.ttime_field, self.sn),
            )
        )

    def write_into(self, buf: bytearray, offset: int) -> int:
        """Serialize directly into a page buffer; returns the next offset."""
        if len(self.key) > 0xFFFF or len(self.payload) > 0xFFFF:
            raise PageFormatError("key or payload exceeds 64 KiB record limit")
        _HEAD.pack_into(buf, offset, self.flags, len(self.key), len(self.payload))
        body = offset + _HEAD.size
        tail = body + len(self.key) + len(self.payload)
        buf[body : body + len(self.key)] = self.key
        buf[body + len(self.key) : tail] = self.payload
        _TAIL.pack_into(buf, tail, self.vp, self.ttime_field, self.sn)
        return tail + _TAIL.size

    @classmethod
    def from_bytes(
        cls, data: bytes | memoryview, offset: int = 0
    ) -> tuple["RecordVersion", int]:
        """Decode one record image at ``offset``; return (record, next_offset)."""
        versions, end = decode_versions(data, offset, 1)
        return versions[0], end


def decode_versions(
    data: bytes | memoryview, offset: int, count: int
) -> tuple[list[RecordVersion], int]:
    """Bulk-decode ``count`` consecutive record images starting at ``offset``.

    This is the hot loop of every page reload, which eviction pressure turns
    into a per-operation cost: one memoryview over the whole image (so the
    head/tail field reads never copy), the precompiled codecs hoisted into
    locals, and a single try/except around the loop instead of one per
    record.  Exactly one ``bytes()`` copy is made per key and per payload —
    those outlive the page image, so they must own their storage.

    The explicit length checks are load-bearing, not redundant: slicing a
    memoryview past its end *clamps* silently instead of raising, so
    ``len(key) != key_len`` is the truncation detection for the variable-
    length fields (the struct codecs still raise for the fixed fields).
    """
    view = memoryview(data)
    versions: list[RecordVersion] = []
    append = versions.append
    head_unpack = _HEAD.unpack_from
    tail_unpack = _TAIL.unpack_from
    head_size = _HEAD.size
    tail_size = _TAIL.size
    make = RecordVersion
    try:
        for _ in range(count):
            flags, key_len, payload_len = head_unpack(view, offset)
            body = offset + head_size
            split = body + key_len
            tail = split + payload_len
            key = bytes(view[body:split])
            payload = bytes(view[split:tail])
            if len(key) != key_len or len(payload) != payload_len:
                raise PageFormatError("truncated record image")
            vp, ttime_field, sn = tail_unpack(view, tail)
            offset = tail + tail_size
            append(make(key, payload, flags, vp, ttime_field, sn))
    except struct.error as exc:
        raise PageFormatError("truncated record image") from exc
    return versions, offset
