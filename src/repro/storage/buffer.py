"""Buffer pool: page cache with latching, dirty tracking, and flush hooks.

The buffer pool is where two Immortal DB protocols are anchored:

* **Flush-triggered lazy timestamping** (Section 2.2): "just before a cached
  page is flushed to disk, we check whether the page contains any
  non-timestamped records from committed transactions; if so, we timestamp
  them."  The timestamp manager registers a *pre-flush hook* that runs on
  every page write-back.
* **WAL rule**: before a dirty page reaches disk, the log must be forced up
  to the page's LSN.  The log registers a *log-force hook* for this.

Latching is bookkeeping rather than blocking — the simulation is
single-threaded — but conflicting acquisitions raise :exc:`LatchError`, so
tests can assert the engine follows the paper's latch discipline (exclusive
latch to stamp a record, shared latch for a plain read of a stamped one).
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, Iterator

_NO_MUTEX = nullcontext()

from repro.errors import (
    BufferPoolError,
    LatchError,
    StorageError,
    TransientIOError,
)
from repro.faults.failpoints import fire
from repro.storage.disk import PageStore
from repro.storage.page import Page, decode_page


@dataclass
class BufferStats:
    """Buffer pool hit/miss/eviction counters."""
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    page_flushes: int = 0

    def snapshot(self) -> "BufferStats":
        """An independent copy of the current counter values."""
        return BufferStats(self.hits, self.misses, self.evictions, self.page_flushes)


@dataclass
class Frame:
    """One cached page plus its cache metadata."""

    page: Page
    dirty: bool = False
    rec_lsn: int = 0          # LSN when first dirtied since last clean (for DPT)
    pin_count: int = 0
    share_latches: int = 0
    exclusive_latch: bool = False


class BufferPool:
    """LRU page cache over a :class:`~repro.storage.disk.PageStore`."""

    def __init__(
        self,
        disk: PageStore,
        capacity: int = 1024,
    ) -> None:
        if capacity < 4:
            raise ValueError("buffer pool needs at least 4 frames")
        self.disk = disk
        self.capacity = capacity
        self.stats = BufferStats()
        self._frames: OrderedDict[int, Frame] = OrderedDict()
        # Hooks. pre_flush_hooks run on the in-memory page right before it is
        # serialized to disk; log_force is called with the page LSN (WAL rule).
        self.pre_flush_hooks: list[Callable[[Page], None]] = []
        self.log_force: Callable[[int], None] | None = None
        # Media-fault seam: when a miss reads a page that fails verification
        # (bad checksum, undecodable, wrong id), the handler may return a
        # repaired page (admitted as a clean frame) instead of letting the
        # error propagate.  Set by the media-recovery manager.
        self.fault_handler: Callable[[int, Exception], Page] | None = None
        # Concurrent mode installs an RLock here; None (the default) keeps
        # the single-threaded fast path lock-free.  The engine latch already
        # serializes table operations — this mutex additionally covers
        # direct buffer calls (flushes, scrub probes) from other threads.
        self.mutex = None

    # -- fetching ---------------------------------------------------------------

    def get_page(self, page_id: int) -> Page:
        """Fetch a page, reading it from disk on a miss."""
        with self.mutex or _NO_MUTEX:
            return self._get_page_locked(page_id)

    def _get_page_locked(self, page_id: int) -> Page:
        frame = self._frames.get(page_id)
        if frame is not None:
            self.stats.hits += 1
            self._frames.move_to_end(page_id)
            return frame.page
        self.stats.misses += 1
        raw: bytes | None
        try:
            raw = self.disk.read_page(page_id)
        except TransientIOError:
            # Transient by contract: the stored image is fine, a repair
            # would be wrong.  The retry policy already ran at the disk
            # seam; let the caller see the exhaustion.
            raise
        except StorageError as exc:
            if self.fault_handler is None:
                raise
            raw, fault = None, exc
        if raw is not None:
            try:
                page = decode_page(raw)
                if page.page_id != page_id:
                    raise BufferPoolError(
                        f"page {page_id} image claims to be page "
                        f"{page.page_id}"
                    )
            except StorageError as exc:
                # An all-zero image is an allocated-but-never-written page,
                # not media damage — callers rely on the plain error (the
                # PTT rebuilds an empty node from exactly this failure).
                if self.fault_handler is None or not any(raw):
                    raise
                raw, fault = None, exc
        if raw is None:
            page = self.fault_handler(page_id, fault)
            # Repairing may have faulted the page in reentrantly (e.g. the
            # PTT refill reads through the buffer); keep that frame — it may
            # already carry newer, dirty state.
            frame = self._frames.get(page_id)
            if frame is not None:
                return frame.page
        self._admit(Frame(page))
        return page

    def new_page(self, factory: Callable[[int], Page]) -> Page:
        """Allocate a fresh page id on disk and cache ``factory(page_id)``."""
        with self.mutex or _NO_MUTEX:
            page_id = self.disk.allocate()
            page = factory(page_id)
            if page.page_id != page_id:
                raise BufferPoolError("factory ignored the allocated page id")
            frame = Frame(page, dirty=True, rec_lsn=page.lsn)
            self._admit(frame)
            return page

    def replace_page(self, page: Page) -> None:
        """Swap in a rebuilt in-memory image for an existing page id.

        Page splits rebuild the current page object from scratch; the new
        object takes over the old frame (same page id) and is dirty.
        """
        with self.mutex or _NO_MUTEX:
            frame = self._frames.get(page.page_id)
            if frame is None:
                if not self.disk.exists(page.page_id):
                    raise BufferPoolError(f"page {page.page_id} does not exist")
                frame = Frame(page)
                self._admit(frame)
            else:
                frame.page = page
            if not frame.dirty:
                frame.rec_lsn = page.lsn
            frame.dirty = True

    def contains(self, page_id: int) -> bool:
        return page_id in self._frames

    # -- dirty / flush -----------------------------------------------------------

    def mark_dirty(self, page_id: int, rec_lsn: int | None = None) -> None:
        with self.mutex or _NO_MUTEX:
            frame = self._require_frame(page_id)
            # mark_dirty means "this page's content changed"; mutations that
            # go through an attribute the page object can see already
            # invalidated the encode cache, but in-place record mutations
            # (stamping) do not, so the dirty notification doubles as the
            # cache invalidation point.
            frame.page.touch()
            if not frame.dirty:
                frame.dirty = True
                frame.rec_lsn = (
                    rec_lsn if rec_lsn is not None else frame.page.lsn
                )
            self._frames.move_to_end(page_id)

    def is_dirty(self, page_id: int) -> bool:
        frame = self._frames.get(page_id)
        return frame.dirty if frame else False

    def dirty_page_table(self) -> dict[int, int]:
        """{page_id: recLSN} for every dirty cached page (checkpoint input)."""
        return {
            pid: frame.rec_lsn for pid, frame in self._frames.items() if frame.dirty
        }

    def flush_page(self, page_id: int) -> None:
        with self.mutex or _NO_MUTEX:
            frame = self._frames.get(page_id)
            if frame is None or not frame.dirty:
                return
            self._write_back(frame)

    def flush_all(self) -> None:
        # Page-id order: consecutive ids reach the disk layer sequentially,
        # earning its sequential-write credit (and, on real hardware, an
        # elevator-friendly write pattern).
        with self.mutex or _NO_MUTEX:
            for pid in sorted(self._frames):
                self.flush_page(pid)

    def _write_back(self, frame: Frame) -> None:
        fire("buffer.flush.begin")
        for hook in self.pre_flush_hooks:
            hook(frame.page)
        if self.log_force is not None:
            self.log_force(frame.page.lsn)
        fire("buffer.flush.write")
        self.disk.write_page(frame.page.page_id, frame.page.to_bytes())
        fire("buffer.flush.end")
        frame.dirty = False
        frame.rec_lsn = 0
        self.stats.page_flushes += 1

    # -- pinning / latching --------------------------------------------------------

    def pin(self, page_id: int) -> None:
        self._require_frame(page_id).pin_count += 1

    def unpin(self, page_id: int) -> None:
        frame = self._require_frame(page_id)
        if frame.pin_count <= 0:
            raise BufferPoolError(f"page {page_id} is not pinned")
        frame.pin_count -= 1

    def latch_shared(self, page_id: int) -> None:
        frame = self._require_frame(page_id)
        if frame.exclusive_latch:
            raise LatchError(f"page {page_id} is exclusively latched")
        frame.share_latches += 1

    def latch_exclusive(self, page_id: int) -> None:
        frame = self._require_frame(page_id)
        if frame.exclusive_latch or frame.share_latches:
            raise LatchError(f"page {page_id} is already latched")
        frame.exclusive_latch = True

    def unlatch(self, page_id: int) -> None:
        frame = self._require_frame(page_id)
        if frame.exclusive_latch:
            frame.exclusive_latch = False
        elif frame.share_latches:
            frame.share_latches -= 1
        else:
            raise LatchError(f"page {page_id} is not latched")

    # -- crash simulation ------------------------------------------------------------

    def discard_all(self) -> None:
        """Drop every cached page *without* flushing (simulates a crash)."""
        self._frames.clear()

    # -- internals ----------------------------------------------------------------------

    def _require_frame(self, page_id: int) -> Frame:
        frame = self._frames.get(page_id)
        if frame is None:
            raise BufferPoolError(f"page {page_id} is not cached")
        return frame

    def _admit(self, frame: Frame) -> None:
        while len(self._frames) >= self.capacity:
            self._evict_one()
        self._frames[frame.page.page_id] = frame
        self._frames.move_to_end(frame.page.page_id)

    def _evict_one(self) -> None:
        # Pop from the cold end of the LRU order; pinned/latched frames are
        # rotated to the hot end (they are in active use) so the next attempt
        # does not rescan them.
        for _ in range(len(self._frames)):
            pid, frame = next(iter(self._frames.items()))
            if frame.pin_count or frame.exclusive_latch or frame.share_latches:
                self._frames.move_to_end(pid)
                continue
            fire("buffer.evict")
            if frame.dirty:
                self._write_back(frame)
            del self._frames[pid]
            self.stats.evictions += 1
            return
        raise BufferPoolError("buffer pool exhausted: every frame is pinned")

    def cached_pages(self) -> Iterator[Page]:
        yield from (frame.page for frame in self._frames.values())

    def __len__(self) -> int:
        return len(self._frames)
