"""Buffer pool: page cache with latching, dirty tracking, and flush hooks.

The buffer pool is where two Immortal DB protocols are anchored:

* **Flush-triggered lazy timestamping** (Section 2.2): "just before a cached
  page is flushed to disk, we check whether the page contains any
  non-timestamped records from committed transactions; if so, we timestamp
  them."  The timestamp manager registers a *pre-flush hook* that runs on
  every page write-back.
* **WAL rule**: before a dirty page reaches disk, the log must be forced up
  to the page's LSN.  The log registers a *log-force hook* for this.

Latching is bookkeeping rather than blocking — the simulation is
single-threaded — but conflicting acquisitions raise :exc:`LatchError`, so
tests can assert the engine follows the paper's latch discipline (exclusive
latch to stamp a record, shared latch for a plain read of a stamped one).

Eviction is pluggable (``eviction="lru" | "2q" | "clock"``):

* ``lru`` — the seed policy, byte-identical to the original single-list
  implementation (it operates directly on the pool's recency-ordered frame
  table, including the rotate-pinned-frames-to-the-hot-end scan).
* ``2q`` — Johnson & Shasha's 2Q: first-touch pages enter a FIFO probation
  queue (A1in) and are evicted from it unless re-referenced *after* falling
  into the ghost list (A1out); only re-referenced pages enter the protected
  LRU (Am).  A long history scan therefore washes through A1in without
  displacing the hot current-page working set — the access pattern the
  paper's time-split storage produces.
* ``clock`` — second-chance: a reference bit per frame, cleared as the hand
  sweeps; O(1) metadata per access instead of list reordering.

Write-back is optionally batched (``flush_batch=N``): an eviction of a
dirty page gathers up to ``N-1`` additional cold dirty pages, runs the
pre-flush hooks for the whole batch, forces the log **once** to the batch's
maximum page LSN (amortizing the fsync the WAL rule otherwise costs every
dirty eviction), and writes the pages in page-id order so adjacent ids
reach the disk sequentially.  ``flush_all`` (checkpoints) batches the same
way.  The WAL rule is preserved — the single force covers every page in
the batch — and lazy timestamping is unchanged: stamping consults
``log.flushed_lsn`` *before* the force, so it is exactly as conservative
as the per-page path.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, Iterator

_NO_MUTEX = nullcontext()

from repro.errors import (
    BufferExhaustedError,
    BufferPoolError,
    LatchError,
    StorageError,
    TransientIOError,
)
from repro.faults.failpoints import fire
from repro.storage.constants import ARCHIVE_PID_BIT
from repro.storage.disk import PageStore
from repro.storage.page import Page, decode_page


@dataclass
class BufferStats:
    """Buffer pool hit/miss/eviction counters."""
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    page_flushes: int = 0
    dirty_evictions: int = 0        # evictions that had to write the victim
    flush_batches: int = 0          # batched write-back groups issued
    flush_coalesced_writes: int = 0  # batch writes adjacent to the previous id
    evict_scan_skips: int = 0       # pinned/latched frames stepped over
    prefetches: int = 0             # pages read ahead of an actual request
    prefetch_hits: int = 0          # misses served from the staging ring

    def snapshot(self) -> "BufferStats":
        """An independent copy of the current counter values."""
        return BufferStats(
            self.hits, self.misses, self.evictions, self.page_flushes,
            self.dirty_evictions, self.flush_batches,
            self.flush_coalesced_writes, self.evict_scan_skips,
            self.prefetches, self.prefetch_hits,
        )


@dataclass
class Frame:
    """One cached page plus its cache metadata."""

    page: Page
    dirty: bool = False
    rec_lsn: int = 0          # LSN when first dirtied since last clean (for DPT)
    pin_count: int = 0
    share_latches: int = 0
    exclusive_latch: bool = False


def _unevictable(frame: Frame) -> bool:
    return bool(frame.pin_count or frame.exclusive_latch or frame.share_latches)


# ---------------------------------------------------------------------------
# Eviction policies
# ---------------------------------------------------------------------------

class EvictionPolicy:
    """Victim selection strategy; notified of admissions/accesses/removals.

    The pool owns the frame table (``pool._frames``); a policy owns only its
    ordering metadata.  ``select_victim`` must return an evictable frame or
    raise :exc:`BufferExhaustedError` — it must not return a pinned or
    latched frame, and must terminate even when every frame is unevictable.
    """

    name = "base"

    def __init__(self, pool: "BufferPool") -> None:
        self.pool = pool

    def on_admit(self, page_id: int) -> None:
        raise NotImplementedError

    def on_access(self, page_id: int) -> None:
        raise NotImplementedError

    def on_remove(self, page_id: int) -> None:
        raise NotImplementedError

    def select_victim(self) -> tuple[int, Frame]:
        raise NotImplementedError

    def iter_cold(self) -> Iterator[int]:
        """Page ids, coldest first (flush-batch companion selection)."""
        raise NotImplementedError

    def clear(self) -> None:
        """Forget everything (crash simulation)."""

    def _exhausted(self) -> BufferExhaustedError:
        frames = self.pool._frames
        pinned = sum(1 for f in frames.values() if f.pin_count)
        latched = sum(
            1 for f in frames.values()
            if f.exclusive_latch or f.share_latches
        )
        return BufferExhaustedError(
            f"buffer pool exhausted: every frame is pinned or latched "
            f"(capacity={self.pool.capacity}, pinned={pinned}, "
            f"latched={latched})",
            capacity=self.pool.capacity, pinned=pinned, latched=latched,
        )


class LRUPolicy(EvictionPolicy):
    """The seed policy: single recency list, byte-identical behaviour.

    Operates directly on the pool's OrderedDict so the recency order —
    including the detail that ``mark_dirty`` counts as a touch and that the
    eviction scan rotates pinned frames to the hot end — matches the
    original single-list implementation exactly.
    """

    name = "lru"

    def on_admit(self, page_id: int) -> None:
        self.pool._frames.move_to_end(page_id)

    def on_access(self, page_id: int) -> None:
        self.pool._frames.move_to_end(page_id)

    def on_remove(self, page_id: int) -> None:
        pass

    def select_victim(self) -> tuple[int, Frame]:
        # Pop from the cold end of the LRU order; pinned/latched frames are
        # rotated to the hot end (they are in active use) so the next attempt
        # does not rescan them.
        frames = self.pool._frames
        for _ in range(len(frames)):
            pid, frame = next(iter(frames.items()))
            if _unevictable(frame):
                frames.move_to_end(pid)
                self.pool.stats.evict_scan_skips += 1
                continue
            return pid, frame
        raise self._exhausted()

    def iter_cold(self) -> Iterator[int]:
        yield from list(self.pool._frames)


class TwoQPolicy(EvictionPolicy):
    """2Q (Johnson & Shasha, VLDB '94), full version.

    * ``A1in`` — FIFO probation queue for first-touch pages (target size
      ``kin`` = capacity/8: probation churn is cheap, and a small A1in
      leaves the protected queue room for a hot set approaching pool
      size).  Re-accessing a page *while it is in A1in* does not promote
      it: a sequential scan touches each page once more during
      processing, and promoting on that touch would let scans poison the
      protected queue (the flaw 2Q exists to fix).
    * ``A1out`` — ghost list of recently evicted probation pages (ids
      only, no frames; target ``kout`` = capacity/2, the paper's 50%).
      A page faulting in while ghosted has shown re-use *beyond* scan
      distance → admit straight to Am.  The window is deliberately
      narrow: a *periodic* scan (a monitoring sweep that repeats every
      few hundred operations) must find its ghosts already aged out, or
      the second sweep would promote the whole sweep into Am and evict
      the genuinely hot set.
    * ``Am`` — protected LRU of proven-hot pages.
    """

    name = "2q"

    def __init__(self, pool: "BufferPool") -> None:
        super().__init__(pool)
        self.kin = max(1, pool.capacity // 8)
        self.kout = max(2, pool.capacity // 2)
        self.a1in: OrderedDict[int, None] = OrderedDict()
        self.a1out: OrderedDict[int, None] = OrderedDict()
        self.am: OrderedDict[int, None] = OrderedDict()

    def on_admit(self, page_id: int) -> None:
        if page_id in self.a1out:
            del self.a1out[page_id]
            self.am[page_id] = None
        else:
            self.a1in[page_id] = None

    def on_access(self, page_id: int) -> None:
        if page_id in self.am:
            self.am.move_to_end(page_id)
        # A page in A1in is deliberately NOT promoted on re-access.

    def on_remove(self, page_id: int) -> None:
        self.a1in.pop(page_id, None)
        self.am.pop(page_id, None)

    def _ghost(self, page_id: int) -> None:
        self.a1out[page_id] = None
        while len(self.a1out) > self.kout:
            self.a1out.popitem(last=False)

    def select_victim(self) -> tuple[int, Frame]:
        frames = self.pool._frames
        # Prefer the probation queue while it exceeds its target share (or
        # the protected queue has nothing to give); fall back to the other
        # queue when every frame in the preferred one is pinned.
        if len(self.a1in) > self.kin or not self.am:
            order = ((self.a1in, True), (self.am, False))
        else:
            order = ((self.am, False), (self.a1in, True))
        for queue, ghost in order:
            for _ in range(len(queue)):
                pid = next(iter(queue))
                frame = frames.get(pid)
                if frame is None:          # stale entry (defensive)
                    del queue[pid]
                    continue
                if _unevictable(frame):
                    queue.move_to_end(pid)
                    self.pool.stats.evict_scan_skips += 1
                    continue
                if ghost:
                    self._ghost(pid)
                return pid, frame
        raise self._exhausted()

    def iter_cold(self) -> Iterator[int]:
        yield from list(self.a1in)
        yield from list(self.am)

    def clear(self) -> None:
        self.a1in.clear()
        self.a1out.clear()
        self.am.clear()


class ClockPolicy(EvictionPolicy):
    """Second-chance CLOCK: one reference bit per frame, a sweeping hand.

    An access sets the frame's bit (O(1), no list surgery).  The hand
    sweeps the ring: a set bit buys the frame one more lap (bit cleared,
    frame passed over); a clear bit makes it the victim.  Pinned/latched
    frames are skipped *without* clearing their bit; a full lap of nothing
    but pinned frames raises :exc:`BufferExhaustedError` — the
    ``pinned_streak`` counter resets whenever the hand does useful work
    (clears a bit or finds a victim), so the sweep provably terminates.
    """

    name = "clock"

    def __init__(self, pool: "BufferPool") -> None:
        super().__init__(pool)
        self.ring: OrderedDict[int, bool] = OrderedDict()  # pid -> ref bit

    def on_admit(self, page_id: int) -> None:
        self.ring[page_id] = True

    def on_access(self, page_id: int) -> None:
        if page_id in self.ring:
            self.ring[page_id] = True

    def on_remove(self, page_id: int) -> None:
        self.ring.pop(page_id, None)

    def select_victim(self) -> tuple[int, Frame]:
        frames = self.pool._frames
        pinned_streak = 0
        while self.ring:
            pid = next(iter(self.ring))
            frame = frames.get(pid)
            if frame is None:              # stale entry (defensive)
                del self.ring[pid]
                continue
            if _unevictable(frame):
                self.ring.move_to_end(pid)
                self.pool.stats.evict_scan_skips += 1
                pinned_streak += 1
                if pinned_streak >= len(self.ring):
                    raise self._exhausted()
                continue
            if self.ring[pid]:
                self.ring[pid] = False     # second chance
                self.ring.move_to_end(pid)
                pinned_streak = 0
                continue
            return pid, frame
        raise self._exhausted()

    def iter_cold(self) -> Iterator[int]:
        # Clear bits first (closer to the hand = colder).
        ring = list(self.ring.items())
        yield from (pid for pid, ref in ring if not ref)
        yield from (pid for pid, ref in ring if ref)

    def clear(self) -> None:
        self.ring.clear()


_POLICIES: dict[str, type[EvictionPolicy]] = {
    "lru": LRUPolicy,
    "2q": TwoQPolicy,
    "clock": ClockPolicy,
}


class BufferPool:
    """Page cache over a :class:`~repro.storage.disk.PageStore`."""

    def __init__(
        self,
        disk: PageStore,
        capacity: int = 1024,
        *,
        eviction: str = "lru",
        flush_batch: int = 0,
        read_ahead: int = 0,
    ) -> None:
        if capacity < 4:
            raise ValueError("buffer pool needs at least 4 frames")
        try:
            policy_cls = _POLICIES[eviction]
        except KeyError:
            raise ValueError(
                f"unknown eviction policy {eviction!r} "
                f"(choose from {sorted(_POLICIES)})"
            ) from None
        if flush_batch < 0:
            raise ValueError("flush_batch must be >= 0")
        if read_ahead < 0:
            raise ValueError("read_ahead must be >= 0")
        self.disk = disk
        self.capacity = capacity
        self.flush_batch = flush_batch
        self.read_ahead = read_ahead
        # Read-ahead state.  ``_last_miss_pid`` is the high-water mark of
        # the most recent forward miss run (advanced by prefetch reads);
        # a miss landing a *small* gap ahead of it means a scan is walking
        # allocation order — not necessarily id-by-id, since a versioned
        # bulk load interleaves history pages between leaves, so the demand
        # stream may stride over ids the scan never asks for.  The staging
        # ring holds prefetched pages *outside* the frame table: admitting
        # them directly would let a deep window wash its own head out of a
        # small probation queue before the demand reads arrive.
        self._last_miss_pid = -2
        self._staged: OrderedDict[int, Page] = OrderedDict()
        self.stats = BufferStats()
        self._frames: OrderedDict[int, Frame] = OrderedDict()
        self._policy: EvictionPolicy = policy_cls(self)
        # Hooks. pre_flush_hooks run on the in-memory page right before it is
        # serialized to disk; log_force is called with the page LSN (WAL rule).
        self.pre_flush_hooks: list[Callable[[Page], None]] = []
        self.log_force: Callable[[int], None] | None = None
        # Media-fault seam: when a miss reads a page that fails verification
        # (bad checksum, undecodable, wrong id), the handler may return a
        # repaired page (admitted as a clean frame) instead of letting the
        # error propagate.  Set by the media-recovery manager.
        self.fault_handler: Callable[[int, Exception], Page] | None = None
        # Cold-history seam: page ids with ARCHIVE_PID_BIT set are archive
        # references, not disk pages.  When an archive manager is attached
        # it resolves them from the archive store; the returned pages never
        # enter the frame table (they are immutable and must never be
        # flushed), so every read path — as-of routing, history scans, the
        # integrity walker — works unchanged on either tier.
        self.archive_resolver: Callable[[int], Page] | None = None
        # Concurrent mode installs an RLock here; None (the default) keeps
        # the single-threaded fast path lock-free.  The engine latch already
        # serializes table operations — this mutex additionally covers
        # direct buffer calls (flushes, scrub probes) from other threads.
        self.mutex = None

    @property
    def eviction(self) -> str:
        return self._policy.name

    # -- fetching ---------------------------------------------------------------

    def get_page(self, page_id: int) -> Page:
        """Fetch a page, reading it from disk on a miss."""
        with self.mutex or _NO_MUTEX:
            return self._get_page_locked(page_id)

    def _get_page_locked(self, page_id: int) -> Page:
        if page_id & ARCHIVE_PID_BIT and self.archive_resolver is not None:
            return self.archive_resolver(page_id)
        frame = self._frames.get(page_id)
        if frame is not None:
            self.stats.hits += 1
            self._policy.on_access(page_id)
            return frame.page
        self.stats.misses += 1
        staged = self._staged.pop(page_id, None)
        if staged is not None:
            # Served from the read-ahead staging ring: no disk read.
            self.stats.prefetch_hits += 1
            self._admit(Frame(staged))
            return staged
        raw: bytes | None
        try:
            raw = self.disk.read_page(page_id)
        except TransientIOError:
            # Transient by contract: the stored image is fine, a repair
            # would be wrong.  The retry policy already ran at the disk
            # seam; let the caller see the exhaustion.
            raise
        except StorageError as exc:
            if self.fault_handler is None:
                raise
            raw, fault = None, exc
        if raw is not None:
            try:
                page = decode_page(raw)
                if page.page_id != page_id:
                    raise BufferPoolError(
                        f"page {page_id} image claims to be page "
                        f"{page.page_id}"
                    )
            except StorageError as exc:
                # An all-zero image is an allocated-but-never-written page,
                # not media damage — callers rely on the plain error (the
                # PTT rebuilds an empty node from exactly this failure).
                if self.fault_handler is None or not any(raw):
                    raise
                raw, fault = None, exc
        if raw is None:
            page = self.fault_handler(page_id, fault)
            # Repairing may have faulted the page in reentrantly (e.g. the
            # PTT refill reads through the buffer); keep that frame — it may
            # already carry newer, dirty state.
            frame = self._frames.get(page_id)
            if frame is not None:
                return frame.page
            self._admit(Frame(page))
            return page
        gap = page_id - self._last_miss_pid
        self._last_miss_pid = page_id
        self._admit(Frame(page))
        if self.read_ahead > 0 and 0 < gap <= max(1, self.read_ahead // 4):
            self._prefetch_from(page_id + 1)
        return page

    def _prefetch_from(self, start_pid: int) -> None:
        """Read the next ``read_ahead`` pages of the extent into the ring.

        This is OS-style adaptive read-ahead: a single random miss never
        triggers it, but a second miss a short forward gap after the first
        does — the signature of a scan walking allocation order.  The
        whole extent is read contiguously (the disk layer prices every
        read after the first as a sequential transfer); pages the pool
        already holds are skipped rather than used to end the window,
        because breaking the id run would turn the remainder back into
        seeks — exactly the extent-read behaviour of real prefetchers.
        """
        limit = min(start_pid + self.read_ahead, self.disk.page_count)
        for pid in range(start_pid, limit):
            if pid in self._frames:
                continue
            try:
                page = decode_page(self.disk.read_page(pid))
            except StorageError:
                # Allocated-but-never-written (or damaged) page: stop this
                # window — the failed read still advanced the disk head, so
                # the next demand miss lands adjacent and re-triggers.  Only
                # a demand request takes the repair path.
                break
            if page.page_id != pid:
                break
            self.stats.prefetches += 1
            # The window extends the miss run: the first demand miss past
            # it lands a short gap ahead and re-triggers immediately.
            self._last_miss_pid = pid
            self._staged[pid] = page
        while len(self._staged) > 2 * self.read_ahead:
            self._staged.popitem(last=False)

    def new_page(self, factory: Callable[[int], Page]) -> Page:
        """Allocate a fresh page id on disk and cache ``factory(page_id)``."""
        with self.mutex or _NO_MUTEX:
            page_id = self.disk.allocate()
            page = factory(page_id)
            if page.page_id != page_id:
                raise BufferPoolError("factory ignored the allocated page id")
            frame = Frame(page, dirty=True, rec_lsn=page.lsn)
            self._admit(frame)
            return page

    def replace_page(self, page: Page) -> None:
        """Swap in a rebuilt in-memory image for an existing page id.

        Page splits rebuild the current page object from scratch; the new
        object takes over the old frame (same page id) and is dirty.
        """
        with self.mutex or _NO_MUTEX:
            frame = self._frames.get(page.page_id)
            if frame is None:
                if not self.disk.exists(page.page_id):
                    raise BufferPoolError(f"page {page.page_id} does not exist")
                frame = Frame(page)
                self._admit(frame)
            else:
                frame.page = page
            if not frame.dirty:
                frame.rec_lsn = page.lsn
            frame.dirty = True

    def contains(self, page_id: int) -> bool:
        return page_id in self._frames

    # -- dirty / flush -----------------------------------------------------------

    def mark_dirty(self, page_id: int, rec_lsn: int | None = None) -> None:
        with self.mutex or _NO_MUTEX:
            frame = self._require_frame(page_id)
            # mark_dirty means "this page's content changed"; mutations that
            # go through an attribute the page object can see already
            # invalidated the encode cache, but in-place record mutations
            # (stamping) do not, so the dirty notification doubles as the
            # cache invalidation point.
            frame.page.touch()
            if not frame.dirty:
                frame.dirty = True
                frame.rec_lsn = (
                    rec_lsn if rec_lsn is not None else frame.page.lsn
                )
            self._policy.on_access(page_id)

    def mark_dirty_page(self, page: Page, rec_lsn: int | None = None) -> None:
        """``mark_dirty`` by page object, re-admitting it if eviction won.

        Multi-page operations (B-tree splits, PTT node splits, eager commit
        revisits) mutate several *unpinned* page objects before marking them
        dirty; under a small pool, the admissions the operation itself
        performs can evict one of its own pages in between.  The in-memory
        object is the authority at that point — the operation has already
        logged the new state — so it is re-admitted as-is rather than
        letting ``mark_dirty`` raise (or worse, faulting the stale disk
        image back in next to the orphaned object).
        """
        with self.mutex or _NO_MUTEX:
            if page.page_id not in self._frames:
                self.replace_page(page)
            self.mark_dirty(page.page_id, rec_lsn)

    def is_dirty(self, page_id: int) -> bool:
        frame = self._frames.get(page_id)
        return frame.dirty if frame else False

    def dirty_page_table(self) -> dict[int, int]:
        """{page_id: recLSN} for every dirty cached page (checkpoint input)."""
        return {
            pid: frame.rec_lsn for pid, frame in self._frames.items() if frame.dirty
        }

    def flush_page(self, page_id: int) -> None:
        with self.mutex or _NO_MUTEX:
            frame = self._frames.get(page_id)
            if frame is None or not frame.dirty:
                return
            self._write_back(frame)

    def flush_all(self) -> None:
        # Page-id order: consecutive ids reach the disk layer sequentially,
        # earning its sequential-write credit (and, on real hardware, an
        # elevator-friendly write pattern).
        with self.mutex or _NO_MUTEX:
            if self.flush_batch > 1:
                dirty = [
                    self._frames[pid]
                    for pid in sorted(self._frames)
                    if self._frames[pid].dirty
                ]
                for i in range(0, len(dirty), self.flush_batch):
                    self._write_batch(dirty[i:i + self.flush_batch])
            else:
                for pid in sorted(self._frames):
                    self.flush_page(pid)

    def _write_back(self, frame: Frame) -> None:
        fire("buffer.flush.begin")
        for hook in self.pre_flush_hooks:
            hook(frame.page)
        if self.log_force is not None:
            self.log_force(frame.page.lsn)
        fire("buffer.flush.write")
        self.disk.write_page(frame.page.page_id, frame.page.to_bytes())
        fire("buffer.flush.end")
        frame.dirty = False
        frame.rec_lsn = 0
        self.stats.page_flushes += 1

    def _write_batch(self, frames: list[Frame]) -> None:
        """Write several dirty frames with ONE log force, in page-id order.

        Crash-consistency argument: the hooks (lazy stamping) run first and
        consult ``log.flushed_lsn`` *before* the force, so they stamp no
        version whose commit record is still volatile — exactly as
        conservative as the per-page path.  The single force to the batch's
        maximum LSN then satisfies the WAL rule for every page in the
        batch.  A crash between two page writes leaves a prefix of the
        batch durable, which redo recovery already handles (the same state
        a crash between two independent flushes leaves today).
        """
        if not frames:
            return
        fire("buffer.flushbatch.submit")
        for frame in frames:
            for hook in self.pre_flush_hooks:
                hook(frame.page)
        if self.log_force is not None:
            self.log_force(max(frame.page.lsn for frame in frames))
        self.stats.flush_batches += 1
        last_pid: int | None = None
        for frame in sorted(frames, key=lambda f: f.page.page_id):
            fire("buffer.flushbatch.write")
            pid = frame.page.page_id
            self.disk.write_page(pid, frame.page.to_bytes())
            if last_pid is not None and pid == last_pid + 1:
                self.stats.flush_coalesced_writes += 1
            last_pid = pid
            frame.dirty = False
            frame.rec_lsn = 0
            self.stats.page_flushes += 1
        fire("buffer.flushbatch.done")

    def _flush_batch_for(self, victim: Frame) -> None:
        """Evicting a dirty victim: piggyback cold dirty pages on its force.

        The companions stay cached — they are merely clean afterwards, so
        their own eviction (imminent, they are cold) costs no write and no
        force.  This extends the PR-2 ``flush_all`` page-id ordering to the
        eviction path.
        """
        batch = [victim]
        victim_pid = victim.page.page_id
        for pid in self._policy.iter_cold():
            if len(batch) >= self.flush_batch:
                break
            if pid == victim_pid:
                continue
            frame = self._frames.get(pid)
            if frame is None or not frame.dirty or frame.exclusive_latch:
                continue
            batch.append(frame)
        self._write_batch(batch)

    # -- pinning / latching --------------------------------------------------------

    def pin(self, page_id: int) -> None:
        self._require_frame(page_id).pin_count += 1

    def unpin(self, page_id: int) -> None:
        frame = self._require_frame(page_id)
        if frame.pin_count <= 0:
            raise BufferPoolError(f"page {page_id} is not pinned")
        frame.pin_count -= 1

    def latch_shared(self, page_id: int) -> None:
        frame = self._require_frame(page_id)
        if frame.exclusive_latch:
            raise LatchError(f"page {page_id} is exclusively latched")
        frame.share_latches += 1

    def latch_exclusive(self, page_id: int) -> None:
        frame = self._require_frame(page_id)
        if frame.exclusive_latch or frame.share_latches:
            raise LatchError(f"page {page_id} is already latched")
        frame.exclusive_latch = True

    def unlatch(self, page_id: int) -> None:
        frame = self._require_frame(page_id)
        if frame.exclusive_latch:
            frame.exclusive_latch = False
        elif frame.share_latches:
            frame.share_latches -= 1
        else:
            raise LatchError(f"page {page_id} is not latched")

    # -- crash simulation ------------------------------------------------------------

    def discard_all(self) -> None:
        """Drop every cached page *without* flushing (simulates a crash)."""
        self._frames.clear()
        self._policy.clear()

    def discard_page(self, page_id: int) -> None:
        """Drop one cached page *without* flushing.

        Used when archive migration frees a page: the frame's content has
        moved to the archive store, so writing it back would resurrect the
        image the free just reclaimed.
        """
        with self.mutex or _NO_MUTEX:
            if page_id in self._frames:
                del self._frames[page_id]
                self._policy.on_remove(page_id)
            self._staged.pop(page_id, None)

    # -- internals ----------------------------------------------------------------------

    def _require_frame(self, page_id: int) -> Frame:
        frame = self._frames.get(page_id)
        if frame is None:
            raise BufferPoolError(f"page {page_id} is not cached")
        return frame

    def _admit(self, frame: Frame) -> None:
        while len(self._frames) >= self.capacity:
            self._evict_one()
        pid = frame.page.page_id
        # Whatever image the ring staged for this id is now superseded: the
        # admitted frame may be dirtied and evicted, and a later miss must
        # re-read disk, not resurrect the speculative copy.
        self._staged.pop(pid, None)
        self._frames[pid] = frame
        self._policy.on_admit(pid)

    def _evict_one(self) -> None:
        pid, frame = self._policy.select_victim()
        fire("buffer.evict")
        if frame.dirty:
            self.stats.dirty_evictions += 1
            if self.flush_batch > 1:
                self._flush_batch_for(frame)
            else:
                self._write_back(frame)
        del self._frames[pid]
        self._policy.on_remove(pid)
        self.stats.evictions += 1

    def cached_pages(self) -> Iterator[Page]:
        yield from (frame.page for frame in self._frames.values())

    def __len__(self) -> int:
        return len(self._frames)
