"""Free list of reclaimed page ids.

The seed engine never frees a page: the TSB-tree only ever allocates, and
historical pages are immutable, so ``PageStore.allocate`` could be a bump
counter.  Cold-history archiving (see ``repro.archive``) breaks that
assumption — migrating a history page into the archive store leaves a hole
in the page file — so reclaimed ids are tracked here and handed back out
by :meth:`repro.storage.disk.PageStore.allocate` before the store grows.

Determinism matters more than speed at these sizes: the list is kept
sorted and :meth:`pop` always returns the smallest free id, so a replayed
workload allocates identical page numbers.

Crash safety is deliberately lazy.  The list is persisted opportunistically
in the catalog blob (``Catalog.free_pids``) whenever the engine saves its
meta page; after recovery the engine re-validates every persisted id
against the page file (freed pages are zero-filled at free time) and drops
any id whose image is no longer blank — see
``ArchiveManager.after_recovery``.  A freed page that never made it into a
durable catalog is merely a leaked hole, never a double allocation.
"""

from __future__ import annotations

from bisect import insort


class PageFreeList:
    """Sorted set of page ids available for reuse."""

    def __init__(self, pids: "list[int] | tuple[int, ...]" = ()) -> None:
        self._pids: list[int] = sorted(set(pids))

    def add(self, pid: int) -> None:
        """Mark ``pid`` reusable.  Adding an id twice is a no-op."""
        if pid not in self:
            insort(self._pids, pid)

    def pop(self) -> int | None:
        """Take the smallest free id, or ``None`` if the list is empty."""
        if not self._pids:
            return None
        return self._pids.pop(0)

    def discard(self, pid: int) -> None:
        """Remove ``pid`` if present (validation dropped it)."""
        try:
            self._pids.remove(pid)
        except ValueError:
            pass

    def replace(self, pids: "list[int] | tuple[int, ...]") -> None:
        """Reset the list to exactly ``pids`` (post-recovery validation)."""
        self._pids = sorted(set(pids))

    def to_list(self) -> list[int]:
        """Snapshot for catalog serialization."""
        return list(self._pids)

    def __contains__(self, pid: int) -> bool:
        # Linear scan is fine: the list only holds transiently-unreused holes.
        return pid in self._pids

    def __len__(self) -> int:
        return len(self._pids)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PageFreeList({self._pids!r})"
