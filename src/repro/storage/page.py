"""Slotted pages with intra-page version chains (Section 3.2, Figure 2).

A data page keeps a conventional slotted layout — header at the front, slot
array growing from the back — with two Immortal DB additions to the header:

* **history pointer**: page id of the history page holding versions that once
  lived in this page (0 = none), and
* **split time**: the start of this page's time range, i.e. the time used by
  the most recent time split (``Timestamp.MIN`` if the page never split).

Each slot points at the *newest* version of one record; older versions are
reached only through the per-record version chain (the ``VP`` fields), never
directly from the slot array, so a current-time transaction sees exactly the
records a conventional page would give it.

Pages of other types (B-tree index nodes, TSB-tree index nodes, PTT nodes)
subclass :class:`Page` and register their codec in :data:`PAGE_CODECS` so the
buffer pool can deserialize any raw page image.
"""

from __future__ import annotations

import itertools
import struct
from bisect import bisect_left
from typing import Callable, Iterator

from repro.clock import Timestamp
from repro.errors import PageFormatError, PageFullError
from repro.storage.constants import (
    COMMON_HEADER_SIZE,
    DATA_HEADER_SIZE,
    NO_PAGE,
    NO_PREVIOUS,
    PAGE_SIZE,
    PageType,
    RecordFlag,
    SLOT_SIZE,
)
from repro.storage.record import RecordVersion, decode_versions


# page_id(4) type(1) flags(1) pad(2) lsn(8) CRC32-slot(4, stamped by disk)
_COMMON_HEADER = struct.Struct(">IBB2xQ4x")


class Page:
    """Base class for every page type: common header + codec registry.

    Serialization is cached: :meth:`to_bytes` re-encodes only when the page's
    mutation epoch has moved since the last encode.  The epoch advances on
    every attribute assignment (``__setattr__``) and on explicit
    :meth:`touch` calls, which callers that mutate page contents *through*
    an attribute (e.g. stamping a :class:`RecordVersion` reached via
    ``versions``) must issue — the buffer pool does this in ``mark_dirty``.
    """

    page_type: PageType = PageType.META

    # Class-level defaults so __setattr__ can read them before __init__ runs.
    _encode_epoch: int = 0
    _image: bytes | None = None
    _image_epoch: int = -1

    _CACHE_ATTRS = frozenset({"_encode_epoch", "_image", "_image_epoch"})

    # Process-wide monotonic id given to every page *object*.  A page id can
    # be re-materialized as a fresh object (buffer reload, replace_page) whose
    # epoch restarts near zero, so (page_id, epoch) alone cannot key an
    # external cache soundly; (instance_stamp, epoch) can.
    _instance_stamps = itertools.count(1)

    def __init__(self, page_id: int) -> None:
        self._instance_stamp = next(Page._instance_stamps)
        self.page_id = page_id
        self.lsn = 0            # LSN of the last log record applied (WAL rule)
        self.header_flags = 0

    @property
    def cache_token(self) -> tuple[int, int]:
        """Identity + mutation epoch: equal tokens ⇒ identical page content."""
        return (self._instance_stamp, self._encode_epoch)

    def __setattr__(self, name: str, value) -> None:
        object.__setattr__(self, name, value)
        if name not in Page._CACHE_ATTRS:
            object.__setattr__(self, "_encode_epoch", self._encode_epoch + 1)

    def touch(self) -> None:
        """Invalidate the cached image after an in-place content mutation."""
        object.__setattr__(self, "_encode_epoch", self._encode_epoch + 1)

    def to_bytes(self) -> bytes:
        """Serialize to the fixed-size on-disk image (cached per epoch)."""
        if self._image is not None and self._image_epoch == self._encode_epoch:
            return self._image
        image = self._encode()
        object.__setattr__(self, "_image", image)
        object.__setattr__(self, "_image_epoch", self._encode_epoch)
        return image

    # Every subclass must produce exactly PAGE_SIZE bytes.
    def _encode(self) -> bytes:  # pragma: no cover - abstract
        """Build the fixed-size on-disk image (uncached)."""
        raise NotImplementedError

    def _common_header(self) -> bytes:
        return _COMMON_HEADER.pack(
            self.page_id, int(self.page_type), self.header_flags, self.lsn
        )

    @staticmethod
    def read_common_header(raw: bytes) -> tuple[int, int, int, int]:
        """Return (page_id, page_type, flags, lsn) from a raw page image."""
        if len(raw) != PAGE_SIZE:
            raise PageFormatError(f"page image is {len(raw)} bytes, want {PAGE_SIZE}")
        page_id, page_type, flags, lsn = _COMMON_HEADER.unpack_from(raw, 0)
        return page_id, page_type, flags, lsn


PAGE_CODECS: dict[int, Callable[[bytes], "Page"]] = {}
"""Registry: page-type byte -> ``from_bytes`` decoder."""


def register_page_codec(page_type: PageType, decoder: Callable[[bytes], Page]) -> None:
    PAGE_CODECS[int(page_type)] = decoder


def decode_page(raw: bytes) -> Page:
    """Deserialize a raw page image, dispatching on its page-type byte."""
    _, page_type, _, _ = Page.read_common_header(raw)
    try:
        decoder = PAGE_CODECS[page_type]
    except KeyError:
        raise PageFormatError(f"unknown page type {page_type}") from None
    return decoder(raw)


# nslots(2) nversions(2) split_ts(8+4) end_ts(8+4) history(4) next_leaf(4)
# table_id(4) — the data-page header extension after the common header.
_DATA_EXT = struct.Struct(">HHQIQIIII")

# Precompiled slot-array codecs, keyed by slot count: pages cluster around a
# few fill levels, so ``struct.Struct(f">{n}H")`` compilation amortizes to
# nothing instead of re-parsing the format string on every decode.
_SLOT_CODECS: dict[int, struct.Struct] = {}


def _slot_codec(nslots: int) -> struct.Struct:
    codec = _SLOT_CODECS.get(nslots)
    if codec is None:
        codec = _SLOT_CODECS[nslots] = struct.Struct(f">{nslots}H")
    return codec


class DataPage(Page):
    """A current or history data page holding versioned records."""

    page_type = PageType.DATA_CURRENT

    IMMORTAL_FLAG = 1  # header_flags bit: page belongs to an immortal table

    def __init__(
        self,
        page_id: int,
        *,
        is_history: bool = False,
        page_size: int = PAGE_SIZE,
        table_id: int = 0,
        immortal: bool = False,
    ) -> None:
        super().__init__(page_id)
        if is_history:
            self.page_type = PageType.DATA_HISTORY
        if immortal:
            self.header_flags |= self.IMMORTAL_FLAG
        self.table_id = table_id
        self.page_size = page_size
        # Versions live in self.versions in storage order; chains are
        # expressed by RecordVersion.vp holding *indices into this list*.
        self.versions: list[RecordVersion] = []
        # Slot array: index of the newest version of each record, sorted by
        # key so current-time range scans work exactly as in a B-tree leaf.
        self.slots: list[int] = []
        self._slot_keys: list[bytes] = []
        # Immortal DB header additions (Section 3.2):
        self.split_ts: Timestamp = Timestamp.MIN   # start of this page's time range
        self.end_ts: Timestamp = Timestamp.MAX     # exclusive end (history pages)
        self.history_page_id: int = NO_PAGE        # chain of time-split pages
        self.next_leaf_id: int = NO_PAGE           # B-tree leaf sibling chain
        self._used = DATA_HEADER_SIZE

    @property
    def is_history(self) -> bool:
        return self.page_type == PageType.DATA_HISTORY

    @property
    def immortal(self) -> bool:
        """True when the page belongs to a transaction-time (immortal) table."""
        return bool(self.header_flags & self.IMMORTAL_FLAG)

    # -- space accounting ----------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.page_size - self._used

    def fits(self, record: RecordVersion, *, new_slot: bool) -> bool:
        need = record.size_on_page + (SLOT_SIZE if new_slot else 0)
        return need <= self.free_bytes

    @property
    def utilization(self) -> float:
        return self._used / self.page_size

    def current_version_bytes(self) -> int:
        """Bytes consumed by only the newest (slot-array-visible) versions.

        This is the quantity the split policy thresholds on: after a time
        split only these versions (plus uncommitted ones) remain, so a page
        whose *current* content already exceeds the threshold needs a key
        split too (Section 3.3).
        """
        return sum(self.versions[i].size_on_page for i in self.slots)

    # -- slot lookup -----------------------------------------------------------

    def slot_position(self, key: bytes) -> int:
        """bisect position of ``key`` in the slot array."""
        return bisect_left(self._slot_keys, key)

    def slot_of(self, key: bytes) -> int | None:
        """Slot number of ``key``, or None if the page has no record for it."""
        pos = self.slot_position(key)
        if pos < len(self._slot_keys) and self._slot_keys[pos] == key:
            return pos
        return None

    def head(self, key: bytes) -> RecordVersion | None:
        """The newest version of ``key`` in this page (what a slot points at)."""
        slot = self.slot_of(key)
        if slot is None:
            return None
        return self.versions[self.slots[slot]]

    def head_at_slot(self, slot: int) -> RecordVersion:
        return self.versions[self.slots[slot]]

    def keys(self) -> list[bytes]:
        """All record keys present in the slot array, in key order."""
        return list(self._slot_keys)

    @property
    def min_key(self) -> bytes | None:
        return self._slot_keys[0] if self._slot_keys else None

    @property
    def max_key(self) -> bytes | None:
        return self._slot_keys[-1] if self._slot_keys else None

    # -- version chains --------------------------------------------------------

    def chain(self, key: bytes) -> Iterator[RecordVersion]:
        """Iterate the versions of ``key`` in this page, newest first.

        Iteration stops at the page boundary: if the oldest local version's
        VP points into the history page (``VP_IN_HISTORY``), the caller must
        continue there (see :meth:`continues_in_history`).
        """
        slot = self.slot_of(key)
        if slot is None:
            return
        index = self.slots[slot]
        while True:
            version = self.versions[index]
            yield version
            if not version.has_previous or version.vp_in_history:
                return
            index = version.vp

    def chain_from(self, version_index: int) -> Iterator[RecordVersion]:
        """Iterate newest-first starting from an explicit version index."""
        index = version_index
        while True:
            version = self.versions[index]
            yield version
            if not version.has_previous or version.vp_in_history:
                return
            index = version.vp

    def continues_in_history(self, key: bytes) -> int | None:
        """If ``key``'s chain continues in the history page, its slot there."""
        tail: RecordVersion | None = None
        for tail in self.chain(key):
            pass
        if tail is not None and tail.vp_in_history:
            return tail.vp
        return None

    # -- mutation ---------------------------------------------------------------

    def insert_version(self, record: RecordVersion) -> None:
        """Add a brand-new version written by an active transaction.

        If the key already has versions here, the new version becomes the
        chain head and its VP points at the old head.  Raises
        :exc:`PageFullError` when the page lacks room — the caller then
        performs a time split and/or key split and retries.
        """
        pos = self.slot_position(record.key)
        existing = pos < len(self._slot_keys) and self._slot_keys[pos] == record.key
        if not self.fits(record, new_slot=not existing):
            raise PageFullError(
                f"page {self.page_id}: no room for {record.size_on_page}-byte record"
            )
        if existing:
            record.vp = self.slots[pos]
            record.flags &= ~RecordFlag.VP_IN_HISTORY
            self.versions.append(record)
            self.slots[pos] = len(self.versions) - 1
            self._used += record.size_on_page
        else:
            record.vp = NO_PREVIOUS
            self.versions.append(record)
            self.slots.insert(pos, len(self.versions) - 1)
            self._slot_keys.insert(pos, record.key)
            self._used += record.size_on_page + SLOT_SIZE

    def add_chain(
        self,
        chain_newest_first: list[RecordVersion],
        *,
        history_slot: int | None = None,
    ) -> None:
        """Install a whole version chain for one key (used by page splits).

        ``chain_newest_first`` are detached copies; their VP/flags are
        rewritten here.  If ``history_slot`` is given, the oldest version's
        VP is pointed at that slot of the page's history page.
        """
        if not chain_newest_first:
            raise ValueError("empty chain")
        key = chain_newest_first[0].key
        if any(v.key != key for v in chain_newest_first):
            raise ValueError("chain mixes keys")
        if self.slot_of(key) is not None:
            raise ValueError(f"page {self.page_id} already has a slot for {key!r}")
        need = sum(v.size_on_page for v in chain_newest_first) + SLOT_SIZE
        if need > self.free_bytes:
            raise PageFullError(
                f"page {self.page_id}: no room for {need}-byte chain"
            )
        # Store oldest-first so VP indices always point backwards in the list.
        prev_index: int | None = None
        for version in reversed(chain_newest_first):
            if prev_index is None:
                if history_slot is not None:
                    version.vp = history_slot
                    version.flags |= RecordFlag.VP_IN_HISTORY
                else:
                    version.vp = NO_PREVIOUS
                    version.flags &= ~RecordFlag.VP_IN_HISTORY
            else:
                version.vp = prev_index
                version.flags &= ~RecordFlag.VP_IN_HISTORY
            self.versions.append(version)
            prev_index = len(self.versions) - 1
        pos = self.slot_position(key)
        self.slots.insert(pos, prev_index)  # head = newest = last appended
        self._slot_keys.insert(pos, key)
        self._used += need

    def remove_newest_version(self, key: bytes) -> RecordVersion:
        """Remove the chain head for ``key`` (transaction rollback / undo).

        The slot is re-pointed at the previous version; if the head had no
        local predecessor the slot is removed entirely.  Version indices are
        compacted so VP pointers and slots stay valid.
        """
        slot = self.slot_of(key)
        if slot is None:
            raise KeyError(key)
        head_index = self.slots[slot]
        head = self.versions[head_index]
        if head.has_previous and not head.vp_in_history:
            self.slots[slot] = head.vp
        else:
            del self.slots[slot]
            del self._slot_keys[slot]
            self._used -= SLOT_SIZE
        del self.versions[head_index]
        self._used -= head.size_on_page
        # Compact: every index greater than head_index shifts down by one.
        for version in self.versions:
            if version.has_previous and not version.vp_in_history \
                    and version.vp > head_index:
                version.vp -= 1
        self.slots = [i - 1 if i > head_index else i for i in self.slots]
        return head

    def replace_payload_in_place(self, key: bytes, payload: bytes) -> None:
        """In-place update for conventional (non-versioned) tables."""
        slot = self.slot_of(key)
        if slot is None:
            raise KeyError(key)
        head = self.versions[self.slots[slot]]
        delta = len(payload) - len(head.payload)
        if delta > self.free_bytes:
            raise PageFullError(
                f"page {self.page_id}: in-place growth of {delta} bytes does not fit"
            )
        head.payload = payload
        self._used += delta

    def has_unstamped_records(self) -> bool:
        """True if any version still carries a TID instead of a timestamp."""
        return any(not v.is_timestamped for v in self.versions)

    def unstamped_versions(self) -> Iterator[RecordVersion]:
        for version in self.versions:
            if not version.is_timestamped:
                yield version

    # -- self-contained invariants -------------------------------------------------

    def self_check(self) -> list[str]:
        """Page-local invariant violations (empty list = healthy).

        Exactly the checks that need no engine context — no TID resolution,
        no sibling pages — so the online scrubber can run them against any
        decoded disk image: slot array sorted, every chain acyclic with
        in-range indices and key-consistent versions, timestamps strictly
        decreasing along each chain, and a history page's time range
        non-empty.  ``verify_integrity`` layers the cross-structure checks
        (chains across pages, TSB agreement, orphaned TIDs) on top.
        """
        problems: list[str] = []
        if self._slot_keys != sorted(self._slot_keys):
            problems.append("slot array out of order")
        for key in self._slot_keys:
            visited: set[int] = set()
            index = self.slots[self.slot_position(key)]
            last_ts: Timestamp | None = None
            while True:
                if index in visited:
                    problems.append(f"key {key!r} chain has a cycle")
                    break
                if not 0 <= index < len(self.versions):
                    problems.append(
                        f"key {key!r} chain index {index} out of range"
                    )
                    break
                visited.add(index)
                version = self.versions[index]
                if version.key != key:
                    problems.append(
                        f"chain of {key!r} reached a version of "
                        f"{version.key!r}"
                    )
                    break
                if version.is_timestamped:
                    ts = version.timestamp
                    if last_ts is not None and ts >= last_ts:
                        problems.append(
                            f"key {key!r} timestamps not strictly "
                            f"decreasing ({ts} under {last_ts})"
                        )
                    last_ts = ts
                if not version.has_previous or version.vp_in_history:
                    break
                index = version.vp
        if self.is_history and self.split_ts >= self.end_ts:
            problems.append("history page has empty time range")
        return problems

    # -- codec --------------------------------------------------------------------

    def _encode(self) -> bytes:
        """Build the fixed-size on-disk image (uncached)."""
        buf = bytearray(self.page_size)
        buf[0:COMMON_HEADER_SIZE] = self._common_header()
        _DATA_EXT.pack_into(
            buf, COMMON_HEADER_SIZE,
            len(self.slots), len(self.versions),
            self.split_ts.ttime, self.split_ts.sn,
            self.end_ts.ttime, self.end_ts.sn,
            self.history_page_id, self.next_leaf_id, self.table_id,
        )
        offset = DATA_HEADER_SIZE
        try:
            for version in self.versions:
                offset = version.write_into(buf, offset)
        except struct.error as exc:
            raise PageFormatError(
                f"page {self.page_id} overflows its image"
            ) from exc
        slot_area = self.page_size - SLOT_SIZE * len(self.slots)
        if offset > slot_area:
            raise PageFormatError(
                f"page {self.page_id} overflows its image "
                f"({offset} bytes of records, slot area at {slot_area})"
            )
        if self.slots:
            _slot_codec(len(self.slots)).pack_into(buf, slot_area, *self.slots)
        return bytes(buf)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "DataPage":
        """Deserialize from an on-disk image."""
        page_id, page_type, flags, lsn = Page.read_common_header(raw)
        if page_type not in (PageType.DATA_CURRENT, PageType.DATA_HISTORY):
            raise PageFormatError(f"not a data page: type {page_type}")
        page = cls(page_id, is_history=page_type == PageType.DATA_HISTORY,
                   page_size=len(raw))
        page.header_flags = flags
        page.lsn = lsn
        (
            nslots, nversions,
            split_ttime, split_sn, end_ttime, end_sn,
            history_page_id, next_leaf_id, table_id,
        ) = _DATA_EXT.unpack_from(raw, COMMON_HEADER_SIZE)
        page.split_ts = Timestamp(split_ttime, split_sn)
        page.end_ts = Timestamp(end_ttime, end_sn)
        page.history_page_id = history_page_id
        page.next_leaf_id = next_leaf_id
        page.table_id = table_id
        versions, offset = decode_versions(raw, DATA_HEADER_SIZE, nversions)
        page.versions = versions
        slot_area = len(raw) - SLOT_SIZE * nslots
        heads = list(_slot_codec(nslots).unpack_from(raw, slot_area))
        for i, head_index in enumerate(heads):
            if head_index >= nversions:
                raise PageFormatError(
                    f"page {page_id}: slot {i} points past version area"
                )
        page.slots = heads
        keys = [versions[h].key for h in heads]
        page._slot_keys = keys
        if any(keys[i] > keys[i + 1] for i in range(len(keys) - 1)):
            raise PageFormatError(f"page {page_id}: slot array not key-ordered")
        # decode_versions walked exactly size_on_page bytes per record, so
        # the final offset already totals the record area.
        page._used = offset + SLOT_SIZE * nslots
        return page


register_page_codec(PageType.DATA_CURRENT, DataPage.from_bytes)
register_page_codec(PageType.DATA_HISTORY, DataPage.from_bytes)


class MetaPage(Page):
    """The boot page (page 0): an opaque, length-prefixed blob.

    The engine stores its durable root information here — catalog, PTT root
    page id, index roots — serialized by :mod:`repro.core.catalog`.
    """

    page_type = PageType.META

    def __init__(self, page_id: int = 0, blob: bytes = b"",
                 page_size: int = PAGE_SIZE) -> None:
        super().__init__(page_id)
        self.page_size = page_size
        self.blob = blob

    def _encode(self) -> bytes:
        """Build the fixed-size on-disk image (uncached)."""
        capacity = self.page_size - COMMON_HEADER_SIZE - 4
        if len(self.blob) > capacity:
            raise PageFormatError(
                f"meta blob of {len(self.blob)} bytes exceeds capacity {capacity}"
            )
        buf = bytearray(self.page_size)
        buf[0:COMMON_HEADER_SIZE] = self._common_header()
        at = COMMON_HEADER_SIZE
        buf[at : at + 4] = len(self.blob).to_bytes(4, "big")
        buf[at + 4 : at + 4 + len(self.blob)] = self.blob
        return bytes(buf)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "MetaPage":
        """Deserialize from an on-disk image."""
        page_id, page_type, flags, lsn = Page.read_common_header(raw)
        if page_type != PageType.META:
            raise PageFormatError(f"not a meta page: type {page_type}")
        at = COMMON_HEADER_SIZE
        length = int.from_bytes(raw[at : at + 4], "big")
        page = cls(page_id, bytes(raw[at + 4 : at + 4 + length]), page_size=len(raw))
        page.header_flags = flags
        page.lsn = lsn
        return page


register_page_codec(PageType.META, MetaPage.from_bytes)
