"""Page stores: the "disk" under the buffer pool, with physical I/O accounting.

Two implementations share one interface:

* :class:`InMemoryDisk` — a dict of page images.  Fast, and still *durable*
  in the simulation's sense: a crash discards the buffer pool and all
  volatile state, never the disk.
* :class:`FileDisk` — a real file of 8 KB pages, for examples that want an
  artifact on disk and for testing the codec end-to-end.

Every read/write is classified as *sequential* (page id adjacent to the last
I/O) or *random*; the benchmark cost model converts these counts into
simulated milliseconds, which is how we reproduce the paper's latency shapes
without the authors' 2005 hardware.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass, fields

from repro.errors import ChecksumError, PageNotFoundError, StorageError
from repro.faults.failpoints import fire
from repro.storage.constants import (
    CHECKSUM_OFFSET,
    CHECKSUM_SIZE,
    META_PAGE_ID,
    PAGE_SIZE,
)


def page_checksum(raw: bytes) -> int:
    """CRC32 over a page image, excluding the header's checksum field.

    Never returns 0 — that value is reserved for "no checksum stamped", so
    images written before checksums were enabled stay readable.
    """
    crc = zlib.crc32(raw[:CHECKSUM_OFFSET])
    crc = zlib.crc32(raw[CHECKSUM_OFFSET + CHECKSUM_SIZE:], crc)
    return crc or 1


def stamp_checksum(raw: bytes) -> bytes:
    """Return ``raw`` with its header CRC32 field filled in."""
    stamped = bytearray(raw)
    stamped[CHECKSUM_OFFSET : CHECKSUM_OFFSET + CHECKSUM_SIZE] = \
        page_checksum(raw).to_bytes(CHECKSUM_SIZE, "big")
    return bytes(stamped)


def verify_checksum(raw: bytes, page_id: int) -> None:
    """Raise :exc:`ChecksumError` if a stamped image fails verification."""
    stored = int.from_bytes(
        raw[CHECKSUM_OFFSET : CHECKSUM_OFFSET + CHECKSUM_SIZE], "big"
    )
    if stored == 0:
        return  # written before checksums were enabled
    if stored != page_checksum(raw):
        raise ChecksumError(
            f"page {page_id}: stored CRC32 {stored:#010x} does not match "
            f"the page image (torn write or bit-rot)"
        )


@dataclass
class DiskStats:
    """Physical I/O counters (monotonic; take deltas across an experiment)."""

    reads: int = 0
    writes: int = 0
    sequential_reads: int = 0
    sequential_writes: int = 0
    allocations: int = 0

    @property
    def random_reads(self) -> int:
        return self.reads - self.sequential_reads

    @property
    def random_writes(self) -> int:
        return self.writes - self.sequential_writes

    def snapshot(self) -> "DiskStats":
        """An independent copy of the current counter values."""
        return DiskStats(**{f.name: getattr(self, f.name) for f in fields(self)})

    def delta(self, since: "DiskStats") -> "DiskStats":
        """Elementwise difference against an earlier snapshot."""
        return DiskStats(
            **{
                f.name: getattr(self, f.name) - getattr(since, f.name)
                for f in fields(self)
            }
        )


class PageStore:
    """Abstract page store: fixed-size pages addressed by integer page id.

    Page id 0 (:data:`META_PAGE_ID`) always exists and holds the database
    boot block; :meth:`allocate` hands out ids 1, 2, 3, …
    """

    def __init__(self, page_size: int = PAGE_SIZE) -> None:
        self.page_size = page_size
        self.stats = DiskStats()
        self.checksums = False   # opt-in: stamp on write, verify on read
        self._last_read_pid = -2
        self._last_write_pid = -2

    # -- interface -----------------------------------------------------------

    def read_page(self, page_id: int) -> bytes:
        raw = self._read(page_id)
        if self.checksums:
            verify_checksum(raw, page_id)
        self.stats.reads += 1
        if page_id == self._last_read_pid + 1:
            self.stats.sequential_reads += 1
        self._last_read_pid = page_id
        return raw

    def write_page(self, page_id: int, raw: bytes) -> None:
        if len(raw) != self.page_size:
            raise StorageError(
                f"page image is {len(raw)} bytes, page size is {self.page_size}"
            )
        fire("disk.write_page")
        if self.checksums:
            raw = stamp_checksum(raw)
        self._write(page_id, raw)
        self.stats.writes += 1
        if page_id == self._last_write_pid + 1:
            self.stats.sequential_writes += 1
        self._last_write_pid = page_id

    def allocate(self) -> int:
        self.stats.allocations += 1
        return self._allocate()

    @property
    def page_count(self) -> int:
        raise NotImplementedError

    def exists(self, page_id: int) -> bool:
        return 0 <= page_id < self.page_count

    def close(self) -> None:
        """Release underlying resources (idempotent)."""
        pass

    # -- backend hooks ---------------------------------------------------------

    def _read(self, page_id: int) -> bytes:
        raise NotImplementedError

    def _write(self, page_id: int, raw: bytes) -> None:
        raise NotImplementedError

    def _allocate(self) -> int:
        raise NotImplementedError


class InMemoryDisk(PageStore):
    """Dict-backed page store (the default for tests and benchmarks)."""

    def __init__(self, page_size: int = PAGE_SIZE) -> None:
        super().__init__(page_size)
        self._pages: dict[int, bytes] = {META_PAGE_ID: bytes(page_size)}
        self._next_pid = 1

    def _read(self, page_id: int) -> bytes:
        try:
            return self._pages[page_id]
        except KeyError:
            raise PageNotFoundError(f"page {page_id} does not exist") from None

    def _write(self, page_id: int, raw: bytes) -> None:
        if page_id >= self._next_pid and page_id != META_PAGE_ID:
            raise PageNotFoundError(f"page {page_id} was never allocated")
        self._pages[page_id] = raw

    def _allocate(self) -> int:
        pid = self._next_pid
        self._next_pid += 1
        self._pages[pid] = bytes(self.page_size)
        return pid

    @property
    def page_count(self) -> int:
        return self._next_pid


class FileDisk(PageStore):
    """File-backed page store: page *i* lives at byte offset ``i * page_size``."""

    def __init__(self, path: str | os.PathLike, page_size: int = PAGE_SIZE) -> None:
        super().__init__(page_size)
        self.path = os.fspath(path)
        preexisting = os.path.exists(self.path)
        self._file = open(self.path, "r+b" if preexisting else "w+b")
        if not preexisting:
            self._file.write(bytes(page_size))  # the meta page
            self._file.flush()
        size = os.fstat(self._file.fileno()).st_size
        if size % page_size:
            raise StorageError(f"{self.path}: size {size} not a page multiple")
        self._next_pid = max(1, size // page_size)

    def _read(self, page_id: int) -> bytes:
        if not self.exists(page_id):
            raise PageNotFoundError(f"page {page_id} does not exist")
        self._file.seek(page_id * self.page_size)
        raw = self._file.read(self.page_size)
        if len(raw) != self.page_size:
            raise PageNotFoundError(f"page {page_id}: short read")
        return raw

    def _write(self, page_id: int, raw: bytes) -> None:
        if not self.exists(page_id):
            raise PageNotFoundError(f"page {page_id} was never allocated")
        self._file.seek(page_id * self.page_size)
        self._file.write(raw)

    def _allocate(self) -> int:
        pid = self._next_pid
        self._next_pid += 1
        self._file.seek(pid * self.page_size)
        self._file.write(bytes(self.page_size))
        return pid

    @property
    def page_count(self) -> int:
        return self._next_pid

    def close(self) -> None:
        """Release underlying resources (idempotent)."""
        if not self._file.closed:
            self._file.flush()
            os.fsync(self._file.fileno())
            self._file.close()
