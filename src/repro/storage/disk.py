"""Page stores: the "disk" under the buffer pool, with physical I/O accounting.

Two implementations share one interface:

* :class:`InMemoryDisk` — a dict of page images.  Fast, and still *durable*
  in the simulation's sense: a crash discards the buffer pool and all
  volatile state, never the disk.
* :class:`FileDisk` — a real file of 8 KB pages, for examples that want an
  artifact on disk and for testing the codec end-to-end.

Every read/write is classified as *sequential* (page id adjacent to the last
I/O) or *random*; the benchmark cost model converts these counts into
simulated milliseconds, which is how we reproduce the paper's latency shapes
without the authors' 2005 hardware.
"""

from __future__ import annotations

import os
import random
import zlib
from dataclasses import dataclass, fields

from repro.errors import (
    ChecksumError,
    PageNotFoundError,
    StorageError,
    TransientIOError,
)
from repro.faults.failpoints import fire
from repro.storage.constants import (
    CHECKSUM_OFFSET,
    CHECKSUM_SIZE,
    META_PAGE_ID,
    PAGE_SIZE,
)

# Byte offset of the 8-byte LSN in the common page header (see
# Page._COMMON_HEADER: page_id(4) | type(1) | flags(1) | pad(2) | lsn(8)).
_LSN_OFFSET = 8


def page_checksum(raw: bytes) -> int:
    """CRC32 over a page image, excluding the header's checksum field.

    Never returns 0 — that value is reserved for "no checksum stamped", so
    images written before checksums were enabled stay readable.
    """
    crc = zlib.crc32(raw[:CHECKSUM_OFFSET])
    crc = zlib.crc32(raw[CHECKSUM_OFFSET + CHECKSUM_SIZE:], crc)
    return crc or 1


def stamp_checksum(raw: bytes) -> bytes:
    """Return ``raw`` with its header CRC32 field filled in."""
    stamped = bytearray(raw)
    stamped[CHECKSUM_OFFSET : CHECKSUM_OFFSET + CHECKSUM_SIZE] = \
        page_checksum(raw).to_bytes(CHECKSUM_SIZE, "big")
    return bytes(stamped)


def verify_checksum(raw: bytes, page_id: int) -> None:
    """Raise :exc:`ChecksumError` if a stamped image fails verification."""
    stored = int.from_bytes(
        raw[CHECKSUM_OFFSET : CHECKSUM_OFFSET + CHECKSUM_SIZE], "big"
    )
    if stored == 0:
        return  # written before checksums were enabled
    computed = page_checksum(raw)
    if stored != computed:
        raise ChecksumError(
            f"page {page_id}: stored CRC32 {stored:#010x} does not match "
            f"the page image (torn write or bit-rot)",
            page_id=page_id,
            stored_crc=stored,
            computed_crc=computed,
            page_lsn=int.from_bytes(raw[_LSN_OFFSET : _LSN_OFFSET + 8], "big"),
        )


class RetryPolicy:
    """Bounded retry with deterministic, seeded exponential backoff.

    Only :class:`~repro.errors.TransientIOError` is retried — it is the one
    failure class a repeat attempt may clear (a permanent media error would
    fail again and is the repair subsystem's job instead).  Backoff is
    counted in abstract *steps* (1, 2, 4, … doubling per attempt, with a
    seeded jitter draw), never wall-clock sleeps: the simulation stays
    deterministic, and the cost model can price a step however it likes.
    """

    def __init__(self, max_attempts: int = 4, *, seed: int = 0) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.max_attempts = max_attempts
        self.rng = random.Random(seed)

    def backoff_steps(self, attempt: int) -> int:
        """Steps to back off after failed attempt ``attempt`` (1-based)."""
        ceiling = 1 << (attempt - 1)
        return ceiling + self.rng.randrange(ceiling)


@dataclass
class DiskStats:
    """Physical I/O counters (monotonic; take deltas across an experiment)."""

    reads: int = 0
    writes: int = 0
    sequential_reads: int = 0
    sequential_writes: int = 0
    allocations: int = 0
    free_reuses: int = 0        # allocations served from the free list
    read_retries: int = 0       # transient read errors absorbed by retry
    write_retries: int = 0      # transient write errors absorbed by retry
    backoff_steps: int = 0      # abstract backoff units spent across retries
    verify_failures: int = 0    # write read-back mismatches (torn/dropped)

    @property
    def random_reads(self) -> int:
        return self.reads - self.sequential_reads

    @property
    def random_writes(self) -> int:
        return self.writes - self.sequential_writes

    def snapshot(self) -> "DiskStats":
        """An independent copy of the current counter values."""
        return DiskStats(**{f.name: getattr(self, f.name) for f in fields(self)})

    def delta(self, since: "DiskStats") -> "DiskStats":
        """Elementwise difference against an earlier snapshot."""
        return DiskStats(
            **{
                f.name: getattr(self, f.name) - getattr(since, f.name)
                for f in fields(self)
            }
        )


class PageStore:
    """Abstract page store: fixed-size pages addressed by integer page id.

    Page id 0 (:data:`META_PAGE_ID`) always exists and holds the database
    boot block; :meth:`allocate` hands out ids 1, 2, 3, …
    """

    def __init__(self, page_size: int = PAGE_SIZE) -> None:
        self.page_size = page_size
        self.stats = DiskStats()
        self.checksums = False   # opt-in: stamp on write, verify on read
        self.retry: RetryPolicy | None = None   # opt-in transient-error retry
        self.verify_writes = False   # opt-in: read back and compare each write
        # Opt-in page reuse: the archive manager installs a PageFreeList
        # here when cold-history tiering reclaims migrated pages; allocate()
        # then prefers a reclaimed id over growing the store.
        self.free_list = None
        self._last_read_pid = -2
        self._last_write_pid = -2

    # -- interface -----------------------------------------------------------

    def read_page(self, page_id: int) -> bytes:
        raw = self._read_retrying(page_id)
        if self.checksums:
            verify_checksum(raw, page_id)
        self.stats.reads += 1
        if page_id == self._last_read_pid + 1:
            self.stats.sequential_reads += 1
        self._last_read_pid = page_id
        return raw

    def _read_retrying(self, page_id: int) -> bytes:
        if self.retry is None:
            return self._read(page_id)
        for attempt in range(1, self.retry.max_attempts + 1):
            try:
                return self._read(page_id)
            except TransientIOError:
                if attempt == self.retry.max_attempts:
                    raise
                self.stats.read_retries += 1
                self.stats.backoff_steps += self.retry.backoff_steps(attempt)
        raise AssertionError("unreachable")  # pragma: no cover

    def write_page(self, page_id: int, raw: bytes) -> None:
        if len(raw) != self.page_size:
            raise StorageError(
                f"page image is {len(raw)} bytes, page size is {self.page_size}"
            )
        fire("disk.write_page")
        if self.checksums:
            raw = stamp_checksum(raw)
        # Verification without at least one rewrite attempt would detect torn
        # and dropped writes but be unable to do anything about them, so
        # verify_writes alone grants a single retry.
        if self.retry is not None:
            attempts = self.retry.max_attempts
        else:
            attempts = 2 if self.verify_writes else 1
        for attempt in range(1, attempts + 1):
            try:
                self._write(page_id, raw)
            except TransientIOError:
                if attempt == attempts:
                    raise
                self.stats.write_retries += 1
                if self.retry is not None:
                    self.stats.backoff_steps += self.retry.backoff_steps(attempt)
                continue
            if not self.verify_writes:
                break
            try:
                landed = self._read(page_id)
            except StorageError:
                landed = None
            if landed == raw:
                break
            # Torn or dropped write: the image on the platter is not what we
            # sent.  Rewrite while we still hold the good bytes; if every
            # attempt tears, leave it — the read path / scrubber repairs it.
            self.stats.verify_failures += 1
        self.stats.writes += 1
        if page_id == self._last_write_pid + 1:
            self.stats.sequential_writes += 1
        self._last_write_pid = page_id

    def allocate(self) -> int:
        self.stats.allocations += 1
        if self.free_list is not None:
            pid = self.free_list.pop()
            if pid is not None:
                self.stats.free_reuses += 1
                return pid
        return self._allocate()

    @property
    def page_count(self) -> int:
        raise NotImplementedError

    def exists(self, page_id: int) -> bool:
        return 0 <= page_id < self.page_count

    def close(self) -> None:
        """Release underlying resources (idempotent)."""
        pass

    # -- backend hooks ---------------------------------------------------------

    def _read(self, page_id: int) -> bytes:
        raise NotImplementedError

    def _write(self, page_id: int, raw: bytes) -> None:
        raise NotImplementedError

    def _allocate(self) -> int:
        raise NotImplementedError


class InMemoryDisk(PageStore):
    """Dict-backed page store (the default for tests and benchmarks)."""

    def __init__(self, page_size: int = PAGE_SIZE) -> None:
        super().__init__(page_size)
        self._pages: dict[int, bytes] = {META_PAGE_ID: bytes(page_size)}
        self._next_pid = 1

    def _read(self, page_id: int) -> bytes:
        try:
            return self._pages[page_id]
        except KeyError:
            raise PageNotFoundError(f"page {page_id} does not exist") from None

    def _write(self, page_id: int, raw: bytes) -> None:
        if page_id >= self._next_pid and page_id != META_PAGE_ID:
            raise PageNotFoundError(f"page {page_id} was never allocated")
        self._pages[page_id] = raw

    def _allocate(self) -> int:
        pid = self._next_pid
        self._next_pid += 1
        self._pages[pid] = bytes(self.page_size)
        return pid

    @property
    def page_count(self) -> int:
        return self._next_pid


class FileDisk(PageStore):
    """File-backed page store: page *i* lives at byte offset ``i * page_size``."""

    def __init__(self, path: str | os.PathLike, page_size: int = PAGE_SIZE) -> None:
        super().__init__(page_size)
        self.path = os.fspath(path)
        preexisting = os.path.exists(self.path)
        self._file = open(self.path, "r+b" if preexisting else "w+b")
        if not preexisting:
            self._file.write(bytes(page_size))  # the meta page
            self._file.flush()
        size = os.fstat(self._file.fileno()).st_size
        if size % page_size:
            raise StorageError(f"{self.path}: size {size} not a page multiple")
        self._next_pid = max(1, size // page_size)

    def _read(self, page_id: int) -> bytes:
        if not self.exists(page_id):
            raise PageNotFoundError(f"page {page_id} does not exist")
        self._file.seek(page_id * self.page_size)
        raw = self._file.read(self.page_size)
        if len(raw) != self.page_size:
            raise PageNotFoundError(f"page {page_id}: short read")
        return raw

    def _write(self, page_id: int, raw: bytes) -> None:
        if not self.exists(page_id):
            raise PageNotFoundError(f"page {page_id} was never allocated")
        self._file.seek(page_id * self.page_size)
        self._file.write(raw)

    def _allocate(self) -> int:
        pid = self._next_pid
        self._next_pid += 1
        self._file.seek(pid * self.page_size)
        self._file.write(bytes(self.page_size))
        return pid

    @property
    def page_count(self) -> int:
        return self._next_pid

    def close(self) -> None:
        """Release underlying resources (idempotent)."""
        if not self._file.closed:
            self._file.flush()
            os.fsync(self._file.fileno())
            self._file.close()
