"""Storage-layer constants shared across the engine."""

from __future__ import annotations

import enum

PAGE_SIZE = 8192
"""Database page size in bytes.  The paper's experiments use 8 KB pages."""

COMMON_HEADER_SIZE = 20
"""Bytes of header shared by every page type: id, type, flags, LSN, CRC32."""

CHECKSUM_OFFSET = 16
"""Byte offset of the page-header CRC32 field.

Page codecs always serialize it as zero; the disk layer stamps the real
checksum at write time when checksums are enabled (and 0 therefore means
"no checksum stamped", so unchecked images stay readable).
"""

CHECKSUM_SIZE = 4
"""Bytes of the page-header CRC32 field."""

DATA_HEADER_SIZE = 64
"""Total header size of a data page (common header + versioning fields)."""

SLOT_SIZE = 2
"""Bytes per slot-array entry (an index into the page's version area)."""

VERSIONING_TAIL_SIZE = 14
"""Bytes appended to every record: VP(2) + Ttime(8) + SN(4) (Figure 1)."""

NO_PREVIOUS = 0xFFFF
"""VP value meaning 'this is the oldest version of the record in any page'."""

NO_PAGE = 0
"""Page-id value meaning 'no page' (page 0 is the metadata page)."""

META_PAGE_ID = 0
"""Page id of the database metadata (boot) page."""

ARCHIVE_PID_BIT = 1 << 31
"""High bit of a 4-byte page id marking an **archive reference**.

A ``history_page_id`` with this bit set does not name a page in the page
store: the low 31 bits index the archive manager's ref table, which maps
to (run id, block) in the append-only cold-history store.  The buffer
pool routes such ids to its ``archive_resolver`` instead of the disk (see
:mod:`repro.archive`).  Real page ids never reach this bit — it would
take 2**31 pages (16 TB at 8 KB/page) in a simulation-scale store.
"""


class PageType(enum.IntEnum):
    """Discriminator byte stored in every page header."""

    META = 0
    DATA_CURRENT = 1      # B-tree / TSB-tree leaf holding current records
    DATA_HISTORY = 2      # read-only page produced by a time split
    BTREE_INDEX = 3       # B-tree index node (key -> child)
    TSB_INDEX = 4         # TSB-tree index node (key x time rectangle -> child)
    PTT = 5               # persistent timestamp table node
    FREE = 255


class RecordFlag(enum.IntFlag):
    """Per-record flag bits (first byte of the on-page record image)."""

    NONE = 0
    DELETE_STUB = 1        # the 'special new version' marking a delete (§1.2)
    VP_IN_HISTORY = 2      # VP is a slot number in the history page, not local
