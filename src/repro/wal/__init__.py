"""Write-ahead logging and crash recovery (ARIES-style).

The paper's recovery manager gains "new log operations … to enable recovery
redo and undo [of] the versioned updates required for transaction time
support" (Section 1.2).  This package provides:

* :mod:`repro.wal.records` — the log record vocabulary, including the
  versioned-update operations (insert-version, update-version, delete-stub)
  and redo-only multi-page-image records for structure modifications
  (time splits, key splits, index posting),
* :mod:`repro.wal.log` — the log manager: append/force, durable-prefix
  semantics for crash simulation, per-transaction backchains,
* :mod:`repro.wal.checkpoint` — fuzzy checkpoints and the **redo scan start
  point**, the LSN the PTT garbage collector compares against (Section 2.2),
* :mod:`repro.wal.recovery` — analysis / redo / undo passes.

One deliberate omission, straight from the paper: **timestamping is never
logged**.  Lazy timestamping rewrites a TID into a timestamp on a latched
page without any log record; recovery instead relies on the PTT entry
surviving until every re-stamped page is provably on disk.
"""

from repro.wal.records import (
    AbortEnd,
    AbortTxn,
    BeginTxn,
    CheckpointBegin,
    CheckpointEnd,
    CommitTxn,
    CompensationRecord,
    LogRecord,
    MultiPageImage,
    PTTDelete,
    VersionOp,
    VersionOpKind,
)
from repro.wal.log import LogManager, LogStats
from repro.wal.checkpoint import CheckpointManager
from repro.wal.recovery import RecoveryReport, run_recovery

__all__ = [
    "LogRecord",
    "BeginTxn",
    "CommitTxn",
    "AbortTxn",
    "AbortEnd",
    "VersionOp",
    "VersionOpKind",
    "MultiPageImage",
    "CompensationRecord",
    "CheckpointBegin",
    "CheckpointEnd",
    "PTTDelete",
    "LogManager",
    "LogStats",
    "CheckpointManager",
    "run_recovery",
    "RecoveryReport",
]
