"""Log record vocabulary and binary codecs.

Every record serializes as ``tag(1) | tid(8) | prev_lsn(8) | body`` — the
log manager frames each record with a 4-byte length, and the LSN of a record
is its byte offset in the log, so LSN arithmetic matches a real log file.

``prev_lsn`` threads the per-transaction backchain used by the undo pass
(0 = no previous record for this transaction).  System records (checkpoints,
structure modifications) use tid 0.

Design notes:

* **Versioned updates** (:class:`VersionOp`) are physiological: redo applies
  the version to the page it names, guarded by the page LSN; undo is logical
  (remove the transaction's uncommitted version wherever the key now lives),
  because a key split may have moved the record after the update.
* **Structure modifications** (:class:`MultiPageImage`) are redo-only and
  atomic: a single record carries the after-images of every page touched by
  a time split / key split / index post, so a crash can never leave half a
  split behind.
* **Compensation records** (:class:`CompensationRecord`) make undo
  restartable: redo-only page images plus ``undo_next_lsn``.
* **Commit** records carry the transaction's chosen timestamp and whether a
  PTT entry was written; redo of a commit re-inserts a missing PTT entry
  (logical, idempotent).  :class:`PTTDelete` logs PTT garbage collection.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import LogFormatError


class VersionOpKind(enum.IntEnum):
    INSERT = 0          # first version of a key
    UPDATE = 1          # new version of an existing key
    DELETE = 2          # delete stub version


class SMOReason(enum.IntEnum):
    TIME_SPLIT = 0
    KEY_SPLIT = 1
    INDEX_POST = 2
    PTT_NODE = 3
    OTHER = 4


def _put_bytes(chunks: list[bytes], data: bytes, width: int = 4) -> None:
    chunks.append(len(data).to_bytes(width, "big"))
    chunks.append(data)


class _Reader:
    """Cursor over a record body."""

    def __init__(self, data: bytes, offset: int = 0) -> None:
        self.data = data
        self.offset = offset

    def u(self, width: int) -> int:
        value = int.from_bytes(self.data[self.offset : self.offset + width], "big")
        self.offset += width
        return value

    def blob(self, width: int = 4) -> bytes:
        length = self.u(width)
        out = bytes(self.data[self.offset : self.offset + length])
        if len(out) != length:
            raise LogFormatError("truncated log record body")
        self.offset += length
        return out


@dataclass
class LogRecord:
    """Base class.  ``lsn`` is assigned by the log manager on append."""

    tid: int = 0
    prev_lsn: int = 0
    lsn: int = field(default=0, compare=False)

    TAG = -1
    REDO_ONLY = False

    def affected_pages(self) -> tuple[int, ...]:
        """Page ids whose content this record's redo modifies.

        The media-recovery log archive indexes records by this, so
        single-page restore can replay exactly the records that touch one
        page.  Bookkeeping records (begin/commit/checkpoint/PTT delete)
        touch no page directly and return the empty tuple.
        """
        return ()

    # -- codec ------------------------------------------------------------

    def body_bytes(self) -> bytes:
        """Serialize this record type's body fields."""
        return b""

    @classmethod
    def from_body(cls, tid: int, prev_lsn: int, body: _Reader) -> "LogRecord":
        """Decode this record type's body fields from a log image."""
        return cls(tid=tid, prev_lsn=prev_lsn)

    def to_bytes(self) -> bytes:
        """Serialize to the fixed-size on-disk image."""
        return b"".join(
            (
                self.TAG.to_bytes(1, "big"),
                self.tid.to_bytes(8, "big"),
                self.prev_lsn.to_bytes(8, "big"),
                self.body_bytes(),
            )
        )

    @staticmethod
    def decode(raw: bytes) -> "LogRecord":
        if len(raw) < 17:
            raise LogFormatError("log record shorter than its fixed header")
        tag = raw[0]
        tid = int.from_bytes(raw[1:9], "big")
        prev_lsn = int.from_bytes(raw[9:17], "big")
        try:
            cls = _RECORD_TYPES[tag]
        except KeyError:
            raise LogFormatError(f"unknown log record tag {tag}") from None
        return cls.from_body(tid, prev_lsn, _Reader(raw, 17))


@dataclass
class BeginTxn(LogRecord):
    TAG = 1


@dataclass
class CommitTxn(LogRecord):
    """Transaction commit; carries the commit timestamp chosen at commit.

    ``ptt`` is True when the transaction updated an immortal table and thus
    wrote a (TID, Ttime, SN) entry to the persistent timestamp table as part
    of commit processing (Section 2.2 stage III).
    """

    TAG = 2
    ttime: int = 0
    sn: int = 0
    ptt: bool = False

    def body_bytes(self) -> bytes:
        """Serialize this record type's body fields."""
        return (
            self.ttime.to_bytes(8, "big")
            + self.sn.to_bytes(4, "big")
            + (b"\x01" if self.ptt else b"\x00")
        )

    @classmethod
    def from_body(cls, tid: int, prev_lsn: int, body: _Reader) -> "CommitTxn":
        """Decode this record type's body fields from a log image."""
        ttime = body.u(8)
        sn = body.u(4)
        ptt = bool(body.u(1))
        return cls(tid=tid, prev_lsn=prev_lsn, ttime=ttime, sn=sn, ptt=ptt)


@dataclass
class AbortTxn(LogRecord):
    """Marks the start of rollback for a transaction."""

    TAG = 3


@dataclass
class AbortEnd(LogRecord):
    """Rollback finished; the transaction is fully undone."""

    TAG = 4


@dataclass
class VersionOp(LogRecord):
    """A versioned update: a new record version added to a data page."""

    TAG = 5
    kind: VersionOpKind = VersionOpKind.INSERT
    table_id: int = 0
    page_id: int = 0
    key: bytes = b""
    payload: bytes = b""

    def affected_pages(self) -> tuple[int, ...]:
        return (self.page_id,)

    def body_bytes(self) -> bytes:
        """Serialize this record type's body fields."""
        chunks: list[bytes] = [
            int(self.kind).to_bytes(1, "big"),
            self.table_id.to_bytes(4, "big"),
            self.page_id.to_bytes(4, "big"),
        ]
        _put_bytes(chunks, self.key, 2)
        _put_bytes(chunks, self.payload, 4)
        return b"".join(chunks)

    @classmethod
    def from_body(cls, tid: int, prev_lsn: int, body: _Reader) -> "VersionOp":
        """Decode this record type's body fields from a log image."""
        kind = VersionOpKind(body.u(1))
        table_id = body.u(4)
        page_id = body.u(4)
        key = body.blob(2)
        payload = body.blob(4)
        return cls(
            tid=tid, prev_lsn=prev_lsn, kind=kind,
            table_id=table_id, page_id=page_id, key=key, payload=payload,
        )


@dataclass
class MultiPageImage(LogRecord):
    """Redo-only, atomic after-images for a structure modification."""

    TAG = 6
    REDO_ONLY = True
    reason: SMOReason = SMOReason.OTHER
    images: list[tuple[int, bytes]] = field(default_factory=list)

    def affected_pages(self) -> tuple[int, ...]:
        return tuple(page_id for page_id, _ in self.images)

    def body_bytes(self) -> bytes:
        """Serialize this record type's body fields."""
        chunks: list[bytes] = [
            int(self.reason).to_bytes(1, "big"),
            len(self.images).to_bytes(2, "big"),
        ]
        for page_id, image in self.images:
            chunks.append(page_id.to_bytes(4, "big"))
            _put_bytes(chunks, image, 4)
        return b"".join(chunks)

    @classmethod
    def from_body(cls, tid: int, prev_lsn: int, body: _Reader) -> "MultiPageImage":
        """Decode this record type's body fields from a log image."""
        reason = SMOReason(body.u(1))
        count = body.u(2)
        images = []
        for _ in range(count):
            page_id = body.u(4)
            images.append((page_id, body.blob(4)))
        return cls(tid=tid, prev_lsn=prev_lsn, reason=reason, images=images)


@dataclass
class CompensationRecord(LogRecord):
    """CLR: records one undone action as redo-only page after-images."""

    TAG = 7
    REDO_ONLY = True
    undo_next_lsn: int = 0
    images: list[tuple[int, bytes]] = field(default_factory=list)

    def affected_pages(self) -> tuple[int, ...]:
        return tuple(page_id for page_id, _ in self.images)

    def body_bytes(self) -> bytes:
        """Serialize this record type's body fields."""
        chunks: list[bytes] = [
            self.undo_next_lsn.to_bytes(8, "big"),
            len(self.images).to_bytes(2, "big"),
        ]
        for page_id, image in self.images:
            chunks.append(page_id.to_bytes(4, "big"))
            _put_bytes(chunks, image, 4)
        return b"".join(chunks)

    @classmethod
    def from_body(cls, tid: int, prev_lsn: int, body: _Reader) -> "CompensationRecord":
        """Decode this record type's body fields from a log image."""
        undo_next_lsn = body.u(8)
        count = body.u(2)
        images = []
        for _ in range(count):
            page_id = body.u(4)
            images.append((page_id, body.blob(4)))
        return cls(
            tid=tid, prev_lsn=prev_lsn,
            undo_next_lsn=undo_next_lsn, images=images,
        )


@dataclass
class CheckpointBegin(LogRecord):
    TAG = 8


class TxnPhase(enum.IntEnum):
    ACTIVE = 0
    ABORTING = 1
    PREPARED = 2   # voted yes in 2PC; outcome owned by the coordinator


@dataclass
class CheckpointEnd(LogRecord):
    """Fuzzy checkpoint end: active-transaction table + dirty page table."""

    TAG = 9
    begin_lsn: int = 0
    att: dict[int, tuple[int, int]] = field(default_factory=dict)
    """{tid: (last_lsn, phase)} for transactions active at checkpoint begin."""
    dpt: dict[int, int] = field(default_factory=dict)
    """{page_id: recLSN} for pages dirty at checkpoint begin."""
    max_tid: int = 0
    """Highest TID allocated when the checkpoint was taken.  Recovery's
    TID-floor scan starts from this instead of reading the whole log (old
    images without the field decode as 0, forcing the full scan)."""

    def body_bytes(self) -> bytes:
        """Serialize this record type's body fields."""
        chunks: list[bytes] = [
            self.begin_lsn.to_bytes(8, "big"),
            len(self.att).to_bytes(4, "big"),
        ]
        for tid, (last_lsn, phase) in sorted(self.att.items()):
            chunks.append(tid.to_bytes(8, "big"))
            chunks.append(last_lsn.to_bytes(8, "big"))
            chunks.append(int(phase).to_bytes(1, "big"))
        chunks.append(len(self.dpt).to_bytes(4, "big"))
        for page_id, rec_lsn in sorted(self.dpt.items()):
            chunks.append(page_id.to_bytes(4, "big"))
            chunks.append(rec_lsn.to_bytes(8, "big"))
        chunks.append(self.max_tid.to_bytes(8, "big"))
        return b"".join(chunks)

    @classmethod
    def from_body(cls, tid: int, prev_lsn: int, body: _Reader) -> "CheckpointEnd":
        """Decode this record type's body fields from a log image."""
        begin_lsn = body.u(8)
        att: dict[int, tuple[int, int]] = {}
        for _ in range(body.u(4)):
            att_tid = body.u(8)
            att[att_tid] = (body.u(8), body.u(1))
        dpt: dict[int, int] = {}
        for _ in range(body.u(4)):
            page_id = body.u(4)
            dpt[page_id] = body.u(8)
        max_tid = body.u(8)   # 0 when decoding a pre-max_tid image
        return cls(
            tid=tid, prev_lsn=prev_lsn,
            begin_lsn=begin_lsn, att=att, dpt=dpt, max_tid=max_tid,
        )


@dataclass
class PTTDelete(LogRecord):
    """Garbage collection removed the PTT entry for ``subject_tid``."""

    TAG = 10
    REDO_ONLY = True
    subject_tid: int = 0

    def body_bytes(self) -> bytes:
        """Serialize this record type's body fields."""
        return self.subject_tid.to_bytes(8, "big")

    @classmethod
    def from_body(cls, tid: int, prev_lsn: int, body: _Reader) -> "PTTDelete":
        """Decode this record type's body fields from a log image."""
        return cls(tid=tid, prev_lsn=prev_lsn, subject_tid=body.u(8))


@dataclass
class StampOp(LogRecord):
    """Eager timestamping wrote a timestamp into a record before commit.

    Only the eager baseline emits these — they are exactly the "extra log
    operations" the paper charges against eager timestamping.  Redo stamps
    the named version again (idempotent: stamping a stamped record is a
    no-op at redo time).
    """

    TAG = 11
    REDO_ONLY = True
    table_id: int = 0
    page_id: int = 0
    key: bytes = b""
    ttime: int = 0
    sn: int = 0

    def affected_pages(self) -> tuple[int, ...]:
        return (self.page_id,)

    def body_bytes(self) -> bytes:
        """Serialize this record type's body fields."""
        chunks: list[bytes] = [
            self.table_id.to_bytes(4, "big"),
            self.page_id.to_bytes(4, "big"),
        ]
        _put_bytes(chunks, self.key, 2)
        chunks.append(self.ttime.to_bytes(8, "big"))
        chunks.append(self.sn.to_bytes(4, "big"))
        return b"".join(chunks)

    @classmethod
    def from_body(cls, tid: int, prev_lsn: int, body: _Reader) -> "StampOp":
        """Decode this record type's body fields from a log image."""
        table_id = body.u(4)
        page_id = body.u(4)
        key = body.blob(2)
        ttime = body.u(8)
        sn = body.u(4)
        return cls(
            tid=tid, prev_lsn=prev_lsn, table_id=table_id,
            page_id=page_id, key=key, ttime=ttime, sn=sn,
        )


@dataclass
class InPlaceUpdate(LogRecord):
    """Conventional (non-versioned) table update: payload replaced in place.

    Carries both images: redo installs ``after``, undo restores ``before``.
    Immortal tables never use this — their updates are :class:`VersionOp`s.
    """

    TAG = 12
    table_id: int = 0
    page_id: int = 0
    key: bytes = b""
    before: bytes = b""
    after: bytes = b""

    def affected_pages(self) -> tuple[int, ...]:
        return (self.page_id,)

    def body_bytes(self) -> bytes:
        """Serialize this record type's body fields."""
        chunks: list[bytes] = [
            self.table_id.to_bytes(4, "big"),
            self.page_id.to_bytes(4, "big"),
        ]
        _put_bytes(chunks, self.key, 2)
        _put_bytes(chunks, self.before, 4)
        _put_bytes(chunks, self.after, 4)
        return b"".join(chunks)

    @classmethod
    def from_body(cls, tid: int, prev_lsn: int, body: _Reader) -> "InPlaceUpdate":
        """Decode this record type's body fields from a log image."""
        table_id = body.u(4)
        page_id = body.u(4)
        key = body.blob(2)
        before = body.blob(4)
        after = body.blob(4)
        return cls(
            tid=tid, prev_lsn=prev_lsn, table_id=table_id,
            page_id=page_id, key=key, before=before, after=after,
        )


@dataclass
class PrepareTxn(LogRecord):
    """Participant vote record for two-phase commit (presumed abort).

    Force-logged before the participant answers "prepared": after a crash
    the transaction must be restored *in doubt* — its write locks re-taken,
    its versions left TID-marked — because only the coordinator knows the
    outcome.  The record therefore carries everything lock reinstatement
    needs: the global transaction id and the (table_id, key) write set.
    ``ptt`` remembers whether the transaction touched an immortal table, so
    a post-recovery commit decision writes the same PTT entry the original
    commit would have.
    """

    TAG = 13
    gtid: int = 0
    ptt: bool = False
    writes: list[tuple[int, bytes]] = field(default_factory=list)

    def body_bytes(self) -> bytes:
        """Serialize this record type's body fields."""
        chunks: list[bytes] = [
            self.gtid.to_bytes(8, "big"),
            (b"\x01" if self.ptt else b"\x00"),
            len(self.writes).to_bytes(4, "big"),
        ]
        for table_id, key in self.writes:
            chunks.append(table_id.to_bytes(4, "big"))
            _put_bytes(chunks, key, 2)
        return b"".join(chunks)

    @classmethod
    def from_body(cls, tid: int, prev_lsn: int, body: _Reader) -> "PrepareTxn":
        """Decode this record type's body fields from a log image."""
        gtid = body.u(8)
        ptt = bool(body.u(1))
        writes = []
        for _ in range(body.u(4)):
            table_id = body.u(4)
            writes.append((table_id, body.blob(2)))
        return cls(tid=tid, prev_lsn=prev_lsn, gtid=gtid, ptt=ptt, writes=writes)


@dataclass
class CoordDecision(LogRecord):
    """Coordinator outcome record for a cross-shard transaction.

    Commit decisions are forced before any participant applies them — the
    decision *is* the commit point — and carry the authority-issued commit
    timestamp so post-crash resolution stamps the identical time on every
    shard.  Abort decisions are logged unforced: presumed abort means a lost
    abort record resolves to abort anyway.
    """

    TAG = 14
    gtid: int = 0
    commit: bool = False
    ttime: int = 0
    sn: int = 0
    shard_ids: list[int] = field(default_factory=list)

    def body_bytes(self) -> bytes:
        """Serialize this record type's body fields."""
        chunks: list[bytes] = [
            self.gtid.to_bytes(8, "big"),
            (b"\x01" if self.commit else b"\x00"),
            self.ttime.to_bytes(8, "big"),
            self.sn.to_bytes(4, "big"),
            len(self.shard_ids).to_bytes(2, "big"),
        ]
        for shard_id in self.shard_ids:
            chunks.append(shard_id.to_bytes(2, "big"))
        return b"".join(chunks)

    @classmethod
    def from_body(cls, tid: int, prev_lsn: int, body: _Reader) -> "CoordDecision":
        """Decode this record type's body fields from a log image."""
        gtid = body.u(8)
        commit = bool(body.u(1))
        ttime = body.u(8)
        sn = body.u(4)
        shard_ids = [body.u(2) for _ in range(body.u(2))]
        return cls(
            tid=tid, prev_lsn=prev_lsn, gtid=gtid, commit=commit,
            ttime=ttime, sn=sn, shard_ids=shard_ids,
        )


@dataclass
class CoordForget(LogRecord):
    """Every participant acknowledged the decision; the entry can be dropped.

    Replay stops tracking the gtid once its forget record appears, keeping
    the coordinator's in-memory decision table bounded (the presumed-abort
    "forget" step).
    """

    TAG = 15
    gtid: int = 0

    def body_bytes(self) -> bytes:
        """Serialize this record type's body fields."""
        return self.gtid.to_bytes(8, "big")

    @classmethod
    def from_body(cls, tid: int, prev_lsn: int, body: _Reader) -> "CoordForget":
        """Decode this record type's body fields from a log image."""
        return cls(tid=tid, prev_lsn=prev_lsn, gtid=body.u(8))


_RECORD_TYPES: dict[int, type[LogRecord]] = {
    cls.TAG: cls
    for cls in (
        BeginTxn, CommitTxn, AbortTxn, AbortEnd, VersionOp,
        MultiPageImage, CompensationRecord, CheckpointBegin,
        CheckpointEnd, PTTDelete, StampOp, InPlaceUpdate,
        PrepareTxn, CoordDecision, CoordForget,
    )
}
