"""Crash recovery: ARIES-style analysis, redo, and undo passes.

The recovery manager understands the paper's versioned log operations:

* redo of a :class:`~repro.wal.records.VersionOp` re-applies the version to
  its page, guarded by the page LSN;
* redo of a commit record restores the TID → timestamp mapping (VTT cache,
  plus an idempotent PTT insert for immortal transactions), which is what
  lets lazy timestamping finish *after* the crash for versions that redo
  just recreated TID-marked;
* undo of a loser's versioned update is **logical** — the version is removed
  from wherever the key currently lives, because key splits may have moved
  it — and is made restartable by redo-only compensation records carrying
  page after-images;
* timestamping itself is never redone, because it was never logged.

The engine hands recovery a support object exposing ``log``, ``buffer``,
``ptt``, ``tsmgr`` and a ``locate_current_page(table_id, key)`` callable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol

from repro.clock import Timestamp
from repro.errors import RecoveryError, StorageError
from repro.storage.buffer import BufferPool
from repro.storage.page import DataPage, Page, decode_page
from repro.storage.record import RecordVersion
from repro.wal.log import LogManager

if TYPE_CHECKING:  # pragma: no cover - avoids a circular import at runtime
    from repro.timestamp.manager import TimestampManager
    from repro.timestamp.ptt import PersistentTimestampTable
from repro.wal.records import (
    AbortEnd,
    AbortTxn,
    BeginTxn,
    CheckpointEnd,
    CommitTxn,
    CompensationRecord,
    InPlaceUpdate,
    MultiPageImage,
    PrepareTxn,
    PTTDelete,
    StampOp,
    TxnPhase,
    VersionOp,
    VersionOpKind,
)


class RecoverySupport(Protocol):
    """What recovery needs from the engine."""

    log: LogManager
    buffer: BufferPool
    ptt: "PersistentTimestampTable"
    tsmgr: "TimestampManager"

    def locate_current_page(self, table_id: int, key: bytes) -> DataPage | None:
        """The current page that holds (or would hold) ``key``."""
        ...


@dataclass
class RecoveryReport:
    """What recovery did, for tests and operator visibility."""

    checkpoint_lsn: int = 0
    redo_scan_start: int = 0
    records_analyzed: int = 0
    redo_applied: int = 0
    redo_skipped: int = 0
    committed_restored: int = 0
    losers: list[int] = field(default_factory=list)
    undo_actions: int = 0
    in_doubt: list[tuple[int, int]] = field(default_factory=list)
    """[(tid, prepare_lsn)] for transactions prepared but undecided at the
    crash.  Undo leaves them alone — the engine reinstates them with their
    locks, and the 2PC coordinator decides their fate."""
    max_commit_ts: Timestamp | None = None
    """Largest commit timestamp seen during the redo scan, used (with the
    checkpointed high water) to restore clock monotonicity after restart."""
    first_commit_lsn: int | None = None
    """Earliest CommitTxn seen by analysis.  Redo must scan from no later
    than this: restoring a committed TID→timestamp mapping (and its PTT
    entry) happens by replaying the commit record, and a commit that lands
    after the last checkpoint with no dirty page behind it — e.g. the
    resolution of an in-doubt prepared transaction — would otherwise fall
    outside the dirty-page redo window and lose its mapping."""


def run_recovery(support: RecoverySupport) -> RecoveryReport:
    """Run analysis, redo, and undo; returns a :class:`RecoveryReport`."""
    report = RecoveryReport()
    att, dpt = _analysis(support, report)
    _redo(support, report, dpt)
    _undo(support, report, att)
    support.log.force()
    return report


# ---------------------------------------------------------------------------
# Analysis
# ---------------------------------------------------------------------------

def _analysis(
    support: RecoverySupport, report: RecoveryReport
) -> tuple[dict[int, tuple[int, int]], dict[int, int]]:
    log = support.log
    att: dict[int, tuple[int, int]] = {}
    dpt: dict[int, int] = {}
    scan_from = 0
    master = log.master_checkpoint_lsn
    if master:
        end = log.record_at(master)
        if not isinstance(end, CheckpointEnd):
            raise RecoveryError(f"master LSN {master} is not a checkpoint end")
        att = dict(end.att)
        dpt = dict(end.dpt)
        scan_from = end.begin_lsn
        report.checkpoint_lsn = master

    for rec in log.records_from(scan_from):
        report.records_analyzed += 1
        if isinstance(rec, BeginTxn):
            att[rec.tid] = (rec.lsn, int(TxnPhase.ACTIVE))
        elif isinstance(rec, CommitTxn):
            att.pop(rec.tid, None)
            if report.first_commit_lsn is None:
                report.first_commit_lsn = rec.lsn
        elif isinstance(rec, AbortTxn):
            att[rec.tid] = (rec.lsn, int(TxnPhase.ABORTING))
        elif isinstance(rec, PrepareTxn):
            att[rec.tid] = (rec.lsn, int(TxnPhase.PREPARED))
        elif isinstance(rec, AbortEnd):
            att.pop(rec.tid, None)
        elif isinstance(rec, (VersionOp, InPlaceUpdate, StampOp)):
            phase = att.get(rec.tid, (0, int(TxnPhase.ACTIVE)))[1]
            att[rec.tid] = (rec.lsn, phase)
            dpt.setdefault(rec.page_id, rec.lsn)
        elif isinstance(rec, MultiPageImage):
            for page_id, _ in rec.images:
                dpt.setdefault(page_id, rec.lsn)
        elif isinstance(rec, CompensationRecord):
            phase = att.get(rec.tid, (0, int(TxnPhase.ABORTING)))[1]
            att[rec.tid] = (rec.lsn, int(TxnPhase.ABORTING))
            for page_id, _ in rec.images:
                dpt.setdefault(page_id, rec.lsn)
        # CheckpointBegin / CheckpointEnd / PTTDelete need no analysis action.
    return att, dpt


# ---------------------------------------------------------------------------
# Redo
# ---------------------------------------------------------------------------

def _page_lsn(buffer: BufferPool, page_id: int) -> int:
    """The LSN currently stamped on a page, without decoding a cold image."""
    if buffer.contains(page_id):
        return buffer.get_page(page_id).lsn
    try:
        raw = buffer.disk.read_page(page_id)
    except StorageError:
        if buffer.fault_handler is None:
            raise
        # A damaged image found during redo: go through the buffer pool so
        # the media-recovery fault handler can repair it, then redo resumes
        # against the restored page.
        return buffer.get_page(page_id).lsn
    return Page.read_common_header(raw)[3]


def _install_images(
    buffer: BufferPool, images: list[tuple[int, bytes]], lsn: int,
    report: RecoveryReport,
) -> None:
    for page_id, image in images:
        if _page_lsn(buffer, page_id) >= lsn:
            report.redo_skipped += 1
            continue
        page = decode_page(image)
        page.lsn = max(page.lsn, lsn)
        buffer.replace_page(page)
        report.redo_applied += 1


def _redo(
    support: RecoverySupport, report: RecoveryReport, dpt: dict[int, int]
) -> None:
    log, buffer = support.log, support.buffer
    candidates = list(dpt.values())
    if report.first_commit_lsn is not None:
        # Replaying from an earlier LSN is safe (page-LSN checks make the
        # extra VersionOps no-ops) and guarantees every post-checkpoint
        # commit record re-runs its PTT/VTT restoration.
        candidates.append(report.first_commit_lsn)
    redo_start = min(candidates) if candidates else log.end_lsn
    report.redo_scan_start = redo_start

    for rec in log.records_from(redo_start):
        if isinstance(rec, CommitTxn):
            ts = Timestamp(rec.ttime, rec.sn)
            support.tsmgr.restore_committed(rec.tid, ts)
            if rec.ptt:
                support.ptt.insert(rec.tid, ts, rec_lsn=rec.lsn)
            report.committed_restored += 1
            if report.max_commit_ts is None or ts > report.max_commit_ts:
                report.max_commit_ts = ts
        elif isinstance(rec, PTTDelete):
            support.ptt.delete(rec.subject_tid, rec_lsn=rec.lsn)
        elif isinstance(rec, VersionOp):
            _redo_version_op(buffer, rec, report)
        elif isinstance(rec, InPlaceUpdate):
            _redo_in_place(buffer, rec, report)
        elif isinstance(rec, StampOp):
            _redo_stamp(buffer, rec, report)
        elif isinstance(rec, (MultiPageImage, CompensationRecord)):
            _install_images(buffer, rec.images, rec.lsn, report)


def _fetch_data_page(buffer: BufferPool, page_id: int) -> DataPage:
    page = buffer.get_page(page_id)
    if not isinstance(page, DataPage):
        raise RecoveryError(f"redo target page {page_id} is not a data page")
    return page


def _redo_version_op(
    buffer: BufferPool, rec: VersionOp, report: RecoveryReport
) -> None:
    if _page_lsn(buffer, rec.page_id) >= rec.lsn:
        report.redo_skipped += 1
        return
    page = _fetch_data_page(buffer, rec.page_id)
    version = RecordVersion.new(
        rec.key, rec.payload, rec.tid,
        delete_stub=rec.kind == VersionOpKind.DELETE,
    )
    page.insert_version(version)
    page.lsn = rec.lsn
    buffer.mark_dirty(rec.page_id, rec.lsn)
    report.redo_applied += 1


def _redo_in_place(
    buffer: BufferPool, rec: InPlaceUpdate, report: RecoveryReport
) -> None:
    if _page_lsn(buffer, rec.page_id) >= rec.lsn:
        report.redo_skipped += 1
        return
    page = _fetch_data_page(buffer, rec.page_id)
    page.replace_payload_in_place(rec.key, rec.after)
    page.lsn = rec.lsn
    buffer.mark_dirty(rec.page_id, rec.lsn)
    report.redo_applied += 1


def _redo_stamp(buffer: BufferPool, rec: StampOp, report: RecoveryReport) -> None:
    if _page_lsn(buffer, rec.page_id) >= rec.lsn:
        report.redo_skipped += 1
        return
    page = _fetch_data_page(buffer, rec.page_id)
    for version in page.chain(rec.key):
        if not version.is_timestamped and version.tid == rec.tid:
            version.stamp(Timestamp(rec.ttime, rec.sn))
            break
    page.lsn = rec.lsn
    buffer.mark_dirty(rec.page_id, rec.lsn)
    report.redo_applied += 1


# ---------------------------------------------------------------------------
# Undo
# ---------------------------------------------------------------------------

def _undo(
    support: RecoverySupport,
    report: RecoveryReport,
    att: dict[int, tuple[int, int]],
) -> None:
    log, buffer = support.log, support.buffer
    # Prepared transactions are NOT losers: they voted yes, their outcome
    # belongs to the coordinator.  Undo must not touch their updates — the
    # engine reinstates them in doubt (locks held, versions TID-marked)
    # until resolution commits or aborts them.
    report.in_doubt = sorted(
        (tid, last) for tid, (last, phase) in att.items()
        if phase == int(TxnPhase.PREPARED)
    )
    att = {
        tid: entry for tid, entry in att.items()
        if entry[1] != int(TxnPhase.PREPARED)
    }
    report.losers = sorted(att)
    # next LSN to undo for each loser transaction
    cursor: dict[int, int] = {tid: last for tid, (last, _) in att.items()}
    last_clr: dict[int, int] = {tid: 0 for tid in att}

    while cursor:
        tid = max(cursor, key=cursor.get)
        lsn = cursor[tid]
        if lsn == 0:
            _finish_loser(support, tid, last_clr[tid])
            del cursor[tid]
            continue
        rec = log.record_at(lsn)
        if isinstance(rec, CompensationRecord):
            cursor[tid] = rec.undo_next_lsn
        elif isinstance(rec, (VersionOp, InPlaceUpdate)):
            last_clr[tid] = _undo_update(support, rec, last_clr[tid])
            report.undo_actions += 1
            cursor[tid] = rec.prev_lsn
        elif isinstance(rec, BeginTxn):
            _finish_loser(support, tid, last_clr[tid])
            del cursor[tid]
        else:
            # Redo-only / bookkeeping records: follow the backchain.
            cursor[tid] = rec.prev_lsn


def _undo_update(
    support: RecoverySupport,
    rec: VersionOp | InPlaceUpdate,
    prev_clr_lsn: int,
) -> int:
    """Logically undo one update; append its CLR.  Returns the CLR's LSN."""
    page = support.locate_current_page(rec.table_id, rec.key)
    if page is None:
        raise RecoveryError(
            f"undo: no current page for key {rec.key!r} of table {rec.table_id}"
        )
    if isinstance(rec, VersionOp):
        head = page.head(rec.key)
        if head is None or head.is_timestamped or head.tid != rec.tid:
            raise RecoveryError(
                f"undo: chain head of {rec.key!r} is not TID {rec.tid}'s version"
            )
        page.remove_newest_version(rec.key)
    else:
        page.replace_payload_in_place(rec.key, rec.before)
    clr_lsn = support.log.next_lsn
    page.lsn = clr_lsn
    clr = CompensationRecord(
        tid=rec.tid,
        prev_lsn=prev_clr_lsn,
        undo_next_lsn=rec.prev_lsn,
        images=[(page.page_id, page.to_bytes())],
    )
    assigned = support.log.append(clr)
    assert assigned == clr_lsn
    support.buffer.mark_dirty(page.page_id, clr_lsn)
    return clr_lsn


def _finish_loser(support: RecoverySupport, tid: int, prev_clr_lsn: int) -> None:
    support.log.append(AbortEnd(tid=tid, prev_lsn=prev_clr_lsn))
    support.tsmgr.on_abort(tid)
