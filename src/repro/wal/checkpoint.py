"""Fuzzy checkpoints and the redo scan start point.

A checkpoint logs the active-transaction table and the dirty page table
without necessarily flushing anything (``flush=False``).  The **redo scan
start point** — the LSN recovery's redo pass would begin at — is the
minimum recLSN in the last checkpoint's dirty page table.

The redo scan start point matters beyond recovery: Section 2.2 gates PTT
garbage collection on it.  Timestamping is not logged, so a PTT entry may
only be dropped once "the redo scan start point LSN becomes greater than
[the transaction's] VTT LSN", proving that every page re-stamped for that
transaction has reached disk.  Checkpointing (optionally with a flush) is
what advances the scan point and lets the PTT shrink.
"""

from __future__ import annotations

from typing import Callable

from repro.faults.failpoints import fire
from repro.storage.buffer import BufferPool
from repro.wal.log import LogManager
from repro.wal.records import CheckpointBegin, CheckpointEnd


class CheckpointManager:
    """Takes checkpoints and answers "where would redo start?"."""

    def __init__(self, log: LogManager, buffer: BufferPool) -> None:
        self.log = log
        self.buffer = buffer
        self.checkpoints_taken = 0
        # Called with the flush flag after each completed checkpoint.  The
        # media-recovery manager refreshes its fuzzy page backup here on
        # flush checkpoints (every disk image is current right after one).
        self.post_checkpoint_hooks: list[Callable[[bool], None]] = []

    def take(
        self,
        att: dict[int, tuple[int, int]] | None = None,
        *,
        flush: bool = False,
        max_tid: int = 0,
    ) -> int:
        """Take a checkpoint; returns the LSN of its end record.

        ``att`` is {tid: (last_lsn, phase)} for transactions currently
        active (the engine supplies it).  ``flush=True`` writes all dirty
        pages first, which empties the dirty page table and advances the
        redo scan start point as far as possible — the knob the PTT garbage
        collector depends on.  ``max_tid`` is the highest TID allocated so
        far; persisting it lets recovery's TID-floor scan skip everything
        before the redo scan start point.
        """
        fire("checkpoint.begin")
        if flush:
            self.buffer.flush_all()
            fire("checkpoint.flushed")
        begin_lsn = self.log.append(CheckpointBegin())
        end = CheckpointEnd(
            begin_lsn=begin_lsn,
            att=dict(att or {}),
            dpt=self.buffer.dirty_page_table(),
            max_tid=max_tid,
        )
        end_lsn = self.log.append(end)
        fire("checkpoint.logged")
        self.log.force()
        fire("checkpoint.master")
        self.log.set_master_checkpoint(end_lsn)
        fire("checkpoint.end")
        self.checkpoints_taken += 1
        for hook in self.post_checkpoint_hooks:
            hook(flush)
        return end_lsn

    def checkpointed_max_tid(self) -> int:
        """The TID floor recorded by the last durable checkpoint (0 if none)."""
        master = self.log.master_checkpoint_lsn
        if not master:
            return 0
        end = self.log.record_at(master)
        if not isinstance(end, CheckpointEnd):  # pragma: no cover - defensive
            return 0
        return end.max_tid

    def redo_scan_start(self) -> int:
        """The LSN redo would start from, per the last durable checkpoint.

        Returns 0 when no checkpoint has been taken (redo would scan the
        whole log, and no PTT entry is collectable yet).
        """
        master = self.log.master_checkpoint_lsn
        if not master:
            return 0
        end = self.log.record_at(master)
        if not isinstance(end, CheckpointEnd):  # pragma: no cover - defensive
            return 0
        if end.dpt:
            return min(end.dpt.values())
        return end.begin_lsn
