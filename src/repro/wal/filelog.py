"""A file-backed log manager: durability across process restarts.

:class:`~repro.wal.log.LogManager` keeps the log in memory, which is ideal
for tests and benchmarks (its ``crash()`` models lost unforced records
exactly).  :class:`FileLogManager` extends it with a real log file:

* every append buffers the framed record; ``force`` writes and fsyncs the
  buffered suffix, so the durable prefix on disk matches ``flushed_lsn``;
* each on-disk frame is ``length(4) + crc32(4) + record bytes``, so a torn
  or bit-garbled tail is *detected*, not just guessed at: the load scan
  stops at the first frame whose length is implausible, whose CRC32
  mismatches, or whose record bytes fail to decode;
* the master checkpoint LSN lives in a small side file, written atomically
  (the "durable master record" a real engine keeps in the log header);
* opening an existing path replays the file into memory — a process that
  died without a clean shutdown recovers by running the normal
  analysis/redo/undo over the reloaded log.

A torn tail (a partially-written final record after a real OS crash) is
truncated on load, mirroring how real log scans stop at the first
malformed record.
"""

from __future__ import annotations

import os
import zlib

from repro.errors import LogFormatError, WALError
from repro.faults.failpoints import fire
from repro.wal.log import LogManager, _NO_MUTEX
from repro.wal.records import LogRecord

_LEN = 4
_CRC = 4


class FileLogManager(LogManager):
    """LogManager whose durable prefix lives in a real file."""

    FRAME_BYTES = _LEN + _CRC   # keeps LSN arithmetic equal to file offsets

    def __init__(self, path: str | os.PathLike) -> None:
        super().__init__()
        self.path = os.fspath(path)
        self._master_path = self.path + ".master"
        preexisting = os.path.exists(self.path)
        if preexisting:
            self._load()
            self._file = open(self.path, "r+b")
            self._file.seek(0, os.SEEK_END)
        else:
            self._file = open(self.path, "w+b")
            self._file.write(bytes(self.HEADER_BYTES))
            self._file.flush()
        self._pending: list[bytes] = []   # framed records not yet on disk

    # -- loading ---------------------------------------------------------------

    def _load(self) -> None:
        with open(self.path, "rb") as fh:
            data = fh.read()
        if len(data) < self.HEADER_BYTES:
            raise WALError(f"{self.path}: shorter than the log header")
        offset = self.HEADER_BYTES
        while offset + self.FRAME_BYTES <= len(data):
            length = int.from_bytes(data[offset : offset + _LEN], "big")
            crc = int.from_bytes(
                data[offset + _LEN : offset + _LEN + _CRC], "big"
            )
            end = offset + self.FRAME_BYTES + length
            if length == 0 or end > len(data):
                break  # torn tail: stop at the first malformed frame
            raw = data[offset + self.FRAME_BYTES : end]
            if zlib.crc32(raw) != crc:
                break  # garbled frame: the CRC catches bit damage too
            try:
                LogRecord.decode(raw)
            except LogFormatError:
                break
            self._lsns.append(offset)
            self._raws.append(raw)
            offset = end
        self._end_lsn = offset
        self._flushed_lsn = offset
        if offset < len(data):
            # Truncate the torn tail so appends continue cleanly.
            with open(self.path, "r+b") as fh:
                fh.truncate(offset)
        if os.path.exists(self._master_path):
            with open(self._master_path, "rb") as fh:
                master = int.from_bytes(fh.read(8), "big")
            if master and master < self._flushed_lsn:
                self._master_checkpoint_lsn = master

    # -- appending / forcing ---------------------------------------------------------

    def append(self, record: LogRecord) -> int:
        # The mutex (an RLock, shared with the base class) covers the
        # append-then-frame sequence so concurrent appends cannot interleave
        # between LSN assignment and the pending-frame push.
        with self.mutex or _NO_MUTEX:
            lsn = super().append(record)
            raw = self._raws[-1]
            frame = (
                len(raw).to_bytes(_LEN, "big")
                + zlib.crc32(raw).to_bytes(_CRC, "big")
                + raw
            )
            self._pending.append(frame)
            return lsn

    def force(self, upto_lsn: int | None = None) -> None:
        with self.mutex or _NO_MUTEX:
            target = self._end_lsn if upto_lsn is None \
                else min(upto_lsn, self._end_lsn)
            if target <= self._flushed_lsn:
                return
            if self._pending:
                fire("filelog.write")
                self._file.write(b"".join(self._pending))
                self._pending.clear()
                self._file.flush()
                fire("filelog.fsync")
                os.fsync(self._file.fileno())
            super().force(upto_lsn)

    def set_master_checkpoint(self, lsn: int) -> None:
        super().set_master_checkpoint(lsn)
        tmp = self._master_path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(lsn.to_bytes(8, "big"))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self._master_path)

    # -- crash / close -----------------------------------------------------------------

    def crash(self) -> None:
        """Simulated crash: the unforced suffix never reached the file."""
        self._pending.clear()
        super().crash()

    def close(self) -> None:
        """Release underlying resources (idempotent)."""
        if not self._file.closed:
            self.force()
            self._file.close()
