"""The log manager: append, force, scan, and crash semantics.

LSNs are byte offsets.  Appending a record assigns it the current end of
log; the record's durable image is its codec bytes framed by a 4-byte
length, so log-size accounting matches what a real log file would grow by
(this feeds the benchmark cost model: the paper's eager-vs-lazy argument is
partly "extra log operations reduce system throughput").

Durability model: :meth:`force` makes the prefix up to an LSN durable;
:meth:`crash` discards everything after the durable prefix.  Commit forces
the log (the dominant latency of a small transaction on 2005 hardware —
this is what makes the paper's 9.6 ms baseline).
"""

from __future__ import annotations

import time
from bisect import bisect_right
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.errors import WALError
from repro.faults.failpoints import fire
from repro.wal.records import CompensationRecord, LogRecord, MultiPageImage

_NO_MUTEX = nullcontext()


@dataclass
class LogStats:
    """Log volume and force counters (feeds the cost model)."""
    appends: int = 0
    bytes_appended: int = 0
    forces: int = 0
    image_records: int = 0     # records carrying full page images (SMOs/CLRs)
    image_bytes: int = 0       # their bytes: a simulator artifact; real
    # engines log structure modifications physiologically (~100 bytes), so
    # the cost model prices image records by count, not by image volume.
    forced_bytes: int = 0      # bytes made durable by physical forces; each
    # force writes one contiguous (sequential) suffix, so forced_bytes /
    # forces is the average batch a group-committed force amortizes.

    def snapshot(self) -> "LogStats":
        """An independent copy of the current counter values."""
        return LogStats(self.appends, self.bytes_appended, self.forces,
                        self.image_records, self.image_bytes,
                        self.forced_bytes)

    def delta(self, since: "LogStats") -> "LogStats":
        """Elementwise difference against an earlier snapshot."""
        return LogStats(
            self.appends - since.appends,
            self.bytes_appended - since.bytes_appended,
            self.forces - since.forces,
            self.image_records - since.image_records,
            self.image_bytes - since.image_bytes,
            self.forced_bytes - since.forced_bytes,
        )


class LogManager:
    """An append-only log with an explicit durable prefix."""

    HEADER_BYTES = 16
    """The log starts past a pseudo file header, so no record has LSN 0 —
    LSN 0 stays free as the "no record / never written" sentinel used by
    fresh pages and by ``prev_lsn`` backchain ends."""

    FRAME_BYTES = 4
    """Framing overhead per record: a 4-byte length prefix.  The file-backed
    subclass widens this to add a per-frame CRC32."""

    def __init__(self) -> None:
        self._lsns: list[int] = []      # start offset of each record
        self._raws: list[bytes] = []    # framed codec bytes of each record
        self._end_lsn = self.HEADER_BYTES
        self._flushed_lsn = self.HEADER_BYTES
        self._master_checkpoint_lsn = 0  # durable master record (tiny side write)
        self.stats = LogStats()
        # Run after every *physical* force, once flushed_lsn has advanced.
        # Group commit drains its acknowledgement queue here, so any force —
        # a commit batch filling, a WAL-rule page flush, a checkpoint —
        # durably acks whatever commits it happens to cover.
        self.post_force_hooks: list[Callable[[], None]] = []
        # Concurrent mode installs an RLock here so parallel workers can
        # append/force safely; None (the default) keeps the single-threaded
        # fast path free of any locking.
        self.mutex = None
        # Simulated synchronous-commit device latency, paid once per
        # *physical* force (default 0.0: off).  The sleep releases the GIL,
        # so under the worker pool a single force genuinely overlaps other
        # workers' progress — this is the latency group commit amortizes.
        self.force_latency_ms = 0.0

    # -- appending ---------------------------------------------------------

    def append(self, record: LogRecord) -> int:
        """Append a record; returns its LSN (not yet durable)."""
        fire("log.append")
        raw = record.to_bytes()
        with self.mutex or _NO_MUTEX:
            record.lsn = self._end_lsn
            self._lsns.append(self._end_lsn)
            self._raws.append(raw)
            self._end_lsn += self.FRAME_BYTES + len(raw)
            self.stats.appends += 1
            self.stats.bytes_appended += self.FRAME_BYTES + len(raw)
            if isinstance(record, (MultiPageImage, CompensationRecord)):
                self.stats.image_records += 1
                self.stats.image_bytes += self.FRAME_BYTES + len(raw)
            return record.lsn

    @property
    def end_lsn(self) -> int:
        """Offset just past the last appended record ("LSN of end of log")."""
        return self._end_lsn

    @property
    def next_lsn(self) -> int:
        """The LSN the *next* appended record will receive.

        Structure modifications use this to stamp page LSNs into the page
        images they are about to log (the images must carry the SMO's own
        LSN so redo's page-LSN guard works).
        """
        return self._end_lsn

    @property
    def flushed_lsn(self) -> int:
        return self._flushed_lsn

    # -- durability ---------------------------------------------------------

    def force(self, upto_lsn: int | None = None) -> None:
        """Make the log durable up to (at least) ``upto_lsn``.

        A no-op when the prefix is already durable — so the stats count
        *physical* forces, which is what group commit would pay for.
        """
        with self.mutex or _NO_MUTEX:
            target = self._end_lsn if upto_lsn is None \
                else min(upto_lsn, self._end_lsn)
            if target <= self._flushed_lsn:
                return
            fire("log.force")
            if self.force_latency_ms > 0.0:
                time.sleep(self.force_latency_ms / 1000.0)
            self.stats.forced_bytes += self._end_lsn - self._flushed_lsn
            self._flushed_lsn = self._end_lsn
            self.stats.forces += 1
            for hook in self.post_force_hooks:
                hook()

    # -- master record ---------------------------------------------------------

    def set_master_checkpoint(self, lsn: int) -> None:
        """Record the last complete checkpoint's LSN (durable master record)."""
        if lsn >= self._flushed_lsn:
            raise WALError("checkpoint LSN must be durable before the master record")
        self._master_checkpoint_lsn = lsn

    @property
    def master_checkpoint_lsn(self) -> int:
        return self._master_checkpoint_lsn

    # -- scanning ------------------------------------------------------------------

    def records_from(self, lsn: int = 0) -> Iterator[LogRecord]:
        """Decode and yield records with LSN >= ``lsn`` (durable or not)."""
        start = bisect_right(self._lsns, lsn)
        if start and self._lsns[start - 1] == lsn:
            start -= 1
        for i in range(start, len(self._lsns)):
            record = LogRecord.decode(self._raws[i])
            record.lsn = self._lsns[i]
            yield record

    def durable_frames(self, after_lsn: int = 0) -> Iterator[tuple[int, bytes]]:
        """Yield ``(lsn, raw)`` for every *durable* record with LSN > ``after_lsn``.

        A record is fully durable iff it starts below ``flushed_lsn`` —
        :meth:`force` always flushes a contiguous suffix, so there is never a
        half-durable record.  The raw bytes are the unframed codec image
        (what :meth:`LogRecord.decode` accepts).  This is the log-archiving
        tap: the media-recovery archive copies exactly these frames after
        each physical force.
        """
        start = bisect_right(self._lsns, after_lsn)
        for i in range(start, len(self._lsns)):
            lsn = self._lsns[i]
            if lsn >= self._flushed_lsn:
                break
            yield lsn, self._raws[i]

    def record_at(self, lsn: int) -> LogRecord:
        index = bisect_right(self._lsns, lsn) - 1
        if index < 0 or self._lsns[index] != lsn:
            raise WALError(f"no log record at LSN {lsn}")
        record = LogRecord.decode(self._raws[index])
        record.lsn = lsn
        return record

    # -- crash simulation --------------------------------------------------------------

    def crash(self) -> None:
        """Discard the non-durable suffix, as a power failure would."""
        keep = bisect_right(self._lsns, self._flushed_lsn)
        if keep and self._lsns[keep - 1] == self._flushed_lsn:
            keep -= 1
        del self._lsns[keep:]
        del self._raws[keep:]
        self._end_lsn = self._flushed_lsn

    def __len__(self) -> int:
        return len(self._lsns)
