"""Oracle-Flashback-style versioning from retained undo (Section 6.2).

Flashback keeps no organized version store: it *re-creates* past versions
by applying retained undo records backwards from the current state.  The
paper's two criticisms, both measurable here:

* "If a query uses clock time for its as of time, the result is only
  approximate, since versions are identified by something analogous to a
  transaction identifier, not a time" — undo records carry an SCN (system
  change number); mapping a wall-clock time to an SCN is approximate
  (:meth:`scn_for_time` rounds to coarse boundaries).
* "Search starts with the current state, and scans back through the undo
  versions … performance [degrades] the farther back in time one goes" —
  :attr:`Metrics.undo_records_scanned` grows linearly with depth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ImmortalDBError, KeyNotFoundError


class FlashbackHorizonError(ImmortalDBError):
    """The requested time predates the retained undo."""


@dataclass
class _UndoRecord:
    scn: int
    key: object
    before: dict | None      # None = the key did not exist before (insert)


@dataclass
class Metrics:
    undo_records_scanned: int = 0
    flashback_queries: int = 0


SCN_TIME_GRANULARITY_MS = 3_000.0
"""Coarseness of the SCN-to-time mapping (Oracle's is seconds-coarse)."""


class FlashbackTable:
    """Current store + a global retained undo stream."""

    def __init__(self, retention_records: int = 1_000_000) -> None:
        self._current: dict = {}
        self._undo: list[_UndoRecord] = []    # append-only, SCN-ordered
        self._scn = 0
        self._scn_times: list[tuple[float, int]] = []  # (time_ms, scn) marks
        self.retention_records = retention_records
        self.metrics = Metrics()

    # -- updates -----------------------------------------------------------------

    def _bump_scn(self, now_ms: float) -> int:
        self._scn += 1
        if (
            not self._scn_times
            or now_ms - self._scn_times[-1][0] >= SCN_TIME_GRANULARITY_MS
        ):
            self._scn_times.append((now_ms, self._scn))
        return self._scn

    def insert(self, now_ms: float, key, value: dict) -> None:
        scn = self._bump_scn(now_ms)
        self._undo.append(_UndoRecord(scn, key, None))
        self._current[key] = dict(value)
        self._enforce_retention()

    def update(self, now_ms: float, key, value: dict) -> None:
        if key not in self._current:
            raise KeyNotFoundError(f"no record with key {key!r}")
        scn = self._bump_scn(now_ms)
        self._undo.append(_UndoRecord(scn, key, dict(self._current[key])))
        self._current[key] = dict(value)
        self._enforce_retention()

    def delete(self, now_ms: float, key) -> None:
        if key not in self._current:
            raise KeyNotFoundError(f"no record with key {key!r}")
        scn = self._bump_scn(now_ms)
        self._undo.append(_UndoRecord(scn, key, dict(self._current[key])))
        del self._current[key]
        self._enforce_retention()

    def _enforce_retention(self) -> None:
        excess = len(self._undo) - self.retention_records
        if excess > 0:
            del self._undo[:excess]

    # -- flashback queries -------------------------------------------------------------

    def scn_for_time(self, when_ms: float) -> int:
        """Approximate SCN for a wall-clock time (coarse by design)."""
        best = 0
        for time_ms, scn in self._scn_times:
            if time_ms <= when_ms:
                best = scn
            else:
                break
        return best

    def read_as_of_scn(self, scn: int, key) -> dict | None:
        """Reconstruct the key's value at ``scn`` by backward undo scan."""
        self.metrics.flashback_queries += 1
        if self._undo and self._undo[0].scn > scn + 1 and scn > 0:
            raise FlashbackHorizonError(
                f"undo for SCN {scn} has been discarded (retention window)"
            )
        value = self._current.get(key)
        present = key in self._current
        for record in reversed(self._undo):
            self.metrics.undo_records_scanned += 1
            if record.scn <= scn:
                break
            if record.key != key:
                continue
            if record.before is None:
                value, present = None, False
            else:
                value, present = dict(record.before), True
        return dict(value) if present and value is not None else None

    def read_as_of_time(self, when_ms: float, key) -> dict | None:
        """Clock-time flashback: approximate by SCN mapping, then scan."""
        return self.read_as_of_scn(self.scn_for_time(when_ms), key)

    # -- point-in-time recovery (Flashback's design center) ---------------------------------

    def flashback_table_to_scn(self, scn: int) -> int:
        """Rewind the whole table to ``scn``; returns records changed.

        This is what Flashback is tuned for: shortening the outage after an
        erroneous transaction, without restoring a backup.
        """
        changed = 0
        while self._undo and self._undo[-1].scn > scn:
            record = self._undo.pop()
            self.metrics.undo_records_scanned += 1
            if record.before is None:
                self._current.pop(record.key, None)
            else:
                self._current[record.key] = record.before
            self._scn = record.scn - 1
            changed += 1
        return changed

    @property
    def undo_size(self) -> int:
        return len(self._undo)
