"""Postgres-style two-store versioning with vacuuming (Section 6.3).

Postgres stamps records with real commit times (like Immortal DB it must
revisit after commit), but it manages versions differently: a **vacuum**
process moves old versions out of the current store into a separate
archival structure.  The paper's criticisms, reproduced measurably:

* "most as of queries need to access both current and historical storage
  structures — otherwise it is impossible, in general, to determine whether
  the query has seen the record version with the largest timestamp less
  than the as-of time" — :meth:`read_as_of` probes the current store *and*
  the archive, counting both probes;
* archive pages have no time-split coverage guarantee: a record's versions
  scatter across archive pages by vacuum batch, so an as-of lookup may
  touch several archive pages ("storage utilization for some timeslices …
  can be very low");
* vacuuming itself "degrades current database performance" — its cost is
  metered so benches can charge it.

The archive models the R-tree's *behaviour* for this workload (region
lookups over key × time boxes without coverage redundancy) rather than
R-tree node mechanics; what the comparison needs is the two-store probe
pattern and the scattered-version effect, both of which it preserves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clock import Timestamp
from repro.errors import KeyNotFoundError


@dataclass
class _Version:
    ts: Timestamp
    value: dict | None      # None = delete tombstone


@dataclass
class _ArchivePage:
    """One vacuum batch: versions boxed by (key range, time range)."""

    key_low: object
    key_high: object
    t_low: Timestamp
    t_high: Timestamp
    versions: list[tuple[object, _Version]] = field(default_factory=list)


@dataclass
class Metrics:
    current_probes: int = 0
    archive_pages_probed: int = 0
    archive_versions_scanned: int = 0
    vacuum_runs: int = 0
    vacuum_versions_moved: int = 0


class PostgresStyleTable:
    """Current store with chains + vacuum-fed archival store."""

    def __init__(self, vacuum_batch_pages: int = 64) -> None:
        self._current: dict = {}            # key -> [newest _Version, ...]
        self._archive: list[_ArchivePage] = []
        self.vacuum_batch_pages = vacuum_batch_pages
        self.metrics = Metrics()

    # -- updates ---------------------------------------------------------------

    def insert(self, ts: Timestamp, key, value: dict) -> None:
        chain = self._current.setdefault(key, [])
        if chain and chain[0].value is not None:
            raise KeyNotFoundError(f"key {key!r} already exists")
        chain.insert(0, _Version(ts, dict(value)))

    def update(self, ts: Timestamp, key, value: dict) -> None:
        chain = self._current.get(key)
        if not chain or chain[0].value is None:
            raise KeyNotFoundError(f"no record with key {key!r}")
        chain.insert(0, _Version(ts, dict(value)))

    def delete(self, ts: Timestamp, key) -> None:
        chain = self._current.get(key)
        if not chain or chain[0].value is None:
            raise KeyNotFoundError(f"no record with key {key!r}")
        chain.insert(0, _Version(ts, None))

    # -- vacuuming -------------------------------------------------------------------

    def vacuum(self, versions_per_page: int = 50) -> int:
        """Move all non-current versions to the archive; returns count moved.

        Versions are packed into archive pages in vacuum-scan order — so one
        record's history scatters across the pages of successive vacuum
        runs, with no per-page coverage guarantee.
        """
        self.metrics.vacuum_runs += 1
        moved: list[tuple[object, _Version]] = []
        for key, chain in self._current.items():
            if len(chain) > 1:
                moved.extend((key, v) for v in chain[1:])
                del chain[1:]
        for start in range(0, len(moved), versions_per_page):
            batch = moved[start : start + versions_per_page]
            keys = [k for k, _ in batch]
            times = [v.ts for _, v in batch]
            self._archive.append(
                _ArchivePage(
                    key_low=min(keys), key_high=max(keys),
                    t_low=min(times), t_high=max(times),
                    versions=batch,
                )
            )
        self.metrics.vacuum_versions_moved += len(moved)
        return len(moved)

    # -- queries ---------------------------------------------------------------------------

    def read_current(self, key) -> dict | None:
        self.metrics.current_probes += 1
        chain = self._current.get(key)
        if not chain or chain[0].value is None:
            return None
        return dict(chain[0].value)

    def read_as_of(self, ts: Timestamp, key) -> dict | None:
        """Probe the current store, then (always) the archive.

        Even when the current store has a version with timestamp ≤ ts, a
        *newer-but-still-≤-ts* version may have been vacuumed away, so the
        archive must be consulted before answering — the structural cost of
        the two-store design.
        """
        best: _Version | None = None
        self.metrics.current_probes += 1
        for version in self._current.get(key, []):
            if version.ts <= ts and (best is None or version.ts > best.ts):
                best = version
        for page in self._archive:
            if page.t_low > ts:
                continue
            if not (page.key_low <= key <= page.key_high):
                continue
            self.metrics.archive_pages_probed += 1
            for rec_key, version in page.versions:
                self.metrics.archive_versions_scanned += 1
                if rec_key != key:
                    continue
                if version.ts <= ts and (best is None or version.ts > best.ts):
                    best = version
        if best is None or best.value is None:
            return None
        return dict(best.value)

    @property
    def archive_page_count(self) -> int:
        return len(self._archive)

    def current_chain_length(self, key) -> int:
        return len(self._current.get(key, []))
