"""Postgres-style two-store versioning with vacuuming (Section 6.3).

Postgres stamps records with real commit times (like Immortal DB it must
revisit after commit), but it manages versions differently: a **vacuum**
process moves old versions out of the current store into a separate
archival structure.  The paper's criticisms, reproduced measurably:

* "most as of queries need to access both current and historical storage
  structures — otherwise it is impossible, in general, to determine whether
  the query has seen the record version with the largest timestamp less
  than the as-of time" — :meth:`read_as_of` probes the current store *and*
  the archive, counting both probes;
* archive blocks have no time-split coverage guarantee: a record's versions
  scatter across blocks by vacuum batch, so an as-of lookup may touch
  several archive blocks ("storage utilization for some timeslices … can
  be very low");
* vacuuming itself "degrades current database performance" — its cost is
  metered so benches can charge it.

The archival structure is the engine's own :class:`~repro.archive.store.
ArchiveStore` — the same append-only record log, :class:`RunMeta` /
:class:`BlockMeta` fencing, manifest snapshots and durable/unsynced
boundary that ``repro.archive`` uses for TSB-tree tiering — so
``bench_cmp1_related_work.py`` compares the two architectures over
identical storage machinery.  What stays deliberately Postgres-shaped is
the *placement policy*: versions are packed into blocks in vacuum-scan
order with no per-block coverage guarantee, which is exactly the
scattered-version effect the paper criticises.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass

from repro.archive.store import ArchiveStore, BlockMeta, RunMeta
from repro.clock import Timestamp
from repro.errors import DuplicateKeyError, KeyNotFoundError


@dataclass
class _Version:
    ts: Timestamp
    value: dict | None      # None = delete tombstone


def _key_bytes(key) -> bytes:
    """Order-preserving byte image of a key, for BlockMeta fences."""
    if isinstance(key, bytes):
        return key
    if isinstance(key, str):
        return key.encode()
    if isinstance(key, int):
        return struct.pack(">Q", key + (1 << 63))
    raise TypeError(f"unfenceable key type {type(key).__name__}")


def _encode_batch(batch: list[tuple[object, _Version]]) -> bytes:
    doc = [
        [key, [v.ts.ttime, v.ts.sn], v.value]
        for key, v in batch
    ]
    return zlib.compress(
        json.dumps(doc, separators=(",", ":")).encode(), 6
    )


def _decode_batch(payload: bytes) -> list[tuple[object, _Version]]:
    doc = json.loads(zlib.decompress(payload).decode())
    return [
        (key, _Version(Timestamp(ts[0], ts[1]), value))
        for key, ts, value in doc
    ]


@dataclass
class Metrics:
    current_probes: int = 0
    archive_pages_probed: int = 0
    archive_versions_scanned: int = 0
    vacuum_runs: int = 0
    vacuum_versions_moved: int = 0


class PostgresStyleTable:
    """Current store with chains + vacuum-fed :class:`ArchiveStore`."""

    def __init__(
        self,
        vacuum_batch_pages: int = 64,
        *,
        store_path: str | None = None,
    ) -> None:
        self._current: dict = {}            # key -> [newest _Version, ...]
        self.store = ArchiveStore(store_path)
        self.runs: dict[int, RunMeta] = {}
        self.next_run_id = 1
        self.vacuum_batch_pages = vacuum_batch_pages
        self.metrics = Metrics()
        self._load_manifest()

    # -- manifest ----------------------------------------------------------

    def _manifest_doc(self) -> dict:
        return {
            "format": 1,
            "next_run_id": self.next_run_id,
            "runs": [self.runs[rid].to_doc() for rid in sorted(self.runs)],
        }

    def _load_manifest(self) -> None:
        doc = self.store.last_manifest()
        if doc is None:
            return
        self.next_run_id = doc["next_run_id"]
        self.runs = {run["id"]: RunMeta.from_doc(run) for run in doc["runs"]}

    # -- updates ---------------------------------------------------------------

    def insert(self, ts: Timestamp, key, value: dict) -> None:
        chain = self._current.setdefault(key, [])
        if chain and chain[0].value is not None:
            raise DuplicateKeyError(f"key {key!r} already exists")
        chain.insert(0, _Version(ts, dict(value)))

    def update(self, ts: Timestamp, key, value: dict) -> None:
        chain = self._current.get(key)
        if not chain or chain[0].value is None:
            raise KeyNotFoundError(f"no record with key {key!r}")
        chain.insert(0, _Version(ts, dict(value)))

    def delete(self, ts: Timestamp, key) -> None:
        chain = self._current.get(key)
        if not chain or chain[0].value is None:
            raise KeyNotFoundError(f"no record with key {key!r}")
        chain.insert(0, _Version(ts, None))

    # -- vacuuming -------------------------------------------------------------------

    def vacuum(self, versions_per_page: int = 50) -> int:
        """Move all non-current versions to the archive; returns count moved.

        Versions are packed into archive blocks in vacuum-scan order — so
        one record's history scatters across the blocks of successive
        vacuum runs, with no per-block coverage guarantee.  Each vacuum
        seals one level-0 run and syncs a manifest snapshot, the same
        durability protocol the engine's migration pass follows.
        """
        self.metrics.vacuum_runs += 1
        moved: list[tuple[object, _Version]] = []
        for key, chain in self._current.items():
            if len(chain) > 1:
                moved.extend((key, v) for v in chain[1:])
                del chain[1:]
        run: RunMeta | None = None
        for start in range(0, len(moved), versions_per_page):
            batch = moved[start : start + versions_per_page]
            key_images = [_key_bytes(k) for k, _ in batch]
            times = [v.ts for _, v in batch]
            payload = _encode_batch(batch)
            if run is None:
                run = RunMeta(run_id=self.next_run_id, level=0)
                self.next_run_id += 1
                self.runs[run.run_id] = run
            record = self.store.append_block(payload)
            run.blocks.append(
                BlockMeta(
                    record=record,
                    length=len(payload),
                    raw_bytes=sum(
                        len(json.dumps(v.value or {})) for _, v in batch
                    ),
                    key_low=min(key_images),
                    key_high=max(key_images),
                    t_low=min(times),
                    t_high=max(times),
                )
            )
        if run is not None:
            self.store.append_manifest(self._manifest_doc())
            self.store.sync()
        self.metrics.vacuum_versions_moved += len(moved)
        return len(moved)

    # -- queries ---------------------------------------------------------------------------

    def read_current(self, key) -> dict | None:
        self.metrics.current_probes += 1
        chain = self._current.get(key)
        if not chain or chain[0].value is None:
            return None
        return dict(chain[0].value)

    def read_as_of(self, ts: Timestamp, key) -> dict | None:
        """Probe the current store, then (always) the archive.

        Even when the current store has a version with timestamp ≤ ts, a
        *newer-but-still-≤-ts* version may have been vacuumed away, so the
        archive must be consulted before answering — the structural cost of
        the two-store design.  Archive blocks are pruned by their RunMeta
        fences, then read back from the store and decoded; every surviving
        block is a separate probe.
        """
        best: _Version | None = None
        self.metrics.current_probes += 1
        for version in self._current.get(key, []):
            if version.ts <= ts and (best is None or version.ts > best.ts):
                best = version
        key_image = _key_bytes(key)
        for run_id in sorted(self.runs):
            for meta in self.runs[run_id].blocks:
                if meta.t_low > ts:
                    continue
                if not (meta.key_low <= key_image <= meta.key_high):
                    continue
                self.metrics.archive_pages_probed += 1
                for rec_key, version in _decode_batch(
                    self.store.read_block(meta.record)
                ):
                    self.metrics.archive_versions_scanned += 1
                    if rec_key != key:
                        continue
                    if version.ts <= ts and (
                        best is None or version.ts > best.ts
                    ):
                        best = version
        if best is None or best.value is None:
            return None
        return dict(best.value)

    # -- accounting ------------------------------------------------------------------------

    @property
    def archive_page_count(self) -> int:
        return sum(len(run.blocks) for run in self.runs.values())

    @property
    def archive_bytes_stored(self) -> int:
        return sum(run.stored_bytes for run in self.runs.values())

    @property
    def archive_bytes_raw(self) -> int:
        return sum(run.raw_bytes for run in self.runs.values())

    def current_chain_length(self, key) -> int:
        return len(self._current.get(key, []))

    def close(self) -> None:
        self.store.close()
