"""Rdb-style snapshot versioning with commit lists (Section 6.1).

Oracle Rdb avoids timestamping entirely: an update transaction stamps its
versions with its TSN (transaction sequence number), and a snapshot read
transaction receives, at begin, the **commit list** — the set of TSNs
committed at that moment (bounded below by a low-water mark under which
everything is known committed).  A read walks back from the current version
to the first version whose TSN is on its list.

What this buys and what it costs, both reproduced here:

* no revisit of records after commit, no persistent timestamp table;
* **but** "the commit list approach does not generalize to support queries
  that ask for results as of an arbitrary past time … Generating commit
  lists for earlier times is not possible" — :meth:`as_of_read` raises.
* versions do not survive a crash (:meth:`crash` empties the version store).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ImmortalDBError, KeyNotFoundError


class AsOfNotSupportedError(ImmortalDBError):
    """Commit lists cannot answer arbitrary-past AS OF queries."""


@dataclass
class _Version:
    tsn: int
    value: dict


@dataclass
class CommitList:
    """A snapshot transaction's view: low-water mark + explicit TSNs."""

    low_water: int                 # every TSN <= this is committed
    explicit: frozenset[int]       # committed TSNs above the mark
    own_tsn: int                   # TSNs >= this are certainly uncommitted

    def sees(self, tsn: int) -> bool:
        if tsn <= self.low_water:
            return True
        if tsn >= self.own_tsn:
            return False
        return tsn in self.explicit


@dataclass
class Metrics:
    versions_walked: int = 0
    snapshot_reads: int = 0


class RdbCommitListTable:
    """Current store + transient snapshot version chains, Rdb style."""

    def __init__(self) -> None:
        self._current: dict = {}                 # key -> _Version
        self._history: dict = {}                 # key -> [older _Version ...]
        self._next_tsn = 1
        self._committed: set[int] = set()
        self._low_water = 0
        self.metrics = Metrics()

    # -- update transactions ----------------------------------------------------

    def begin_update(self) -> int:
        tsn = self._next_tsn
        self._next_tsn += 1
        return tsn

    def write(self, tsn: int, key, value: dict) -> None:
        old = self._current.get(key)
        if old is not None:
            self._history.setdefault(key, []).insert(0, old)
        self._current[key] = _Version(tsn, dict(value))

    def commit(self, tsn: int) -> None:
        self._committed.add(tsn)
        while self._low_water + 1 in self._committed:
            self._low_water += 1
            self._committed.discard(self._low_water)

    # -- snapshot reads ------------------------------------------------------------

    def begin_snapshot(self) -> CommitList:
        """Hand the reader its commit list, valid only for *this* moment."""
        return CommitList(
            low_water=self._low_water,
            explicit=frozenset(self._committed),
            own_tsn=self._next_tsn,
        )

    def snapshot_read(self, commit_list: CommitList, key) -> dict:
        """Walk back to the first version whose TSN is on the list."""
        self.metrics.snapshot_reads += 1
        chain = []
        if key in self._current:
            chain.append(self._current[key])
        chain.extend(self._history.get(key, []))
        for version in chain:
            self.metrics.versions_walked += 1
            if commit_list.sees(version.tsn):
                return dict(version.value)
        raise KeyNotFoundError(f"key {key!r} invisible to this snapshot")

    # -- the architectural limits -------------------------------------------------------

    def as_of_read(self, when, key) -> dict:
        """Arbitrary-past AS OF: impossible with commit lists."""
        raise AsOfNotSupportedError(
            "Rdb commit lists exist only for currently-running snapshot "
            "transactions; a commit list for an earlier time cannot be "
            "generated (paper Section 6.1)"
        )

    def crash(self) -> None:
        """Versions do not survive a crash; only current state remains."""
        self._history.clear()

    def garbage_collect(self, oldest_active: CommitList | None) -> int:
        """Drop versions no active snapshot can need."""
        dropped = 0
        for key, versions in list(self._history.items()):
            if oldest_active is None:
                dropped += len(versions)
                del self._history[key]
                continue
            keep: list[_Version] = []
            satisfied = False
            for version in versions:
                if satisfied:
                    dropped += 1
                    continue
                keep.append(version)
                if oldest_active.sees(version.tsn):
                    satisfied = True
            self._history[key] = keep
        return dropped
