"""Executable baselines for the related systems of Section 6.

The paper compares Immortal DB *architecturally* against Rdb, Oracle
Flashback, and Postgres.  We implement the essence of each approach over
the same storage substrate so the qualitative claims become measurable:

* :mod:`repro.baselines.rdb_commitlist` — Rdb-style snapshot reads via
  commit lists: no timestamping revisit, but only *snapshot* reads; an
  AS OF query for an arbitrary past time is impossible by construction.
* :mod:`repro.baselines.flashback` — Oracle-Flashback-style versioning from
  retained undo: AS OF reconstructs a record by scanning undo backwards
  from the current state, so cost grows with history depth.
* :mod:`repro.baselines.postgres_style` — Postgres-style two-store
  versioning: a vacuum process moves old versions to a separate archive,
  and an as-of query must probe both the current store and the archive.

The conventional (non-versioned) table baseline used by Fig 5 is simply an
engine table created with ``immortal=False`` — by design it shares the
code path of immortal tables minus the versioning work.
"""

from repro.baselines.rdb_commitlist import RdbCommitListTable
from repro.baselines.flashback import FlashbackTable
from repro.baselines.postgres_style import PostgresStyleTable

__all__ = [
    "RdbCommitListTable",
    "FlashbackTable",
    "PostgresStyleTable",
]
