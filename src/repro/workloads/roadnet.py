"""A synthetic road network for the moving-objects generator.

The paper drives its experiments with objects moving on the Seattle-area
road network (Figure 4).  We build a comparable substrate: a grid of
intersections with randomly perturbed edge lengths and a sprinkling of
removed edges (rivers, parks), which yields realistic non-straight shortest
paths while staying fully deterministic under a seed.
"""

from __future__ import annotations

import random

import networkx as nx


class RoadNetwork:
    """A connected grid road network with weighted edges.

    Nodes are ``(row, col)`` intersections with ``pos`` attributes in
    meters; edge ``length`` is the road distance between intersections.
    """

    def __init__(
        self,
        rows: int = 20,
        cols: int = 20,
        *,
        block_meters: float = 250.0,
        removal_fraction: float = 0.08,
        seed: int = 42,
    ) -> None:
        if rows < 2 or cols < 2:
            raise ValueError("a road network needs at least a 2x2 grid")
        rng = random.Random(seed)
        graph = nx.grid_2d_graph(rows, cols)
        for node in graph.nodes:
            row, col = node
            graph.nodes[node]["pos"] = (
                col * block_meters + rng.uniform(-20, 20),
                row * block_meters + rng.uniform(-20, 20),
            )
        for u, v in graph.edges:
            graph.edges[u, v]["length"] = block_meters * rng.uniform(0.8, 1.4)
        # Remove a fraction of edges, but never disconnect the network.
        removable = list(graph.edges)
        rng.shuffle(removable)
        to_remove = int(len(removable) * removal_fraction)
        removed = 0
        for edge in removable:
            if removed >= to_remove:
                break
            graph.remove_edge(*edge)
            if nx.is_connected(graph):
                removed += 1
            else:
                graph.add_edge(*edge, length=block_meters)
        self.graph = graph
        self._rng = rng
        self._nodes = list(graph.nodes)

    @property
    def node_count(self) -> int:
        return self.graph.number_of_nodes()

    def random_node(self, rng: random.Random):
        return rng.choice(self._nodes)

    def position_of(self, node) -> tuple[float, float]:
        return self.graph.nodes[node]["pos"]

    def shortest_path(self, source, target) -> list:
        """Shortest path by road length (Dijkstra)."""
        return nx.shortest_path(self.graph, source, target, weight="length")

    def path_length(self, path: list) -> float:
        return sum(
            self.graph.edges[u, v]["length"] for u, v in zip(path, path[1:])
        )

    def random_trip(self, rng: random.Random, *, min_hops: int = 3):
        """A (source, destination, path) with a path of at least min_hops."""
        for _ in range(100):
            source = self.random_node(rng)
            target = self.random_node(rng)
            if source == target:
                continue
            path = self.shortest_path(source, target)
            if len(path) > min_hops:
                return source, target, path
        raise RuntimeError("could not sample a trip; network too small?")
