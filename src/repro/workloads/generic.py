"""Generic key/update streams for ablation benches."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator


def zipf_keys(
    count: int, universe: int, *, s: float = 1.1, seed: int = 0
) -> list[int]:
    """``count`` keys drawn Zipf-like from ``range(universe)``.

    A simple inverse-CDF sampler: key ranks follow ``1 / rank**s``, so a few
    hot keys dominate — the access pattern that makes version chains long.
    """
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** s for rank in range(universe)]
    total = sum(weights)
    cdf = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cdf.append(acc)
    out = []
    for _ in range(count):
        u = rng.random()
        lo, hi = 0, universe - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        out.append(lo)
    return out


@dataclass(frozen=True)
class UpdateOp:
    kind: str      # "insert" | "update"
    key: int
    value: str


class UpdateStream:
    """A stream of inserts followed by updates over a fixed key set.

    ``distribution`` is "uniform" (round-robin; every key updated equally
    often — the Fig-6 setup) or "zipf" (hot keys; the chain-length ablation).
    """

    def __init__(
        self,
        *,
        keys: int,
        updates: int,
        value_bytes: int = 32,
        distribution: str = "uniform",
        seed: int = 1,
    ) -> None:
        if distribution not in ("uniform", "zipf"):
            raise ValueError("distribution must be 'uniform' or 'zipf'")
        self.keys = keys
        self.updates = updates
        self.value_bytes = value_bytes
        self.distribution = distribution
        self.seed = seed

    def __iter__(self) -> Iterator[UpdateOp]:
        pad = "x" * self.value_bytes
        for key in range(self.keys):
            yield UpdateOp("insert", key, f"init-{pad}")
        if self.distribution == "uniform":
            for i in range(self.updates):
                yield UpdateOp("update", i % self.keys, f"u{i}-{pad}")
        else:
            for i, key in enumerate(
                zipf_keys(self.updates, self.keys, seed=self.seed)
            ):
                yield UpdateOp("update", key, f"u{i}-{pad}")

    def __len__(self) -> int:
        return self.keys + self.updates
