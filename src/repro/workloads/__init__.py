"""Workload generators for the paper's experiments.

* :mod:`repro.workloads.roadnet` — a synthetic road network (grid with
  randomized edge weights) standing in for the Seattle-area map of Figure 4,
* :mod:`repro.workloads.moving_objects` — a network-based generator of
  moving objects after Brinkhoff [8], matching the paper's description: an
  object appears (→ one Insert transaction of its id and location), moves
  along shortest paths at a class-specific speed (→ one Update transaction
  per step), and stops reporting when it reaches its destination — so
  objects accumulate different numbers of updates, exactly the skew the
  Fig-5/Fig-6 experiments rely on,
* :mod:`repro.workloads.generic` — simple uniform/zipfian update streams
  for the ablation benches.
"""

from repro.workloads.roadnet import RoadNetwork
from repro.workloads.moving_objects import (
    MovingObjectEvent,
    MovingObjectWorkload,
)
from repro.workloads.generic import UpdateStream, zipf_keys

__all__ = [
    "RoadNetwork",
    "MovingObjectEvent",
    "MovingObjectWorkload",
    "UpdateStream",
    "zipf_keys",
]
