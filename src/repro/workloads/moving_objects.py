"""Network-based generator of moving objects (after Brinkhoff [8]).

The paper's Section 5: "*Once an object appears on the map, it sends an
Insert transaction to the Immortal DB server that includes the object ID
and location. … When an object moves, it sends an update transaction …
Moving objects have variable speeds … Once an object reaches its
destination, it stops sending update transactions.  Thus, not all moving
objects have the same number of updates.*"

The generator emits a deterministic, time-ordered stream of
:class:`MovingObjectEvent`; drivers apply each event as one transaction
(insert or single-record update), advancing the engine's clock to the
event time — reproducing the paper's per-transaction timing structure.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Iterator

from repro.workloads.roadnet import RoadNetwork

SPEED_CLASSES_KMH = (20.0, 40.0, 60.0, 90.0)
"""Cyclists, trucks, cars, highway traffic — variable speeds per the paper."""

REPORT_INTERVAL_MS = 2_000.0
"""An object reports its position every two simulated seconds of travel."""


@dataclass(frozen=True)
class MovingObjectEvent:
    """One transaction's worth of workload."""

    time_ms: float
    kind: str          # "insert" | "update"
    oid: int
    x: int
    y: int


@dataclass
class _Trip:
    oid: int
    path: list
    speed_m_per_ms: float
    progress_m: float = 0.0   # distance travelled along the path


class MovingObjectWorkload:
    """Deterministic stream of insert/update events for N objects."""

    def __init__(
        self,
        network: RoadNetwork | None = None,
        *,
        objects: int = 500,
        seed: int = 7,
        spawn_spread_ms: float = 10_000.0,
    ) -> None:
        self.network = network or RoadNetwork(seed=seed)
        self.objects = objects
        self.seed = seed
        self.spawn_spread_ms = spawn_spread_ms

    # -- event stream --------------------------------------------------------

    def events(self, max_events: int | None = None) -> Iterator[MovingObjectEvent]:
        """All events in time order (optionally capped at ``max_events``).

        When the cap exceeds what the initial trips provide, finished
        objects start new trips, so any requested number of update
        transactions can be generated — the paper's 32 K-transaction run
        over 500 objects needs exactly this behaviour.
        """
        rng = random.Random(self.seed)
        heap: list[tuple[float, int, str]] = []   # (time, oid, action)
        trips: dict[int, _Trip] = {}
        emitted = 0

        def start_trip(oid: int, at_ms: float) -> MovingObjectEvent:
            _, _, path = self.network.random_trip(rng)
            speed_kmh = rng.choice(SPEED_CLASSES_KMH)
            trips[oid] = _Trip(
                oid=oid, path=path,
                speed_m_per_ms=speed_kmh * 1000.0 / 3_600_000.0,
            )
            x, y = self.network.position_of(path[0])
            heapq.heappush(heap, (at_ms + REPORT_INTERVAL_MS, oid, "move"))
            return MovingObjectEvent(at_ms, "insert", oid, int(x), int(y))

        spawn_times = sorted(
            rng.uniform(0.0, self.spawn_spread_ms) for _ in range(self.objects)
        )
        for oid, at_ms in enumerate(spawn_times):
            heapq.heappush(heap, (at_ms, oid, "spawn"))

        inserted: set[int] = set()
        while heap:
            if max_events is not None and emitted >= max_events:
                return
            time_ms, oid, action = heapq.heappop(heap)
            if action == "spawn":
                yield start_trip(oid, time_ms)
                inserted.add(oid)
                emitted += 1
                continue
            trip = trips[oid]
            trip.progress_m += trip.speed_m_per_ms * REPORT_INTERVAL_MS
            position, finished = self._position_along(trip)
            x, y = position
            yield MovingObjectEvent(time_ms, "update", oid, int(x), int(y))
            emitted += 1
            if finished:
                del trips[oid]
                if max_events is not None:
                    # Keep the stream going: the object begins a new trip
                    # after a short pause (it does NOT re-insert: the row
                    # already exists, so its next report is an update).
                    _, _, path = self.network.random_trip(rng)
                    speed_kmh = rng.choice(SPEED_CLASSES_KMH)
                    trips[oid] = _Trip(
                        oid=oid, path=path,
                        speed_m_per_ms=speed_kmh * 1000.0 / 3_600_000.0,
                    )
                    heapq.heappush(
                        heap,
                        (time_ms + REPORT_INTERVAL_MS * 2, oid, "move"),
                    )
            else:
                heapq.heappush(
                    heap, (time_ms + REPORT_INTERVAL_MS, oid, "move")
                )

    def _position_along(self, trip: _Trip) -> tuple[tuple[float, float], bool]:
        """Interpolated position after ``progress_m`` meters of travel."""
        graph = self.network.graph
        remaining = trip.progress_m
        for u, v in zip(trip.path, trip.path[1:]):
            edge_len = graph.edges[u, v]["length"]
            if remaining <= edge_len:
                ux, uy = self.network.position_of(u)
                vx, vy = self.network.position_of(v)
                f = remaining / edge_len
                return (ux + (vx - ux) * f, uy + (vy - uy) * f), False
            remaining -= edge_len
        return self.network.position_of(trip.path[-1]), True

    # -- summary helpers ---------------------------------------------------------

    def transaction_mix(self, total: int) -> tuple[int, int]:
        """(inserts, updates) among the first ``total`` events."""
        inserts = updates = 0
        for event in self.events(max_events=total):
            if event.kind == "insert":
                inserts += 1
            else:
                updates += 1
        return inserts, updates
