"""The table layer: versioned inserts/updates/deletes and temporal reads.

Every mutation follows the paper's protocol:

* a new record version is written carrying the transaction's **TID** in its
  Ttime field (lazy timestamping stage II),
* updating a record first timestamps every committed version in its chain
  (the "update a non-timestamped version" trigger of Section 2.2),
* a delete writes a **delete stub** — "a special new version … that
  indicates when the record was deleted" — rather than removing anything,
* conventional (non-immortal, non-snapshot) tables update **in place**, so
  the Fig-5 baseline pays exactly a conventional table's costs.

Reads dispatch on the transaction mode: current reads take record locks
(serializable), snapshot reads use the lock-free visibility rules, and
AS OF reads route through the time-split page chain (or the TSB-tree) to
the single page that must contain the version of interest.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.clock import Timestamp
from repro.concurrency.snapshot import visible_version
from repro.concurrency.transaction import Transaction, TxnMode
from repro.core.asof import (
    collect_unstamped_tids,
    page_for_time,
    visible_in_view,
)
from repro.core.catalog import TableSchema
from repro.core.rowcodec import RowCodec
from repro.faults.failpoints import fire
from repro.errors import (
    DuplicateKeyError,
    KeyNotFoundError,
    PageFullError,
    PageQuarantinedError,
    SQLExecutionError,
    TimestampOrderError,
    WriteConflictError,
)
from repro.repair.quarantine import Degraded
from repro.storage.page import DataPage
from repro.storage.record import RecordVersion
from repro.wal.records import InPlaceUpdate, VersionOp, VersionOpKind
from repro.access.btree import BTree
from repro.access.tsbtree import TSBHistoryIndex

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import ImmortalDB


class Table:
    """One table: schema + primary B-tree (+ optional TSB history index)."""

    def __init__(
        self,
        engine: "ImmortalDB",
        schema: TableSchema,
        btree: BTree,
        history_index: TSBHistoryIndex | None = None,
    ) -> None:
        self.engine = engine
        self.schema = schema
        self.btree = btree
        self.history_index = history_index
        self.codec = RowCodec(
            [(c.name, c.column_type) for c in schema.columns],
            schema.key_column,
        )

    # -- identity ------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def table_id(self) -> int:
        return self.schema.table_id

    @property
    def immortal(self) -> bool:
        return self.schema.immortal

    @property
    def versioned(self) -> bool:
        """True when updates create versions instead of overwriting."""
        return self.schema.immortal or self.schema.snapshot_enabled

    # -- internal helpers ---------------------------------------------------------

    def _resolve(self, tid: int) -> tuple[Timestamp | None, bool]:
        return self.engine.tsmgr.resolve_with_fallback(
            tid, immortal=self.immortal
        )

    def _stamp_chain(self, leaf: DataPage, key: bytes) -> int:
        """Lazy-timestamping trigger: stamp committed versions of one record."""
        stamped = 0
        for version in leaf.chain(key):
            if not version.is_timestamped:
                if self.engine.tsmgr.stamp_version(version):
                    stamped += 1
        if stamped:
            self.engine.buffer.mark_dirty_page(leaf)
        return stamped

    def _horizon(self, txn: Transaction) -> tuple[Timestamp | None, bool]:
        """(visibility horizon, inclusive?) for a transaction's reads.

        Both snapshot and AS OF horizons are inclusive: the clock guarantees
        every timestamp issued after a ``now()`` read is strictly greater,
        so "ts <= horizon" means "committed before this moment".
        """
        if txn.mode is TxnMode.AS_OF:
            # "Immortal tables enable AS OF historical queries" (§4.1) —
            # conventional tables garbage collect versions, so an old AS OF
            # answer would be silently wrong rather than historical.
            self._require_immortal_for_asof()
            assert txn.snapshot_ts is not None
            return txn.snapshot_ts, True
        if txn.mode is TxnMode.SNAPSHOT:
            assert txn.snapshot_ts is not None
            return txn.snapshot_ts, True
        return None, False

    def _require_immortal_for_asof(self) -> None:
        if not self.immortal:
            raise SQLExecutionError(
                f"table {self.name!r} is not IMMORTAL: it keeps only the "
                f"recent versions snapshot isolation needs, so AS OF "
                f"queries are not supported (paper Section 4.1)"
            )

    def _validate_pinned(self, txn: Transaction, ts: Timestamp | None) -> None:
        """CURRENT TIME validation: pinned transactions cannot touch data
        committed after their pinned timestamp (see §7.2 extension)."""
        if txn.pinned_ts is not None and ts is not None and ts > txn.pinned_ts:
            raise TimestampOrderError(
                f"transaction {txn.tid} answered CURRENT TIME as "
                f"{txn.pinned_ts} but touched data committed at {ts}; "
                f"it must abort and retry"
            )

    def _check_write_conflict(
        self, txn: Transaction, leaf: DataPage, key: bytes
    ) -> None:
        """First-committer-wins for snapshot writers (Section 1.1 [3]),
        plus CURRENT TIME validation for pinned transactions."""
        if txn.pinned_ts is not None:
            head = leaf.head(key)
            if head is not None and head.is_timestamped:
                self._validate_pinned(txn, head.timestamp)
        if txn.mode is not TxnMode.SNAPSHOT:
            return
        head = leaf.head(key)
        if head is None:
            return
        if not head.is_timestamped:
            ts, committed = self._resolve(head.tid)
            if not committed:
                if head.tid != txn.tid:
                    raise WriteConflictError(
                        f"key {key!r}: concurrent uncommitted writer "
                        f"(TID {head.tid})"
                    )
                return
        else:
            ts = head.timestamp
        assert txn.snapshot_ts is not None and ts is not None
        if ts > txn.snapshot_ts:
            raise WriteConflictError(
                f"key {key!r} was modified at {ts} after this snapshot "
                f"transaction began at {txn.snapshot_ts}"
            )

    def _log_and_apply_version(
        self,
        txn: Transaction,
        kind: VersionOpKind,
        key: bytes,
        payload: bytes,
    ) -> None:
        """The shared tail of insert/update/delete: log, stamp-II, apply."""
        record = RecordVersion.new(
            key, payload, txn.tid, delete_stub=kind == VersionOpKind.DELETE
        )
        leaf = self.btree.leaf_for_insert(record)
        lsn = self.engine.txn_mgr.log_update(
            txn,
            VersionOp(
                kind=kind,
                table_id=self.table_id,
                page_id=leaf.page_id,
                key=key,
                payload=payload,
            ),
        )
        self.engine.tsmgr.on_version_created(
            txn.tid, self.table_id, leaf.page_id, key
        )
        self.btree.apply_insert(leaf, record, lsn)
        self.engine.version_ops += 1
        txn.writes.add((self.table_id, key))
        txn.version_count += 1
        if self.immortal:
            txn.touched_immortal = True

    # -- mutations -------------------------------------------------------------------

    def insert(self, txn: Transaction, row: dict) -> None:
        """Insert a new record (fails if a live record already has the key)."""
        txn.require_writable()
        key, payload = self.codec.encode_row(row)
        # Lock-then-latch discipline: the (possibly blocking) record lock is
        # taken first; the engine latch is only held for the structural work
        # and never across a lock wait (see DESIGN.md "Concurrent execution").
        self.engine.locks.lock_record_exclusive(txn.tid, self.table_id, key)
        with self.engine._latch:
            leaf = self.btree.search_leaf(key)
            self._stamp_chain(leaf, key)
            self._check_write_conflict(txn, leaf, key)
            head = leaf.head(key)
            if head is not None:
                visible = visible_version(
                    leaf.chain(key), horizon=None, inclusive=False,
                    resolve=self._resolve, own_tid=txn.tid,
                )
                if visible is not None and not visible.is_delete_stub:
                    raise DuplicateKeyError(
                        f"table {self.name}: key "
                        f"{row[self.codec.key_column]!r} already exists"
                    )
            self._log_and_apply_version(
                txn, VersionOpKind.INSERT, key, payload
            )

    def update(self, txn: Transaction, key_value, updates: dict) -> None:
        """Update a record: a new version (versioned) or in place (plain)."""
        txn.require_writable()
        if self.codec.key_column in updates and \
                updates[self.codec.key_column] != key_value:
            raise SQLExecutionError("primary key columns cannot be updated")
        key = self.codec.encode_key(key_value)
        self.engine.locks.lock_record_exclusive(txn.tid, self.table_id, key)
        with self.engine._latch:
            leaf = self.btree.search_leaf(key)
            # "When we update a non-timestamped version of a record with a
            # later version, all existing versions must be committed, and we
            # timestamp them all" (§2.2) — except our own uncommitted
            # versions.
            self._stamp_chain(leaf, key)
            self._check_write_conflict(txn, leaf, key)
            current = visible_version(
                leaf.chain(key), horizon=None, inclusive=False,
                resolve=self._resolve, own_tid=txn.tid,
            )
            if current is None or current.is_delete_stub:
                raise KeyNotFoundError(
                    f"table {self.name}: no record with key {key_value!r}"
                )
            row = self.codec.decode_payload(current.payload)
            row.update(
                {k: v for k, v in updates.items()
                 if k != self.codec.key_column}
            )
            payload = self.codec.encode_payload(row)
            head = leaf.head(key)
            if self.versioned and not (
                head is not None and not head.is_timestamped
                and head.tid == txn.tid and not head.is_delete_stub
            ):
                self._log_and_apply_version(
                    txn, VersionOpKind.UPDATE, key, payload
                )
            else:
                # Conventional table — or a re-update of this transaction's
                # own uncommitted version: one version per (record,
                # transaction), so a chain never carries two versions with
                # the same commit timestamp.
                self._update_in_place(txn, key, current.payload, payload)

    def _update_in_place(
        self, txn: Transaction, key: bytes, before: bytes, after: bytes
    ) -> None:
        """Conventional-table update: overwrite the payload, log both images."""
        for _ in range(2):
            leaf = self.btree.search_leaf(key)
            try:
                lsn = self.engine.txn_mgr.log_update(
                    txn,
                    InPlaceUpdate(
                        table_id=self.table_id, page_id=leaf.page_id,
                        key=key, before=before, after=after,
                    ),
                )
                leaf.replace_payload_in_place(key, after)
                leaf.lsn = lsn
                self.engine.buffer.mark_dirty_page(leaf, lsn)
                self.engine.version_ops += 1  # an in-place write is the same
                # page work as a version write; the cost model prices both.
                txn.writes.add((self.table_id, key))
                return
            except PageFullError:
                # Make room as if inserting a record of the new size, then
                # retry once; the logged-but-unapplied record is harmless
                # (redo is page-LSN-guarded and undo restores `before`).
                probe = RecordVersion.new(key, after, txn.tid)
                self.btree.leaf_for_insert(probe)
        raise PageFullError(
            f"table {self.name}: in-place update of {key!r} does not fit"
        )

    def delete(self, txn: Transaction, key_value) -> None:
        """Delete a record by writing a delete stub version."""
        txn.require_writable()
        key = self.codec.encode_key(key_value)
        self.engine.locks.lock_record_exclusive(txn.tid, self.table_id, key)
        with self.engine._latch:
            leaf = self.btree.search_leaf(key)
            self._stamp_chain(leaf, key)
            self._check_write_conflict(txn, leaf, key)
            current = visible_version(
                leaf.chain(key), horizon=None, inclusive=False,
                resolve=self._resolve, own_tid=txn.tid,
            )
            if current is None or current.is_delete_stub:
                raise KeyNotFoundError(
                    f"table {self.name}: no record with key {key_value!r}"
                )
            self._log_and_apply_version(txn, VersionOpKind.DELETE, key, b"")

    # -- point reads -----------------------------------------------------------------------

    def read(self, txn: Transaction, key_value) -> dict | None:
        """Read one record under the transaction's isolation rules.

        With media recovery enabled, a read that hits a quarantined page
        degrades instead of raising: as-of reads whose horizon the stale
        backup image still covers are answered exactly (history pages are
        immutable), anything else returns a falsy, typed
        :class:`~repro.repair.quarantine.Degraded` result.
        """
        txn.require_active()
        key = self.codec.encode_key(key_value)
        if txn.mode is TxnMode.SERIALIZABLE:
            self.engine.locks.lock_record_shared(txn.tid, self.table_id, key)
        if txn.occ:
            # Optimistic reads take no lock; the key joins the read set and
            # is re-validated against later committers at commit time.
            txn.read_keys.add((self.table_id, key))
        horizon, inclusive = self._horizon(txn)
        with self.engine._latch:
            try:
                return self._read_at(txn, key, horizon, inclusive)
            except PageQuarantinedError as exc:
                return self._degraded_read(txn, key, horizon, inclusive, exc)

    def latest_committed_ts(self, key: bytes) -> Timestamp | None:
        """Timestamp of the newest *committed* version of ``key``.

        The OCC validator compares this against a committing transaction's
        snapshot; uncommitted heads are skipped — a writer that has not
        committed yet will receive a later timestamp than the validator's
        transaction, which is consistent with the read not seeing it.
        """
        leaf = self.btree.search_leaf(key)
        for version in leaf.chain(key):
            if version.is_timestamped:
                return version.timestamp
            ts, committed = self._resolve(version.tid)
            if committed:
                return ts
        return None

    def _read_at(
        self,
        txn: Transaction,
        key: bytes,
        horizon: Timestamp | None,
        inclusive: bool,
    ) -> dict | None:
        leaf = self.btree.search_leaf(key)
        if horizon is not None and self.engine.route_cache is not None:
            return self._read_cached(txn, leaf, key, horizon, inclusive)
        if horizon is None or horizon >= leaf.split_ts:
            page: DataPage | None = leaf
            if horizon is None:
                # Reading triggers lazy timestamping (stage IV).
                self._stamp_chain(leaf, key)
        else:
            page = self._route(leaf, key, horizon)
        if page is None:
            return None
        version = visible_version(
            page.chain(key), horizon=horizon, inclusive=inclusive,
            resolve=self._resolve, own_tid=txn.tid,
            stats=self.engine.asof_stats,
        )
        if version is None or version.is_delete_stub:
            return None
        if version.is_timestamped:
            self._validate_pinned(txn, version.timestamp)
        return self.codec.decode_row(key, version.payload)

    def _degraded_read(
        self,
        txn: Transaction,
        key: bytes,
        horizon: Timestamp | None,
        inclusive: bool,
        exc: PageQuarantinedError,
    ):
        """Serve what the quarantine's stale backup image still proves.

        The stale image misses only changes made after its capture, and a
        current page's ``split_ts`` only ever grows — so any horizon below
        the stale image's start time routes through history pages that were
        already immutable when the image was taken.  Horizons the image
        cannot vouch for come back as :class:`Degraded` rather than a
        silently wrong answer.
        """
        repair = self.engine.repair
        if repair is not None:
            repair.stats.degraded_reads += 1
            entry = repair.quarantine.get(exc.page_id)
        else:  # pragma: no cover - quarantine implies a manager
            entry = None
        stale = entry.stale_page() if entry is not None else None
        if horizon is not None and isinstance(stale, DataPage):
            page: DataPage | None = None
            if stale.is_history:
                # History pages are immutable: the stale image IS the page.
                if stale.split_ts <= horizon < stale.end_ts:
                    page = stale
            elif horizon < stale.split_ts:
                page = self._route(stale, key, horizon)
            if page is not None or (
                not stale.is_history and horizon < stale.split_ts
            ):
                if page is None:
                    return None
                version = visible_version(
                    page.chain(key), horizon=horizon, inclusive=inclusive,
                    resolve=self._resolve, own_tid=txn.tid,
                    stats=self.engine.asof_stats,
                )
                if version is None or version.is_delete_stub:
                    return None
                return self.codec.decode_row(key, version.payload)
        return Degraded(page_id=exc.page_id, reason=str(exc))

    def _read_cached(
        self,
        txn: Transaction,
        leaf: DataPage,
        key: bytes,
        horizon: Timestamp,
        inclusive: bool,
    ) -> dict | None:
        """Historical point read through the route + page-view caches."""
        stats = self.engine.asof_stats
        stats.queries += 1
        if self.history_index is not None and horizon < leaf.split_ts:
            page: DataPage | None = self._route_tsb_cached(leaf, key, horizon)
        else:
            page = self.engine.route_cache.route(leaf, horizon)
        if page is None:
            return None
        chain_view = self.engine.page_views.view(page).get(key)
        if chain_view is None:
            return None
        source = (
            chain_view.linear
            if chain_view.linear is not None
            else chain_view.unstamped
        )
        tids = {v.tid for v in source if not v.is_timestamped}
        memo: dict = {}
        if tids:
            self.engine.tsmgr.resolve_many(tids, memo, immortal=self.immortal)
        version = visible_in_view(
            chain_view, horizon=horizon, inclusive=inclusive,
            memo=memo, own_tid=txn.tid, stats=stats,
        )
        if version is None:
            return None
        if version.is_timestamped:
            self._validate_pinned(txn, version.timestamp)
        return chain_view.decoded(version, key, self.codec)

    def _route_tsb_cached(
        self, leaf: DataPage, key: bytes, ts: Timestamp
    ) -> DataPage | None:
        """Memoized TSB-tree routing (the indexed flavour of the route cache)."""
        stats = self.engine.asof_stats
        pid, from_cache = self.history_index.cached_search(key, ts)
        if from_cache:
            fire("asof.route.hit")
            stats.route_cache_hits += 1
        else:
            fire("asof.route.miss")
            stats.route_cache_misses += 1
            stats.tsb_lookups += 1
        if pid is None:
            return None
        page = self.engine.buffer.get_page(pid)
        if not isinstance(page, DataPage):
            return None
        stats.pages_examined += 1
        stats.page_reads += 1
        return page

    def read_as_of(self, ts: Timestamp, key_value) -> dict | None:
        """Convenience: autocommitted AS OF point read."""
        txn = self.engine.begin(TxnMode.AS_OF, as_of=ts)
        try:
            return self.read(txn, key_value)
        finally:
            self.engine.commit(txn)

    def _route(
        self, leaf: DataPage, key: bytes, ts: Timestamp
    ) -> DataPage | None:
        """Find the page containing ``key``'s version at ``ts``."""
        stats = self.engine.asof_stats
        stats.queries += 1
        if self.history_index is not None:
            stats.tsb_lookups += 1
            pid = self.history_index.search(key, ts)
            if pid is None:
                return None
            page = self.engine.buffer.get_page(pid)
            if not isinstance(page, DataPage):
                return None
            stats.pages_examined += 1
            return page
        return page_for_time(self.engine.buffer, leaf, ts, stats)

    # -- scans ------------------------------------------------------------------------------------

    def scan(self, txn: Transaction) -> list[dict]:
        """All live records visible to the transaction, in key order."""
        return list(self.scan_iter(txn))

    def scan_iter(self, txn: Transaction) -> Iterator[dict]:
        """Streaming :meth:`scan`: rows are produced lazily, in key order.

        Locking and validation happen eagerly at call time; row production
        (page routing, visibility, decoding) happens as the iterator is
        consumed, so a ``LIMIT``-style consumer stops the scan early instead
        of paying for the whole table.
        """
        txn.require_active()
        if txn.mode is TxnMode.SERIALIZABLE:
            self.engine.locks.lock_table_shared(txn.tid, self.table_id)
        horizon, inclusive = self._horizon(txn)
        if horizon is not None:
            gen = self._scan_at_iter(horizon, inclusive, own_tid=txn.tid)
        else:
            gen = self._scan_current_gen(txn)
        return self._materialized_if_concurrent(gen)

    def _materialized_if_concurrent(self, gen: Iterator) -> Iterator:
        """Concurrent mode trades scan laziness for consistency.

        A lazily-consumed scan would touch pages between other threads'
        mutations; under the engine latch the whole scan runs as one
        critical section and the caller iterates a stable snapshot of rows.
        Single-threaded mode returns the generator untouched (streaming
        semantics, identical costs).
        """
        if not self.engine.concurrent:
            return gen
        with self.engine._latch:
            return iter(list(gen))

    def _scan_current_gen(self, txn: Transaction) -> Iterator[dict]:
        stats = self.engine.asof_stats
        for leaf in self.btree.leaves():
            # Reading triggers lazy timestamping (stage IV) — the same
            # policy point reads follow; the per-version durability gate
            # (group commit) is enforced inside stamp_page.
            self.engine.tsmgr.stamp_page(leaf)
            stats.page_reads += 1
            for key in leaf.keys():
                version = visible_version(
                    leaf.chain(key), horizon=None, inclusive=False,
                    resolve=self._resolve, own_tid=txn.tid, stats=stats,
                )
                if version is not None and not version.is_delete_stub:
                    yield self.codec.decode_row(key, version.payload)

    def scan_as_of(self, ts: Timestamp) -> list[dict]:
        """Full table scan AS OF ``ts`` (the Fig-6 query)."""
        return list(self.scan_as_of_iter(ts))

    def scan_as_of_iter(self, ts: Timestamp) -> Iterator[dict]:
        """Streaming :meth:`scan_as_of` (see :meth:`scan_iter`)."""
        self._require_immortal_for_asof()
        return self._materialized_if_concurrent(
            self._scan_at_iter(ts, inclusive=True, own_tid=None)
        )

    def _scan_at_iter(
        self, ts: Timestamp, inclusive: bool, own_tid: int | None
    ) -> Iterator[dict]:
        if self.engine.route_cache is not None:
            return self._scan_at_cached_gen(ts, inclusive, own_tid)
        return self._scan_at_plain_gen(ts, inclusive, own_tid)

    def _scan_at_plain_gen(
        self, ts: Timestamp, inclusive: bool, own_tid: int | None
    ) -> Iterator[dict]:
        stats = self.engine.asof_stats
        for leaf, key_low, key_high in self.btree.leaves_with_bounds():
            stats.queries += 1
            page = page_for_time(self.engine.buffer, leaf, ts, stats)
            if page is None:
                continue
            for key in page.keys():
                # Sibling leaves can share history pages after a key split;
                # each leaf only accounts for keys inside its own bounds.
                if key < key_low or (key_high is not None and key >= key_high):
                    continue
                version = visible_version(
                    page.chain(key), horizon=ts, inclusive=inclusive,
                    resolve=self._resolve, own_tid=own_tid, stats=stats,
                )
                if version is not None and not version.is_delete_stub:
                    yield self.codec.decode_row(key, version.payload)

    def _scan_at_cached_gen(
        self, ts: Timestamp, inclusive: bool, own_tid: int | None
    ) -> Iterator[dict]:
        """As-of scan through the route cache with batched TID resolution."""
        stats = self.engine.asof_stats
        route = self.engine.route_cache
        views = self.engine.page_views
        memo: dict = {}
        for leaf, key_low, key_high in self.btree.leaves_with_bounds():
            stats.queries += 1
            page = route.route(leaf, ts)
            if page is None:
                continue
            view = views.view(page)
            tids = collect_unstamped_tids(view)
            if tids:
                self.engine.tsmgr.resolve_many(
                    tids, memo, immortal=self.immortal
                )
            for key, chain_view in view.items():
                if key < key_low or (key_high is not None and key >= key_high):
                    continue
                version = visible_in_view(
                    chain_view, horizon=ts, inclusive=inclusive,
                    memo=memo, own_tid=own_tid, stats=stats,
                )
                if version is None:
                    continue
                row = chain_view.decoded(version, key, self.codec)
                if row is not None:
                    yield row

    # -- time travel --------------------------------------------------------------------------------

    def history(
        self,
        key_value,
        t_low: Timestamp | None = None,
        t_high: Timestamp | None = None,
    ) -> list[tuple[Timestamp, dict | None]]:
        """The full version history of one record, oldest first.

        Each element is ``(start_time, row)``; a deleted interval appears as
        ``(stub_time, None)``.  Bounds restrict to versions whose start time
        falls in ``[t_low, t_high]``.
        """
        return list(self.history_iter(key_value, t_low, t_high))

    def history_iter(
        self,
        key_value,
        t_low: Timestamp | None = None,
        t_high: Timestamp | None = None,
    ) -> Iterator[tuple[Timestamp, dict | None]]:
        """Streaming :meth:`history`: rows decode lazily as consumed.

        The chain walk and timestamp ordering still happen up front (the
        output is sorted oldest-first), but payload decoding — the dominant
        per-row cost — is deferred to iteration, so a consumer that stops
        after the first few versions never decodes the rest.
        """
        self._require_immortal_for_asof()
        return self._materialized_if_concurrent(
            self._history_gen(key_value, t_low, t_high)
        )

    def _history_gen(
        self,
        key_value,
        t_low: Timestamp | None,
        t_high: Timestamp | None,
    ) -> Iterator[tuple[Timestamp, dict | None]]:
        key = self.codec.encode_key(key_value)
        leaf = self.btree.search_leaf(key)
        stats = self.engine.asof_stats
        memoize = self.engine.route_cache is not None
        memo: dict[int, tuple[Timestamp | None, bool]] = {}
        out: dict[Timestamp, RecordVersion] = {}
        page: DataPage | None = leaf
        while page is not None:
            stats.page_reads += 1
            for version in page.chain(key):
                stats.chain_steps += 1
                if not version.is_timestamped:
                    if memoize:
                        if version.tid not in memo:
                            memo[version.tid] = self._resolve(version.tid)
                        ts, committed = memo[version.tid]
                    else:
                        ts, committed = self._resolve(version.tid)
                    if not committed:
                        continue
                else:
                    ts = version.timestamp
                assert ts is not None
                if t_low is not None and ts < t_low:
                    continue
                if t_high is not None and ts > t_high:
                    continue
                if ts not in out:  # spanning copies appear in two pages
                    out[ts] = version
            next_pid = page.history_page_id
            page = (
                self.engine.buffer.get_page(next_pid)  # type: ignore[assignment]
                if next_pid
                else None
            )
        for ts in sorted(out):
            version = out[ts]
            yield (
                ts,
                None
                if version.is_delete_stub
                else self.codec.decode_row(key, version.payload),
            )

    def scan_range(
        self,
        txn: Transaction,
        low=None,
        high=None,
    ) -> list[dict]:
        """Records with ``low <= key <= high``, under the txn's isolation.

        Bounds are key-column values; None leaves an end open.  Uses the
        B-tree to start at the right leaf instead of scanning from the
        first one.
        """
        return list(self.scan_range_iter(txn, low, high))

    def scan_range_iter(
        self,
        txn: Transaction,
        low=None,
        high=None,
    ) -> Iterator[dict]:
        """Streaming :meth:`scan_range` (see :meth:`scan_iter`).

        Stops walking leaves as soon as a key above ``high`` is seen, and
        descends the B-tree to skip leaves entirely below ``low``.
        """
        txn.require_active()
        low_img = self.codec.encode_key(low) if low is not None else None
        high_img = self.codec.encode_key(high) if high is not None else None
        if txn.mode is TxnMode.SERIALIZABLE:
            self.engine.locks.lock_table_shared(txn.tid, self.table_id)
        horizon, inclusive = self._horizon(txn)
        return self._materialized_if_concurrent(
            self._scan_range_gen(txn, low_img, high_img, horizon, inclusive)
        )

    def _scan_range_gen(
        self,
        txn: Transaction,
        low_img: bytes | None,
        high_img: bytes | None,
        horizon: Timestamp | None,
        inclusive: bool,
    ) -> Iterator[dict]:
        stats = self.engine.asof_stats
        cached = horizon is not None and self.engine.route_cache is not None
        memo: dict = {}
        for leaf, key_low, key_high in self.btree.leaves_with_bounds(
            start_key=low_img
        ):
            view = None
            if horizon is None:
                page = leaf
                # Current-time reads trigger lazy timestamping, exactly as
                # point reads do (stage IV of the stamping protocol).
                self.engine.tsmgr.stamp_page(leaf)
                stats.page_reads += 1
            elif cached:
                page = self.engine.route_cache.route(leaf, horizon)
                if page is None:
                    continue
                view = self.engine.page_views.view(page)
                tids = collect_unstamped_tids(view)
                if tids:
                    self.engine.tsmgr.resolve_many(
                        tids, memo, immortal=self.immortal
                    )
            else:
                page = page_for_time(
                    self.engine.buffer, leaf, horizon, stats
                )
                if page is None:
                    continue
            for key in page.keys():
                if key < key_low or (key_high is not None and key >= key_high):
                    continue
                if low_img is not None and key < low_img:
                    continue
                if high_img is not None and key > high_img:
                    return
                if view is not None:
                    chain_view = view.get(key)
                    if chain_view is None:
                        continue
                    version = visible_in_view(
                        chain_view, horizon=horizon, inclusive=inclusive,
                        memo=memo, own_tid=txn.tid, stats=stats,
                    )
                    if version is None:
                        continue
                    row = chain_view.decoded(version, key, self.codec)
                    if row is not None:
                        yield row
                    continue
                version = visible_version(
                    page.chain(key), horizon=horizon, inclusive=inclusive,
                    resolve=self._resolve, own_tid=txn.tid, stats=stats,
                )
                if version is not None and not version.is_delete_stub:
                    yield self.codec.decode_row(key, version.payload)

    def changes_between(
        self, t_old: Timestamp, t_new: Timestamp
    ) -> dict[object, tuple[dict | None, dict | None]]:
        """Diff of two database states: {key: (row at t_old, row at t_new)}.

        Only keys whose visible row differs appear; a None side means the
        record did not exist at that time.  This is the audit primitive —
        "what did that batch job actually change?" — built on two AS OF
        scans.
        """
        if t_new < t_old:
            raise SQLExecutionError("changes_between needs t_old <= t_new")
        old_rows = {
            row[self.codec.key_column]: row for row in self.scan_as_of(t_old)
        }
        new_rows = {
            row[self.codec.key_column]: row for row in self.scan_as_of(t_new)
        }
        diff: dict[object, tuple[dict | None, dict | None]] = {}
        for key in old_rows.keys() | new_rows.keys():
            before = old_rows.get(key)
            after = new_rows.get(key)
            if before != after:
                diff[key] = (before, after)
        return diff

    # -- maintenance hooks (wired into the B-tree by the engine) -------------------------------------

    def iter_all_pages(self) -> Iterator[DataPage]:
        """Every *readable* data page: current leaves then their history.

        A quarantined archive block ends that leaf's chain walk — the
        damage itself is reported by the archive integrity checks.
        """
        for leaf in self.btree.leaves():
            yield leaf
            pid = leaf.history_page_id
            while pid:
                try:
                    page = self.engine.buffer.get_page(pid)
                except PageQuarantinedError:
                    break
                assert isinstance(page, DataPage)
                yield page
                pid = page.history_page_id
