"""AS OF query machinery: routing by time, then by version chain.

Query processing follows Section 4.2 exactly:

1. traverse the B-tree on the primary key to the *current* page;
2. check the current page's **split time** — if the as-of time is later, the
   version we want is in the current page;
3. otherwise follow the time-split page chain back to the page whose
   ``[split time, end time)`` range contains the as-of time (or, with the
   TSB-tree, jump straight to it);
4. follow the record's version chain *within that one page* to the version
   with the largest timestamp ≤ the as-of time.

Step 4 only ever needs one page because of the time split's case-2
redundancy: every page contains all versions alive in its time range.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clock import Timestamp
from repro.concurrency.snapshot import Resolver, visible_version
from repro.errors import AccessMethodError
from repro.storage.buffer import BufferPool
from repro.storage.page import DataPage
from repro.storage.record import RecordVersion


@dataclass
class AsOfStats:
    """Instrumentation for the Fig-6 / Abl-2 benches."""

    queries: int = 0
    chain_hops: int = 0          # history pages walked through
    pages_examined: int = 0
    tsb_lookups: int = 0

    def snapshot(self) -> "AsOfStats":
        """An independent copy of the current counter values."""
        return AsOfStats(
            self.queries, self.chain_hops, self.pages_examined, self.tsb_lookups
        )


def page_for_time(
    buffer: BufferPool,
    leaf: DataPage,
    ts: Timestamp,
    stats: AsOfStats | None = None,
) -> DataPage | None:
    """Walk the time-split chain from a current leaf to the page covering ``ts``.

    Returns None when ``ts`` predates all recorded history for this leaf's
    key region (the table held no data for it then).
    """
    page: DataPage = leaf
    hops = 0
    while ts < page.split_ts:
        next_pid = page.history_page_id
        if not next_pid:
            if stats is not None:
                stats.chain_hops += hops
            return None
        nxt = buffer.get_page(next_pid)
        if not isinstance(nxt, DataPage) or not nxt.is_history:
            raise AccessMethodError(
                f"history chain of page {page.page_id} hit non-history "
                f"page {next_pid}"
            )
        page = nxt
        hops += 1
    if stats is not None:
        stats.chain_hops += hops
        stats.pages_examined += 1
    if page.is_history and ts >= page.end_ts:
        raise AccessMethodError(
            f"page chain routing error: {ts} not in "
            f"[{page.split_ts}, {page.end_ts}) of page {page.page_id}"
        )
    return page


def version_as_of(
    page: DataPage,
    key: bytes,
    ts: Timestamp,
    resolve: Resolver,
) -> RecordVersion | None:
    """The version of ``key`` with the largest timestamp ≤ ``ts`` in ``page``.

    Returns the version (possibly a delete stub — the caller interprets it)
    or None if the record did not exist at ``ts``.
    """
    return visible_version(
        page.chain(key), horizon=ts, inclusive=True, resolve=resolve
    )
