"""AS OF query machinery: routing by time, then by version chain.

Query processing follows Section 4.2 exactly:

1. traverse the B-tree on the primary key to the *current* page;
2. check the current page's **split time** — if the as-of time is later, the
   version we want is in the current page;
3. otherwise follow the time-split page chain back to the page whose
   ``[split time, end time)`` range contains the as-of time (or, with the
   TSB-tree, jump straight to it);
4. follow the record's version chain *within that one page* to the version
   with the largest timestamp ≤ the as-of time.

Step 4 only ever needs one page because of the time split's case-2
redundancy: every page contains all versions alive in its time range.

Two read-path caches live here, both off by default (the engine's
``asof_route_cache`` knob turns them on together):

* :class:`AsOfRouteCache` memoizes the step-3 chain walk per current leaf:
  one full walk records every ``[split_ts, end_ts)`` interval on the chain,
  and later queries binary-search the interval list instead of re-walking
  pages.  Entries are validated against the leaf's
  :attr:`~repro.storage.page.Page.cache_token` (instance stamp + mutation
  epoch), so any leaf mutation — insert, stamping, time split — invalidates
  the route; history pages are immutable once created, so the recorded
  intervals themselves can never go stale while the leaf is unchanged.
* :class:`PageViewCache` memoizes step 4 per (page, token): for every key it
  partitions the chain into the unstamped (TID-marked) prefix and an
  *ascending* array of stamped timestamps, so visibility is one bisect
  instead of a linear walk constructing a Timestamp per version.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass

from repro.clock import Timestamp
from repro.concurrency.snapshot import Resolver, visible_version
from repro.errors import AccessMethodError
from repro.faults.failpoints import fire
from repro.storage.buffer import BufferPool
from repro.storage.page import DataPage
from repro.storage.record import RecordVersion


@dataclass
class AsOfStats:
    """Instrumentation for the Fig-6 / Abl-2 benches and the read path."""

    queries: int = 0
    chain_hops: int = 0          # history pages walked through
    pages_examined: int = 0
    tsb_lookups: int = 0
    page_reads: int = 0          # data pages fetched by read operations
    chain_steps: int = 0         # record versions examined for visibility
    route_cache_hits: int = 0
    route_cache_misses: int = 0

    def snapshot(self) -> "AsOfStats":
        """An independent copy of the current counter values."""
        return AsOfStats(
            self.queries, self.chain_hops, self.pages_examined,
            self.tsb_lookups, self.page_reads, self.chain_steps,
            self.route_cache_hits, self.route_cache_misses,
        )


def page_for_time(
    buffer: BufferPool,
    leaf: DataPage,
    ts: Timestamp,
    stats: AsOfStats | None = None,
) -> DataPage | None:
    """Walk the time-split chain from a current leaf to the page covering ``ts``.

    Returns None when ``ts`` predates all recorded history for this leaf's
    key region (the table held no data for it then).
    """
    page: DataPage = leaf
    hops = 0
    while ts < page.split_ts:
        next_pid = page.history_page_id
        if not next_pid:
            if stats is not None:
                stats.chain_hops += hops
                stats.page_reads += hops + 1
            return None
        nxt = buffer.get_page(next_pid)
        if not isinstance(nxt, DataPage) or not nxt.is_history:
            raise AccessMethodError(
                f"history chain of page {page.page_id} hit non-history "
                f"page {next_pid}"
            )
        page = nxt
        hops += 1
    if stats is not None:
        stats.chain_hops += hops
        stats.pages_examined += 1
        stats.page_reads += hops + 1
    if page.is_history and ts >= page.end_ts:
        raise AccessMethodError(
            f"page chain routing error: {ts} not in "
            f"[{page.split_ts}, {page.end_ts}) of page {page.page_id}"
        )
    return page


def version_as_of(
    page: DataPage,
    key: bytes,
    ts: Timestamp,
    resolve: Resolver,
) -> RecordVersion | None:
    """The version of ``key`` with the largest timestamp ≤ ``ts`` in ``page``.

    Returns the version (possibly a delete stub — the caller interprets it)
    or None if the record did not exist at ``ts``.
    """
    return visible_version(
        page.chain(key), horizon=ts, inclusive=True, resolve=resolve
    )


# -- as-of route cache ---------------------------------------------------------


class _RouteEntry:
    """Interval list for one leaf's time-split chain, oldest first."""

    __slots__ = ("token", "structure", "bounds", "pids")

    def __init__(
        self,
        token: tuple[int, int],
        structure: tuple[int, Timestamp],
        bounds: list[Timestamp],
        pids: list[int],
    ) -> None:
        self.token = token
        # (history_page_id, split_ts) of the leaf when the entry was built:
        # the only leaf fields routing depends on.  When the mutation epoch
        # moved but these did not (a record insert, a stamping pass), the
        # intervals are still exact and the entry is revalidated in place.
        self.structure = structure
        self.bounds = bounds   # ascending split_ts; bounds[i] starts pids[i]
        self.pids = pids       # pids[-1] is the current leaf itself


class AsOfRouteCache:
    """Memoized ``page_for_time``: per-leaf interval lists keyed by epoch.

    A cache entry is valid exactly while the leaf's ``cache_token`` is
    unchanged; any mutation (insert, stamping, split — all of which bump the
    mutation epoch, or replace the page object entirely) invalidates it.
    History pages are never modified after creation, so a valid token also
    vouches for every interval recorded behind the leaf.
    """

    def __init__(
        self,
        buffer: BufferPool,
        stats: AsOfStats,
        *,
        max_entries: int = 4096,
    ) -> None:
        self.buffer = buffer
        self.stats = stats
        self.max_entries = max_entries
        self._entries: dict[int, _RouteEntry] = {}

    def clear(self) -> None:
        """Drop every cached route (crash / recovery / DDL)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def route(self, leaf: DataPage, ts: Timestamp) -> DataPage | None:
        """The page of ``leaf``'s chain covering ``ts`` (None: before history)."""
        stats = self.stats
        entry = self._entries.get(leaf.page_id)
        if entry is not None and self._validate(entry, leaf):
            fire("asof.route.hit")
            stats.route_cache_hits += 1
        else:
            if entry is not None:
                fire("asof.route.invalidate")
                del self._entries[leaf.page_id]
            fire("asof.route.miss")
            stats.route_cache_misses += 1
            entry = self._build(leaf)
        i = bisect_right(entry.bounds, ts) - 1
        if i < 0:
            return None  # ts predates all recorded history for this leaf
        pid = entry.pids[i]
        stats.pages_examined += 1
        stats.page_reads += 1
        if pid == leaf.page_id:
            return leaf
        page = self.buffer.get_page(pid)
        if not isinstance(page, DataPage):
            raise AccessMethodError(
                f"route cache of leaf {leaf.page_id} led to non-data "
                f"page {pid}"
            )
        if page.is_history and ts >= page.end_ts:
            raise AccessMethodError(
                f"route cache error: {ts} not in "
                f"[{page.split_ts}, {page.end_ts}) of page {page.page_id}"
            )
        return page

    def _validate(self, entry: _RouteEntry, leaf: DataPage) -> bool:
        """Fast epoch check, falling back to structural revalidation.

        Routing depends only on the leaf's ``history_page_id`` and
        ``split_ts``: content mutations (inserts, stamping) bump the epoch
        without moving either, so the intervals remain exact — refresh the
        stored token and keep the entry.  A different *object* (a split
        installed via ``replace_page``) always fails both checks.
        """
        token = leaf.cache_token
        if entry.token == token:
            return True
        if entry.token[0] == token[0] \
                and entry.structure == (leaf.history_page_id, leaf.split_ts):
            entry.token = token
            return True
        return False

    def on_time_split(self, outcome) -> None:
        """Extend a cached route across a time split instead of dropping it.

        The split's :attr:`~repro.access.timesplit.SplitOutcome.routing_interval`
        is exactly the interval the chain gained; the rebuilt current page
        keeps the page id, so the old entry (if its shape matches) becomes
        the new entry with one append.
        """
        leaf = outcome.current
        old = self._entries.pop(leaf.page_id, None)
        if old is None:
            return
        split_ts, end_ts, history_pid = outcome.routing_interval
        if not old.bounds or old.bounds[-1] != split_ts \
                or old.pids[-1] != leaf.page_id:
            fire("asof.route.invalidate")
            return  # entry predates an unseen structural change: drop it
        self._entries[leaf.page_id] = _RouteEntry(
            leaf.cache_token,
            (leaf.history_page_id, leaf.split_ts),
            old.bounds + [end_ts],
            old.pids[:-1] + [history_pid, leaf.page_id],
        )

    def invalidate(self, leaf_pid: int) -> None:
        """Eagerly drop one leaf's cached route (key splits, root growth)."""
        if self._entries.pop(leaf_pid, None) is not None:
            fire("asof.route.invalidate")

    def _build(self, leaf: DataPage) -> _RouteEntry:
        """Walk the whole chain once; record every interval, newest first."""
        bounds: list[Timestamp] = []
        pids: list[int] = []
        page: DataPage = leaf
        while True:
            bounds.append(page.split_ts)
            pids.append(page.page_id)
            next_pid = page.history_page_id
            if not next_pid:
                break
            nxt = self.buffer.get_page(next_pid)
            if not isinstance(nxt, DataPage) or not nxt.is_history:
                raise AccessMethodError(
                    f"history chain of page {page.page_id} hit non-history "
                    f"page {next_pid}"
                )
            self.stats.chain_hops += 1
            self.stats.page_reads += 1
            page = nxt
        bounds.reverse()
        pids.reverse()
        entry = _RouteEntry(
            leaf.cache_token,
            (leaf.history_page_id, leaf.split_ts),
            bounds,
            pids,
        )
        if len(self._entries) >= self.max_entries:
            self._entries.clear()
        self._entries[leaf.page_id] = entry
        return entry


# -- page view cache (batched resolution + bisect visibility) ------------------


class _ChainView:
    """One key's chain, pre-sorted for binary-search visibility.

    ``unstamped`` holds the TID-marked prefix newest first; ``ts_list`` /
    ``versions`` are the stamped suffix in *ascending* timestamp order.  If
    the chain violates the prefix/monotonicity invariant (it never should),
    ``linear`` holds the raw chain and visibility falls back to the exact
    linear walk.

    ``rows`` memoizes decoded rows keyed by ``id(version)`` (None for delete
    stubs).  The view keeps every version it references alive, so the ids
    are stable for exactly as long as the view itself is valid — the memo
    can never outlive the data it describes.
    """

    __slots__ = ("unstamped", "ts_list", "versions", "linear", "rows")

    def __init__(
        self,
        unstamped: list[RecordVersion],
        ts_list: list[Timestamp],
        versions: list[RecordVersion],
        linear: list[RecordVersion] | None,
    ) -> None:
        self.unstamped = unstamped
        self.ts_list = ts_list
        self.versions = versions
        self.linear = linear
        self.rows: dict[int, dict | None] = {}

    def decoded(self, version: RecordVersion, key: bytes, codec) -> dict | None:
        """Decode ``version`` through the memo; None for delete stubs.

        Returns a fresh copy per call so callers can mutate their row.
        """
        vid = id(version)
        row = self.rows.get(vid, _MISSING)
        if row is _MISSING:
            row = (
                None if version.is_delete_stub
                else codec.decode_row(key, version.payload)
            )
            self.rows[vid] = row
        return dict(row) if row is not None else None


_MISSING = object()


PageView = dict[bytes, _ChainView]


class PageViewCache:
    """Per-page chain views keyed by the page's cache token."""

    def __init__(self, stats: AsOfStats, *, max_pages: int = 1024) -> None:
        self.stats = stats
        self.max_pages = max_pages
        self._views: dict[int, tuple[tuple[int, int], PageView]] = {}

    def clear(self) -> None:
        self._views.clear()

    def view(self, page: DataPage) -> PageView:
        cached = self._views.get(page.page_id)
        token = page.cache_token
        if cached is not None and cached[0] == token:
            return cached[1]
        view = _build_page_view(page)
        if len(self._views) >= self.max_pages:
            self._views.clear()
        self._views[page.page_id] = (token, view)
        return view


def _build_page_view(page: DataPage) -> PageView:
    view: PageView = {}
    for key in page.keys():
        unstamped: list[RecordVersion] = []
        stamped: list[RecordVersion] = []
        ordered = True
        prev: Timestamp | None = None
        for version in page.chain(key):
            if not version.is_timestamped:
                if stamped:
                    ordered = False  # unstamped below stamped: not a prefix
                    break
                unstamped.append(version)
                continue
            ts = version.timestamp
            if prev is not None and ts > prev:
                ordered = False  # stamped run not descending (never expected)
                break
            prev = ts
            stamped.append(version)
        if not ordered:
            view[key] = _ChainView([], [], [], list(page.chain(key)))
            continue
        stamped.reverse()
        view[key] = _ChainView(
            unstamped, [v.timestamp for v in stamped], stamped, None
        )
    return view


def collect_unstamped_tids(view: PageView) -> set[int]:
    """Every TID still marking a version in the page (one batch to resolve)."""
    tids: set[int] = set()
    for chain_view in view.values():
        source = (
            chain_view.linear
            if chain_view.linear is not None
            else chain_view.unstamped
        )
        for version in source:
            if not version.is_timestamped:
                tids.add(version.tid)
    return tids


def visible_in_view(
    chain_view: _ChainView,
    *,
    horizon: Timestamp,
    inclusive: bool,
    memo: dict[int, tuple[Timestamp | None, bool]],
    own_tid: int | None,
    stats: AsOfStats,
) -> RecordVersion | None:
    """Bisect-based :func:`visible_version` over a pre-built chain view.

    ``memo`` is the per-scan TID→(timestamp, committed) map produced by
    :meth:`TimestampManager.resolve_many`; it replaces per-version resolver
    calls.  Semantics match the linear walk exactly: the unstamped prefix is
    newer than every stamped version, so a committed-in-memo unstamped
    version at or before the horizon wins; otherwise the newest stamped
    version at or before the horizon does.
    """
    if chain_view.linear is not None:
        return visible_version(
            chain_view.linear, horizon=horizon, inclusive=inclusive,
            resolve=lambda tid: memo[tid], own_tid=own_tid, stats=stats,
        )
    for version in chain_view.unstamped:
        stats.chain_steps += 1
        if version.is_timestamped:
            ts: Timestamp | None = version.timestamp
        else:
            if own_tid is not None and version.tid == own_tid:
                continue  # own writes are newer than any snapshot horizon
            ts, committed = memo[version.tid]
            if not committed:
                continue
        assert ts is not None
        if ts < horizon or (inclusive and ts == horizon):
            return version
    ts_list = chain_view.ts_list
    if inclusive:
        i = bisect_right(ts_list, horizon)
    else:
        i = bisect_left(ts_list, horizon)
    if i:
        stats.chain_steps += 1
        return chain_view.versions[i - 1]
    return None
