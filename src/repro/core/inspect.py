"""Table introspection: page, chain, and storage statistics.

Operators of a transaction-time database need answers the catalog alone
cannot give: how much of the table is history, how long the version chains
are getting, how deep the time-split page chains run (which bounds worst-
case AS OF latency without a TSB-tree), and how well current pages are
utilized (the quantity the split threshold T governs).

``inspect_table`` walks every page of one table and returns a
:class:`TableInspection`; ``format_report`` renders it for humans.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clock import Timestamp
from repro.storage.constants import DATA_HEADER_SIZE
from repro.core.table import Table


@dataclass
class TableInspection:
    """Everything a storage operator would ask about one table."""

    table_name: str = ""
    immortal: bool = False
    # Pages
    current_pages: int = 0
    history_pages: int = 0
    max_page_chain_depth: int = 0       # longest time-split chain off a leaf
    # Versions
    live_records: int = 0
    total_versions: int = 0
    delete_stubs: int = 0
    unstamped_versions: int = 0
    redundant_copies: int = 0           # case-2 spanning duplicates
    max_record_chain: int = 0           # within one page
    # Utilization
    current_utilization: float = 0.0    # all bytes / capacity, current pages
    timeslice_utilization: float = 0.0  # head-version bytes / capacity
    history_utilization: float = 0.0
    # Time coverage
    oldest_version: Timestamp | None = None
    newest_version: Timestamp | None = None
    index_height: int = 0
    tsb_nodes: int = 0


def inspect_table(table: Table) -> TableInspection:
    """Walk the table's pages and gather statistics (read-only)."""
    info = TableInspection(
        table_name=table.name, immortal=table.immortal
    )
    current_used = current_capacity = current_heads = 0
    history_used = history_capacity = 0
    seen_timestamps: dict[bytes, set[Timestamp]] = {}

    for leaf in table.btree.leaves():
        info.current_pages += 1
        info.live_records += sum(
            1 for key in leaf.keys() if not leaf.head(key).is_delete_stub
        )
        current_used += leaf.used_bytes - DATA_HEADER_SIZE
        current_capacity += leaf.page_size - DATA_HEADER_SIZE
        current_heads += leaf.current_version_bytes()
        depth = 0
        pid = leaf.history_page_id
        while pid:
            depth += 1
            page = table.engine.buffer.get_page(pid)
            pid = page.history_page_id
        info.max_page_chain_depth = max(info.max_page_chain_depth, depth)

    for page in table.iter_all_pages():
        if page.is_history:
            info.history_pages += 1
            history_used += page.used_bytes - DATA_HEADER_SIZE
            history_capacity += page.page_size - DATA_HEADER_SIZE
        for key in page.keys():
            chain_len = 0
            for version in page.chain(key):
                chain_len += 1
                info.total_versions += 1
                if version.is_delete_stub:
                    info.delete_stubs += 1
                if not version.is_timestamped:
                    info.unstamped_versions += 1
                    continue
                ts = version.timestamp
                stamps = seen_timestamps.setdefault(key, set())
                if ts in stamps:
                    info.redundant_copies += 1
                else:
                    stamps.add(ts)
                if info.oldest_version is None or ts < info.oldest_version:
                    info.oldest_version = ts
                if info.newest_version is None or ts > info.newest_version:
                    info.newest_version = ts
            info.max_record_chain = max(info.max_record_chain, chain_len)

    if current_capacity:
        info.current_utilization = current_used / current_capacity
        info.timeslice_utilization = current_heads / current_capacity
    if history_capacity:
        info.history_utilization = history_used / history_capacity

    # Index height: root to leaf.
    from repro.access.btree import BTreeIndexPage

    height = 1
    node = table.engine.buffer.get_page(table.btree.root_pid)
    while isinstance(node, BTreeIndexPage):
        height += 1
        node = table.engine.buffer.get_page(node.children[0])
    info.index_height = height
    if table.history_index is not None:
        info.tsb_nodes = len(table.history_index.all_nodes())
    return info


def format_report(info: TableInspection) -> str:
    """A human-readable storage report."""
    kind = "immortal" if info.immortal else "conventional"
    lines = [
        f"table {info.table_name!r} ({kind})",
        f"  pages:        {info.current_pages} current, "
        f"{info.history_pages} history "
        f"(longest chain: {info.max_page_chain_depth})",
        f"  records:      {info.live_records} live; "
        f"{info.total_versions} versions total "
        f"({info.delete_stubs} stubs, {info.redundant_copies} spanning "
        f"copies, {info.unstamped_versions} awaiting timestamps)",
        f"  chains:       longest in-page record chain "
        f"{info.max_record_chain}",
        f"  utilization:  current {info.current_utilization:.0%} "
        f"(timeslice {info.timeslice_utilization:.0%}), "
        f"history {info.history_utilization:.0%}",
        f"  index:        B-tree height {info.index_height}"
        + (f", TSB nodes {info.tsb_nodes}" if info.tsb_nodes else ""),
    ]
    if info.oldest_version is not None:
        lines.append(
            f"  time range:   {info.oldest_version} .. {info.newest_version}"
        )
    return "\n".join(lines)
