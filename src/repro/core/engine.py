"""The Immortal DB engine: component wiring, DDL, transactions, recovery.

One :class:`ImmortalDB` instance is one database: a page store, a buffer
pool, a write-ahead log, the simulated clock, the lazy (or eager) timestamp
manager with its PTT/VTT, a lock manager, and the catalog of tables.

The engine doubles as the :class:`~repro.wal.recovery.RecoverySupport`
object — it owns everything recovery needs, plus the ``locate_current_page``
locator used by logical undo and by eager timestamping's commit revisits.

Crash testing is first-class: :meth:`crash` throws away all volatile state
(buffer pool, VTT, locks, active transactions, the unforced log suffix) and
:meth:`recover` brings the database back via analysis/redo/undo — the same
path a restart after a real failure would take.
"""

from __future__ import annotations

import datetime as _dt
import threading
from contextlib import contextmanager
from typing import Iterator

from repro.clock import SimClock, Timestamp
from repro.concurrency.latching import NullLatch, ReentrantLatch
from repro.concurrency.locks import LockManager
from repro.concurrency.snapshot import SnapshotRegistry, prune_conventional_page
from repro.concurrency.transaction import Transaction, TransactionManager, TxnMode
from repro.core.asof import AsOfRouteCache, AsOfStats, PageViewCache
from repro.core.catalog import Catalog, ColumnDef, TableSchema
from repro.core.rowcodec import ColumnType
from repro.core.table import Table
from repro.errors import CatalogError, SchemaError, TableNotFoundError
from repro.faults.failpoints import fire
from repro.storage.buffer import BufferPool
from repro.storage.constants import META_PAGE_ID, PAGE_SIZE
from repro.repair.manager import MediaRecoveryManager
from repro.storage.disk import FileDisk, InMemoryDisk, PageStore, RetryPolicy
from repro.storage.page import DataPage, MetaPage
from repro.timestamp.eager import EagerTimestampManager
from repro.timestamp.manager import TimestampManager
from repro.timestamp.ptt import PersistentTimestampTable
from repro.wal.checkpoint import CheckpointManager
from repro.wal.filelog import FileLogManager
from repro.wal.log import LogManager
from repro.wal.recovery import RecoveryReport, run_recovery
from repro.access.btree import BTree
from repro.access.tsbtree import TSBHistoryIndex

ColumnsArg = list[tuple[str, ColumnType | str]]


class ImmortalDB:
    """A transaction-time database engine (the paper's Immortal DB)."""

    def __init__(
        self,
        path: str | None = None,
        *,
        page_size: int = PAGE_SIZE,
        buffer_pages: int = 1024,
        timestamping: str = "lazy",
        use_tsb_index: bool = False,
        key_split_threshold: float = 0.70,
        ms_per_commit: float = 5.0,
        clock: SimClock | None = None,
        disk: PageStore | None = None,
        page_checksums: bool = False,
        group_commit_window: int = 1,
        asof_route_cache: bool = False,
        media_recovery: bool = False,
        io_retries: int = 0,
        cc_mode: str = "2pl",
        concurrent: bool = False,
        log_force_latency_ms: float = 0.0,
        eviction: str = "lru",
        flush_batch: int = 0,
        read_ahead: int = 0,
        archive=None,
    ) -> None:
        if timestamping not in ("lazy", "eager"):
            raise ValueError("timestamping must be 'lazy' or 'eager'")
        if cc_mode not in ("2pl", "occ"):
            raise ValueError("cc_mode must be '2pl' or 'occ'")
        if disk is not None and path is not None:
            raise ValueError("pass either a path or a disk, not both")
        # An injected disk (e.g. a fault-model wrapper) takes precedence.
        self.disk: PageStore = disk if disk is not None else (
            FileDisk(path, page_size) if path else InMemoryDisk(page_size)
        )
        self.disk.checksums = page_checksums
        self.clock = clock or SimClock(ms_per_timestamp=ms_per_commit)
        # File-backed databases get a file-backed log, so a process that
        # dies without close() recovers on the next open.
        self.log: LogManager = (
            FileLogManager(str(path) + ".log") if path else LogManager()
        )
        # Buffer-pool tuning knobs (see DESIGN.md "Buffer management"):
        # ``eviction`` picks the victim-selection policy, ``flush_batch``
        # groups dirty write-backs under one WAL force, ``read_ahead``
        # prefetches past sequential misses.  The defaults keep the seed
        # LRU/per-page/no-prefetch behaviour byte-identical.
        self.buffer = BufferPool(
            self.disk, buffer_pages,
            eviction=eviction, flush_batch=flush_batch,
            read_ahead=read_ahead,
        )
        self.buffer.log_force = self.log.force
        self.timestamping = timestamping
        self.use_tsb_index = use_tsb_index
        self.key_split_threshold = key_split_threshold

        self.catalog = self._load_catalog()
        ptt_root = self.catalog.ptt_root_pid or None
        self.ptt = PersistentTimestampTable(self.buffer, ptt_root)
        manager_cls = (
            EagerTimestampManager if timestamping == "eager" else TimestampManager
        )
        self.tsmgr: TimestampManager = manager_cls(self.log, self.buffer, self.ptt)
        self.tsmgr.locator = self.locate_current_page
        self.locks = LockManager()
        self.txn_mgr = TransactionManager(
            self.clock, self.log, self.tsmgr, self.locks, self,
            group_commit_window=group_commit_window,
        )
        # Concurrent execution (all opt-in, see DESIGN.md "Concurrent
        # execution").  cc_mode picks the concurrency-control ablation:
        # "2pl" (default) blocks writers on record locks; "occ" runs default
        # transactions as snapshot reads + commit-time validation.
        self.cc_mode = cc_mode
        self.concurrent = False
        self._latch: NullLatch | ReentrantLatch = NullLatch()
        self.txn_mgr.occ_validate = self._occ_validate
        self.log.force_latency_ms = log_force_latency_ms
        if concurrent:
            self.enable_concurrency()
        self.checkpoints = CheckpointManager(self.log, self.buffer)
        # Media robustness, both off by default so the figure benchmarks and
        # crash-point enumeration are untouched.  ``io_retries`` retries
        # transient I/O errors at the disk seam with deterministic backoff;
        # ``media_recovery`` attaches the archive/backup/restore machinery
        # and turns on write read-back verification (the only inline defense
        # against silently dropped writes).
        self.scrubber = None     # a repair.Scrubber registers itself here
        if io_retries:
            self.disk.retry = RetryPolicy(io_retries, seed=0)
        self.repair: MediaRecoveryManager | None = None
        if media_recovery:
            self.disk.verify_writes = True
            self.repair = MediaRecoveryManager(self)
        self.snapshots = SnapshotRegistry()
        self.asof_stats = AsOfStats()
        # A ServiceCore (repro.service) registers its counters here; the
        # engine only reads them in stats(), so with no service attached
        # every service_* counter is a literal zero.
        self.service_stats = None
        # Optional historical-read accelerators.  Off by default: the plain
        # as-of path stays counter-for-counter identical to the original
        # implementation, which the figure benchmarks depend on.
        self.route_cache = (
            AsOfRouteCache(self.buffer, self.asof_stats)
            if asof_route_cache else None
        )
        self.page_views = (
            PageViewCache(self.asof_stats) if asof_route_cache else None
        )
        # Cold-history archive tiering (opt-in, see DESIGN.md "Cold-history
        # tiering").  ``archive`` accepts True, an ArchiveConfig, or a dict
        # of its fields; the default None attaches nothing — no resolver,
        # no free list — keeping behaviour and on-disk images byte-identical
        # to the pre-archive engine.
        self.archive = None
        if archive:
            from repro.archive.manager import ArchiveConfig, ArchiveManager

            if archive is True:
                archive_config = ArchiveConfig()
            elif isinstance(archive, dict):
                archive_config = ArchiveConfig(**archive)
            else:
                archive_config = archive
            self.archive = ArchiveManager(
                self, archive_config,
                store_path=str(path) + ".archive" if path else None,
            )
        self.version_ops = 0       # record versions created (cost model)
        self.tables: dict[str, Table] = {}
        self._tables_by_id: dict[int, Table] = {}
        self._open_tables()
        if ptt_root is None:
            self._save_meta()
        if path and len(self.log):
            # An existing database: run restart recovery.  After a clean
            # shutdown this is a cheap scan from the last checkpoint; after
            # a hard kill it redoes/undoes as needed.  Either way it also
            # restores the TID floor so TIDs never repeat across opens.
            self.recover()

    # -- catalog / DDL -------------------------------------------------------

    def _load_catalog(self) -> Catalog:
        raw = self.disk.read_page(META_PAGE_ID)
        meta = MetaPage.from_bytes(raw)
        return Catalog.from_blob(meta.blob)

    def _save_meta(self) -> None:
        """Write the boot page through to disk (durable immediately)."""
        fire("engine.save_meta")
        self.catalog.ptt_root_pid = self.ptt.root_pid
        if getattr(self, "archive", None) is not None:
            self.catalog.free_pids = self.disk.free_list.to_list()
        # Persist the commit-timestamp high water (clock.now() bounds every
        # timestamp issued so far).  Recovery adopts it as a clock floor so
        # no post-restart commit can stamp below a pre-crash one.
        now = self.clock.now()
        if (now.ttime, now.sn) > tuple(self.catalog.commit_ts_hw):
            self.catalog.commit_ts_hw = (now.ttime, now.sn)
        meta = MetaPage(
            META_PAGE_ID, self.catalog.to_blob(), page_size=self.disk.page_size
        )
        self.buffer.replace_page(meta)
        self.buffer.flush_page(META_PAGE_ID)
        # Meta writes are unlogged, so the archive cannot rebuild this page;
        # the media backup mirrors it at every save instead.
        if getattr(self, "repair", None) is not None:
            self.repair.mirror_meta()

    def _open_tables(self) -> None:
        for schema in self.catalog.tables.values():
            self._attach_table(schema)

    def _attach_table(self, schema: TableSchema) -> Table:
        btree = BTree(
            self.buffer,
            self.log,
            self.clock,
            schema.table_id,
            immortal=schema.immortal,
            root_pid=schema.root_pid,
            key_split_threshold=self.key_split_threshold,
        )
        history_index = None
        if schema.tsb_root_pid:
            history_index = TSBHistoryIndex(
                self.buffer, schema.table_id, schema.tsb_root_pid
            )
        btree.stamp_page = self.tsmgr.stamp_page_for_split
        btree.history_index = history_index
        btree.route_cache = self.route_cache
        table = Table(self, schema, btree, history_index)
        if not schema.immortal:
            btree.prune_page = self._make_prune_hook(table)
        self.tables[schema.name] = table
        self._tables_by_id[schema.table_id] = table
        return table

    def _make_prune_hook(self, table: Table):
        def prune(leaf: DataPage):
            self.tsmgr.stamp_page(leaf)
            return prune_conventional_page(
                leaf, self.snapshots.oldest(), table._resolve
            )

        return prune

    def create_table(
        self,
        name: str,
        columns: ColumnsArg,
        key: str,
        *,
        immortal: bool = False,
        snapshot: bool = False,
    ) -> Table:
        """Create a table.  ``immortal=True`` ⇔ ``CREATE IMMORTAL TABLE``."""
        if name in self.catalog.tables:
            from repro.errors import TableExistsError

            raise TableExistsError(f"table {name!r} already exists")
        if not columns:
            raise SchemaError("a table needs at least one column")
        defs = [
            ColumnDef(col, ColumnType(ct) if isinstance(ct, str) else ct)
            for col, ct in columns
        ]
        if key not in {c.name for c in defs}:
            raise SchemaError(f"key column {key!r} is not in the column list")
        table_id = self.catalog.allocate_table_id()
        btree = BTree(
            self.buffer,
            self.log,
            self.clock,
            table_id,
            immortal=immortal,
            key_split_threshold=self.key_split_threshold,
        )
        tsb_root = 0
        if self.use_tsb_index and immortal:
            history_index = TSBHistoryIndex(self.buffer, table_id)
            tsb_root = history_index.root_pid
        schema = TableSchema(
            name=name,
            table_id=table_id,
            columns=defs,
            key_column=key,
            immortal=immortal,
            snapshot_enabled=snapshot,
            root_pid=btree.root_pid,
            tsb_root_pid=tsb_root,
        )
        self.catalog.add_table(schema)
        # Durability order: the initial page images must be in the durable
        # log before the boot page references them.
        self.log.force()
        self._save_meta()
        # The bootstrap B-tree object is discarded; _attach_table rebuilds
        # it from the recorded root so every hook is wired in one place.
        return self._attach_table(schema)

    def enable_snapshot_isolation(self, name: str) -> None:
        """``ALTER TABLE name ENABLE SNAPSHOT``: version a conventional table."""
        schema = self.catalog.get(name)
        if schema.immortal:
            return  # immortal tables already keep every version
        schema.snapshot_enabled = True
        self._save_meta()

    def drop_table(self, name: str) -> None:
        """Remove a table from the catalog (its pages are left unreferenced)."""
        self.catalog.remove_table(name)
        table = self.tables.pop(name)
        self._tables_by_id.pop(table.table_id, None)
        self._save_meta()

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise TableNotFoundError(f"table {name!r} does not exist") from None

    def table_by_id(self, table_id: int) -> Table:
        try:
            return self._tables_by_id[table_id]
        except KeyError:
            raise TableNotFoundError(f"no table with id {table_id}") from None

    # -- RecoverySupport ------------------------------------------------------------

    def locate_current_page(self, table_id: int, key: bytes) -> DataPage | None:
        table = self._tables_by_id.get(table_id)
        if table is None:
            return None
        return table.btree.search_leaf(key)

    # -- concurrent execution -----------------------------------------------------------

    def enable_concurrency(self) -> "ImmortalDB":
        """Switch the engine to thread-safe operation (idempotent).

        Turns the lock manager into its blocking flavour, installs the
        engine latch that serializes structural work, and puts mutexes on
        the buffer pool, the WAL append/force path, and the timestamp
        manager's VTT/PTT transitions.  Single-threaded behaviour is
        unchanged — the same operations happen in the same order, just
        under (uncontended) latches — which is why the worker pool can call
        this lazily on an engine built with the defaults.
        """
        if self.concurrent:
            return self
        self.concurrent = True
        self._latch = ReentrantLatch()
        self.locks.blocking = True
        self.log.mutex = threading.RLock()
        self.buffer.mutex = threading.RLock()
        self.tsmgr.mutex = threading.RLock()
        return self

    @property
    def latch(self) -> NullLatch | ReentrantLatch:
        """The engine latch (a no-op object until concurrency is enabled)."""
        return self._latch

    def _occ_validate(self, txn: Transaction) -> None:
        """Backward validation for ``cc_mode="occ"`` commits.

        Every key the transaction read must still be current as of its
        snapshot: a committed version newer than ``snapshot_ts`` means a
        concurrent writer overwrote a read, so serializing this transaction
        at its (about to be drawn) commit timestamp would be unsound.  The
        write set is excluded — first-committer-wins already validated it
        at write time.
        """
        assert txn.snapshot_ts is not None
        for table_id, key in sorted(txn.read_keys - txn.writes):
            table = self._tables_by_id.get(table_id)
            if table is None:
                continue
            ts = table.latest_committed_ts(key)
            if ts is not None and ts > txn.snapshot_ts:
                self.txn_mgr.occ_validation_failures += 1
                from repro.errors import OCCValidationError

                raise OCCValidationError(
                    f"transaction {txn.tid}: key {key!r} of table "
                    f"{table_id} was overwritten at {ts}, after this "
                    f"transaction's snapshot at {txn.snapshot_ts}",
                    table_id=table_id,
                    key=key,
                )

    # -- transactions ------------------------------------------------------------------

    def begin(
        self,
        mode: TxnMode = TxnMode.SERIALIZABLE,
        *,
        as_of: Timestamp | _dt.datetime | str | None = None,
    ) -> Transaction:
        if as_of is not None:
            mode = TxnMode.AS_OF
            as_of = self.to_timestamp(as_of)
        # The OCC ablation: default transactions become snapshot readers
        # with commit-time validation.  Explicit SNAPSHOT requests keep
        # plain snapshot-isolation semantics (no read validation).
        occ = mode is TxnMode.SERIALIZABLE and self.cc_mode == "occ"
        if occ:
            mode = TxnMode.SNAPSHOT
        with self._latch:
            txn = self.txn_mgr.begin(mode, as_of=as_of)
            txn.occ = occ
            if mode is TxnMode.SNAPSHOT:
                assert txn.snapshot_ts is not None
                self.snapshots.register(txn.tid, txn.snapshot_ts)
            return txn

    def commit(self, txn: Transaction) -> Timestamp | None:
        with self._latch:
            ts = self.txn_mgr.commit(txn)
            self.snapshots.unregister(txn.tid)
            return ts

    # Two-phase commit participant surface (used by repro.cluster).  The
    # single-engine commit path above is untouched: prepare/commit_prepared
    # only run when a ShardRouter drives a cross-shard transaction.

    def prepare(self, txn: Transaction, gtid: int) -> int:
        """2PC phase one: durable yes vote; locks held until the decision."""
        with self._latch:
            return self.txn_mgr.prepare(txn, gtid)

    def commit_prepared(self, txn: Transaction, ts: Timestamp) -> Timestamp:
        """2PC phase two (commit): apply the coordinator's timestamp."""
        with self._latch:
            out = self.txn_mgr.commit_prepared(txn, ts)
            self.snapshots.unregister(txn.tid)
            return out

    @property
    def in_doubt(self) -> dict[int, Transaction]:
        """Prepared-but-undecided transactions by gtid (2PC participants)."""
        return self.txn_mgr.in_doubt

    def abort(self, txn: Transaction) -> None:
        with self._latch:
            self.txn_mgr.abort(txn)
            self.snapshots.unregister(txn.tid)

    def flush_commits(self) -> None:
        """Force the log now if group-committed transactions await their ack.

        With ``group_commit_window=1`` (the default) every commit forces the
        log itself and this is a no-op.
        """
        with self._latch:
            self.txn_mgr.flush_commits()

    @contextmanager
    def transaction(
        self,
        mode: TxnMode = TxnMode.SERIALIZABLE,
        *,
        as_of: Timestamp | _dt.datetime | str | None = None,
    ) -> Iterator[Transaction]:
        """``with db.transaction() as txn: …`` — commit on success."""
        txn = self.begin(mode, as_of=as_of)
        try:
            yield txn
        except BaseException:
            if txn.state.value == "active":
                self.abort(txn)
            raise
        else:
            if txn.state.value == "active":
                self.commit(txn)

    # -- time ----------------------------------------------------------------------------

    def now(self) -> Timestamp:
        return self.clock.now()

    def advance_time(self, ms: float) -> None:
        self.clock.advance_ms(ms)

    @staticmethod
    def to_timestamp(value: Timestamp | _dt.datetime | str) -> Timestamp:
        """Accept a Timestamp, a datetime, or an ISO / SQL datetime string."""
        if isinstance(value, Timestamp):
            return value
        if isinstance(value, str):
            value = _dt.datetime.fromisoformat(value)
        if isinstance(value, _dt.datetime):
            return Timestamp.from_datetime(value, sn=0xFFFFFFFE)
        raise CatalogError(f"cannot interpret {value!r} as a timestamp")

    # -- checkpoints and garbage collection ----------------------------------------------------

    def checkpoint(self, *, flush: bool = False) -> int:
        """Take a checkpoint; run PTT garbage collection; persist the boot page.

        Returns the number of PTT entries garbage collected.
        """
        self.checkpoints.take(
            self.txn_mgr.att_snapshot(), flush=flush,
            max_tid=self.txn_mgr.next_tid - 1,
        )
        horizon = self.checkpoints.redo_scan_start()
        if self.repair is not None:
            # Restore's stamping pass resolves TIDs for versions replayed
            # from the archive; a mapping may only be dropped once the pages
            # it stamped are captured in the backup (see MediaRecoveryManager).
            horizon = min(horizon, self.repair.backup_gc_horizon)
        collected = self.tsmgr.garbage_collect(horizon)
        if self.archive is not None and self.archive.config.auto:
            # Budgeted cold-history migration rides along with checkpoints,
            # the same piggybacking the PR-4 scrubber uses.
            self.archive.step()
        self._save_meta()
        return collected

    # -- crash and recovery ------------------------------------------------------------------------

    def crash(self) -> None:
        """Lose all volatile state, exactly as a power failure would."""
        self.buffer.discard_all()
        self.log.crash()
        self.txn_mgr.discard_pending_commits()
        self.tsmgr.rebuild_after_crash()
        # Cached as-of routes and page views refer to pre-crash page objects;
        # recovery must rebuild them from durable state, never serve them.
        if self.route_cache is not None:
            self.route_cache.clear()
        if self.page_views is not None:
            self.page_views.clear()
        for table in self.tables.values():
            if table.history_index is not None:
                table.history_index.clear_cache()
        self.snapshots.clear()
        # A fresh lock table (all locks die with the process), but the
        # concurrent-mode configuration survives the restart.
        old_locks = self.locks
        self.locks = LockManager(
            blocking=old_locks.blocking,
            wait_timeout_s=old_locks.wait_timeout_s,
            victim_policy=old_locks.victim_policy,
        )
        self.locks.wait_hooks = old_locks.wait_hooks
        self.txn_mgr.locks = self.locks
        self.txn_mgr.active.clear()
        self.txn_mgr.in_doubt.clear()
        if self.repair is not None:
            self.repair.on_crash()
        if self.archive is not None:
            self.archive.on_crash()

    def recover(self) -> RecoveryReport:
        """Restart after :meth:`crash`: analysis, redo, undo, re-open."""
        self.catalog = self._load_catalog()
        self.ptt = PersistentTimestampTable(
            self.buffer, self.catalog.ptt_root_pid or None
        )
        self.tsmgr.ptt = self.ptt
        self.tables.clear()
        self._tables_by_id.clear()
        self._open_tables()
        report = run_recovery(self)
        self.txn_mgr.adopt_tid_floor(self._max_tid_seen())
        # Restore commit-timestamp monotonicity: the clock must never again
        # issue a time at or below any durable commit timestamp.  The boot
        # page's high water covers everything up to the last checkpoint; the
        # redo scan's max covers commits after it.
        hw = tuple(self.catalog.commit_ts_hw)
        floor = Timestamp(*hw) if hw != (0, 0) else None
        if report.max_commit_ts is not None and (
            floor is None or report.max_commit_ts > floor
        ):
            floor = report.max_commit_ts
        if floor is not None:
            self.clock.adopt_floor(floor)
        # Prepared transactions survive the crash in doubt: locks re-taken,
        # versions still TID-marked, outcome awaiting the 2PC coordinator.
        # Must run before the recovery checkpoint below, whose flush would
        # otherwise try to resolve their TIDs while stamping.
        if report.in_doubt:
            self.txn_mgr.reinstate_in_doubt(
                report.in_doubt, self.locks.lock_record_exclusive
            )
        self.tsmgr.recovery_fallback = self.clock.now()
        if self.archive is not None:
            # Reload the durable manifest and re-validate the free list
            # against the post-redo page images before anything reuses ids.
            self.archive.after_recovery()
        self.checkpoint(flush=True)
        return report

    def crash_and_recover(self) -> RecoveryReport:
        self.crash()
        return self.recover()

    def _max_tid_seen(self) -> int:
        # TIDs allocated before the last checkpoint are covered by the TID
        # floor it persisted (and by the PTT), so the scan only needs the
        # log suffix recovery reads anyway.  Pre-max_tid checkpoints (or no
        # checkpoint at all) report 0 and the scan degrades to the full log.
        floor = self.checkpoints.checkpointed_max_tid()
        scan_from = self.checkpoints.redo_scan_start() if floor else 0
        best = max(self.ptt.max_tid(), floor)
        for rec in self.log.records_from(scan_from):
            if rec.tid > best:
                best = rec.tid
        return best

    # -- SQL convenience ----------------------------------------------------------------------------

    def sql(self, statement: str):
        """Execute one SQL statement on the engine's default session.

        ``db.sql("SELECT * FROM t WHERE k = 1").rows`` — the session is
        created lazily and persists, so ``BEGIN TRAN … COMMIT TRAN``
        bracketing works across calls.  For multiple independent sessions
        use :class:`repro.sql.Session` directly.
        """
        if not hasattr(self, "_default_session"):
            from repro.sql.executor import Session

            self._default_session = Session(self)
        return self._default_session.execute(statement)

    # -- lifecycle -------------------------------------------------------------------------------------

    def close(self) -> None:
        """Clean shutdown: flush everything, checkpoint, close the disk."""
        self.checkpoint(flush=True)
        if isinstance(self.log, FileLogManager):
            self.log.close()
        if self.archive is not None:
            self.archive.close()
        self.disk.close()

    def __enter__(self) -> "ImmortalDB":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- instrumentation ----------------------------------------------------------------------------------

    def stats(self) -> dict:
        """A flat snapshot of every counter the cost model consumes."""
        disk = self.disk.stats
        log = self.log.stats
        buf = self.buffer.stats
        ts = self.tsmgr.stats
        return {
            "disk_reads": disk.reads,
            "disk_writes": disk.writes,
            "disk_sequential_reads": disk.sequential_reads,
            "disk_sequential_writes": disk.sequential_writes,
            "log_appends": log.appends,
            "log_bytes": log.bytes_appended,
            "log_forces": log.forces,
            "log_forced_bytes": log.forced_bytes,
            "log_image_records": log.image_records,
            "log_image_bytes": log.image_bytes,
            "group_commit_acks": self.txn_mgr.group_commit_acks,
            "buffer_hits": buf.hits,
            "buffer_misses": buf.misses,
            "buffer_evictions": buf.evictions,
            "page_flushes": buf.page_flushes,
            # Eviction/flush-scheduling detail (all zero with the defaults:
            # LRU never skips in single-threaded runs, batching is off).
            "buffer_dirty_evictions": buf.dirty_evictions,
            "flush_batches": buf.flush_batches,
            "flush_coalesced_writes": buf.flush_coalesced_writes,
            "evict_scan_skips": buf.evict_scan_skips,
            "buffer_prefetches": buf.prefetches,
            "buffer_prefetch_hits": buf.prefetch_hits,
            "version_ops": self.version_ops,
            "stamps": ts.stamps,
            "vtt_hits": ts.vtt_hits,
            "ptt_lookups": ts.ptt_lookups,
            "ptt_inserts": ts.ptt_inserts,
            "ptt_deletes": ts.ptt_deletes,
            "commit_revisit_pages": ts.commit_revisit_pages,
            "commits": self.txn_mgr.commits,
            "aborts": self.txn_mgr.aborts,
            "asof_queries": self.asof_stats.queries,
            "asof_chain_hops": self.asof_stats.chain_hops,
            "asof_pages_examined": self.asof_stats.pages_examined,
            "tsb_lookups": self.asof_stats.tsb_lookups,
            "asof_page_reads": self.asof_stats.page_reads,
            "asof_chain_steps": self.asof_stats.chain_steps,
            "route_cache_hits": self.asof_stats.route_cache_hits,
            "route_cache_misses": self.asof_stats.route_cache_misses,
            # Media robustness (all zero with the defaults off).
            "io_read_retries": disk.read_retries,
            "io_write_retries": disk.write_retries,
            "io_backoff_steps": disk.backoff_steps,
            "io_verify_failures": disk.verify_failures,
            "repair_page_faults":
                self.repair.stats.page_faults if self.repair else 0,
            "pages_repaired":
                self.repair.stats.pages_repaired if self.repair else 0,
            "repair_records_replayed":
                self.repair.stats.repair_records_replayed if self.repair else 0,
            "pages_quarantined":
                self.repair.stats.pages_quarantined if self.repair else 0,
            "degraded_reads":
                self.repair.stats.degraded_reads if self.repair else 0,
            "archive_records":
                self.repair.archive.records_archived if self.repair else 0,
            "backup_refreshes":
                self.repair.stats.backup_refreshes if self.repair else 0,
            "scrub_steps": self.scrubber.stats.steps if self.scrubber else 0,
            "scrub_pages":
                self.scrubber.stats.pages_scanned if self.scrubber else 0,
            "scrub_findings":
                self.scrubber.stats.findings if self.scrubber else 0,
            # Cold-history archive tiering (all zero with archiving off;
            # "archive_records" above is the PR-4 WAL archive, unrelated).
            "archive_pages_migrated":
                self.archive.stats.pages_migrated if self.archive else 0,
            "archive_pages_freed":
                self.archive.stats.pages_freed if self.archive else 0,
            "archive_runs": self.archive.live_runs if self.archive else 0,
            "archive_blocks": self.archive.live_blocks if self.archive else 0,
            "archive_block_reads":
                self.archive.stats.block_reads if self.archive else 0,
            "archive_merges": self.archive.stats.merges if self.archive else 0,
            "archive_bytes_raw": self.archive.bytes_raw if self.archive else 0,
            "archive_bytes_stored":
                self.archive.bytes_stored if self.archive else 0,
            "archive_compactions":
                self.archive.stats.compactions if self.archive else 0,
            "archive_bytes_reclaimed":
                self.archive.stats.bytes_reclaimed if self.archive else 0,
            # Service layer (all zero without a network service attached).
            "service_accepts":
                self.service_stats.accepts if self.service_stats else 0,
            "service_rejects":
                self.service_stats.rejects if self.service_stats else 0,
            "service_timeouts":
                self.service_stats.timeouts if self.service_stats else 0,
            "service_aborted_on_disconnect":
                self.service_stats.aborted_on_disconnect
                if self.service_stats else 0,
            "service_degraded_replies":
                self.service_stats.degraded_replies
                if self.service_stats else 0,
            # Concurrent execution (all zero in single-threaded runs).
            "lock_waits": self.locks.stats.lock_waits,
            "lock_wait_ns": self.locks.stats.lock_wait_ns,
            "deadlocks_detected": self.locks.stats.deadlocks_detected,
            "txn_retries": self.txn_mgr.txn_retries,
            "occ_validation_failures": self.txn_mgr.occ_validation_failures,
        }
