"""Database integrity verification.

``integrity_report(db)`` walks every structure the engine owns and checks
the invariants the design depends on:

* **catalog** — every schema's roots exist and have the right page types;
* **B-trees** — separators ordered, leaf keys inside their bounds, the
  index traversal and the leaf sibling chain agree;
* **pages** — codec roundtrip (what is in memory serializes and reparses
  identically), sorted slot arrays, acyclic version chains, timestamps
  strictly decreasing along each chain;
* **history chains** — time ranges contiguous and descending: the current
  page's start equals the newest history page's end, and so on back;
* **history pages** — read-only property proxies: no TID-marked records,
  non-empty time range;
* **TSB index** — every leaf entry points at an existing history page whose
  time range matches the entry's rectangle;
* **PTT** — entries strictly ascending and unique across the leaf chain;
* **timestamping** — every TID-marked record in any page resolves to a
  live transaction or a PTT entry (no orphaned TIDs).

It returns a structured :class:`IntegrityReport` — one :class:`Finding`
per problem, carrying the page id and a machine-matchable kind alongside
the human-readable detail — which is what the online scrubber consumes to
dispatch repairs.  ``verify_integrity(db)`` is the original string-list
interface, kept as a thin wrapper: it returns ``report.messages()``
(empty = healthy) and ``strict=True`` raises :exc:`IntegrityError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.clock import Timestamp
from repro.errors import (
    ImmortalDBError,
    PageQuarantinedError,
    UnknownTransactionError,
)
from repro.storage.page import DataPage, decode_page
from repro.access.btree import BTreeIndexPage

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import ImmortalDB
    from repro.core.table import Table


class IntegrityError(ImmortalDBError):
    """verify_integrity(strict=True) found problems."""


@dataclass(frozen=True)
class Finding:
    """One integrity problem: where it is, what class of damage, the story.

    ``kind`` is a stable machine-matchable slug (``btree``, ``codec``,
    ``layout``, ``chain``, ``history``, ``orphan-tid``, ``history-chain``,
    ``tsb``, ``ptt``, plus the scrubber's ``checksum``, ``decode`` and
    ``stale``); ``detail`` is the full human-readable message.
    """

    kind: str
    detail: str
    table: str = ""
    page_id: int = 0


@dataclass
class IntegrityReport:
    """Structured result of an integrity walk (empty findings = healthy)."""

    findings: list[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def messages(self) -> list[str]:
        """The human-readable problem strings (the legacy interface)."""
        return [finding.detail for finding in self.findings]

    def pages(self) -> list[int]:
        """Distinct page ids implicated, in first-seen order."""
        seen: list[int] = []
        for finding in self.findings:
            if finding.page_id and finding.page_id not in seen:
                seen.append(finding.page_id)
        return seen

    def add(
        self, kind: str, detail: str, *, table: str = "", page_id: int = 0
    ) -> None:
        self.findings.append(
            Finding(kind=kind, detail=detail, table=table, page_id=page_id)
        )


def integrity_report(db: "ImmortalDB") -> IntegrityReport:
    """Run every check; return the structured report."""
    report = IntegrityReport()
    for table in db.tables.values():
        _check_btree(db, table, report)
        _check_pages(db, table, report)
        _check_history_chains(db, table, report)
        _check_tsb(db, table, report)
    _check_ptt(db, report)
    _check_archive(db, report)
    return report


def verify_integrity(db: "ImmortalDB", *, strict: bool = False) -> list[str]:
    """Legacy interface: the report's messages; ``strict=True`` raises."""
    problems = integrity_report(db).messages()
    if strict and problems:
        raise IntegrityError(
            f"{len(problems)} integrity problem(s):\n" + "\n".join(problems)
        )
    return problems


# ---------------------------------------------------------------------------


def _check_btree(
    db: "ImmortalDB", table: "Table", report: IntegrityReport
) -> None:
    name = table.name
    leaves_by_index: list[int] = []

    def walk(pid: int, low: bytes, high: bytes | None) -> None:
        page = db.buffer.get_page(pid)
        if isinstance(page, BTreeIndexPage):
            if page.seps != sorted(page.seps):
                report.add(
                    "btree",
                    f"{name}: index node {pid} separators out of order",
                    table=name, page_id=pid,
                )
            if len(page.children) != len(page.seps) + 1:
                report.add(
                    "btree",
                    f"{name}: index node {pid} children/separator mismatch",
                    table=name, page_id=pid,
                )
            for i, child in enumerate(page.children):
                child_low = page.seps[i - 1] if i > 0 else low
                child_high = page.seps[i] if i < len(page.seps) else high
                walk(child, child_low, child_high)
            return
        if not isinstance(page, DataPage) or page.is_history:
            report.add(
                "btree",
                f"{name}: page {pid} is not a current data page",
                table=name, page_id=pid,
            )
            return
        leaves_by_index.append(pid)
        for key in page.keys():
            if key < low or (high is not None and key >= high):
                report.add(
                    "btree",
                    f"{name}: leaf {pid} holds key {key!r} outside its "
                    f"bounds [{low!r}, {high!r})",
                    table=name, page_id=pid,
                )

    walk(table.btree.root_pid, b"", None)

    leaves_by_chain = [leaf.page_id for leaf in table.btree.leaves()]
    if leaves_by_index != leaves_by_chain:
        report.add(
            "btree",
            f"{name}: index traversal sees leaves {leaves_by_index} but the "
            f"sibling chain sees {leaves_by_chain}",
            table=name,
        )


def _check_pages(
    db: "ImmortalDB", table: "Table", report: IntegrityReport
) -> None:
    name = table.name
    for page in table.iter_all_pages():
        pid = page.page_id
        # Codec roundtrip.
        try:
            reparsed = decode_page(page.to_bytes())
        except ImmortalDBError as exc:
            report.add(
                "codec",
                f"{name}: page {pid} fails to serialize: {exc}",
                table=name, page_id=pid,
            )
            continue
        if not isinstance(reparsed, DataPage) or \
                reparsed.keys() != page.keys() or \
                reparsed.used_bytes != page.used_bytes:
            report.add(
                "codec",
                f"{name}: page {pid} codec roundtrip mismatch",
                table=name, page_id=pid,
            )
        # Slot order.
        if page.keys() != sorted(page.keys()):
            report.add(
                "layout",
                f"{name}: page {pid} slot array out of order",
                table=name, page_id=pid,
            )
        # Chains: valid indices, acyclic, timestamps strictly decreasing.
        for key in page.keys():
            visited: set[int] = set()
            index = page.slots[page.slot_of(key)]
            last_ts: Timestamp | None = None
            while True:
                if index in visited:
                    report.add(
                        "chain",
                        f"{name}: page {pid} key {key!r} chain has a cycle",
                        table=name, page_id=pid,
                    )
                    break
                if not 0 <= index < len(page.versions):
                    report.add(
                        "chain",
                        f"{name}: page {pid} key {key!r} chain index "
                        f"{index} out of range",
                        table=name, page_id=pid,
                    )
                    break
                visited.add(index)
                version = page.versions[index]
                if version.key != key:
                    report.add(
                        "chain",
                        f"{name}: page {pid} chain of {key!r} reached a "
                        f"version of {version.key!r}",
                        table=name, page_id=pid,
                    )
                    break
                if version.is_timestamped:
                    ts = version.timestamp
                    if last_ts is not None and ts >= last_ts:
                        report.add(
                            "chain",
                            f"{name}: page {pid} key {key!r} timestamps not "
                            f"strictly decreasing ({ts} under {last_ts})",
                            table=name, page_id=pid,
                        )
                    last_ts = ts
                if not version.has_previous or version.vp_in_history:
                    break
                index = version.vp
        # History-page-only properties.
        if page.is_history:
            if page.split_ts >= page.end_ts:
                report.add(
                    "history",
                    f"{name}: history page {pid} has empty time range",
                    table=name, page_id=pid,
                )
            if page.has_unstamped_records():
                report.add(
                    "history",
                    f"{name}: history page {pid} holds TID-marked records",
                    table=name, page_id=pid,
                )
        # Every TID-marked record must resolve somewhere.
        for version in page.unstamped_versions():
            try:
                db.tsmgr.resolve(version.tid)
            except UnknownTransactionError:
                if not page.immortal and db.tsmgr.recovery_fallback:
                    continue
                report.add(
                    "orphan-tid",
                    f"{name}: page {pid} holds an orphaned TID "
                    f"{version.tid}",
                    table=name, page_id=pid,
                )


def _check_history_chains(
    db: "ImmortalDB", table: "Table", report: IntegrityReport
) -> None:
    name = table.name
    for leaf in table.btree.leaves():
        expected_end = leaf.split_ts
        pid = leaf.history_page_id
        while pid:
            try:
                page = db.buffer.get_page(pid)
            except PageQuarantinedError:
                # A quarantined archive block breaks the walk, but the
                # damage itself is reported (with detail) by _check_archive.
                break
            if not isinstance(page, DataPage) or not page.is_history:
                report.add(
                    "history-chain",
                    f"{name}: leaf {leaf.page_id} history chain hit "
                    f"non-history page {pid}",
                    table=name, page_id=pid,
                )
                break
            if page.end_ts != expected_end:
                report.add(
                    "history-chain",
                    f"{name}: history page {pid} ends at {page.end_ts} but "
                    f"its successor starts at {expected_end}",
                    table=name, page_id=pid,
                )
            expected_end = page.split_ts
            pid = page.history_page_id


def _check_tsb(
    db: "ImmortalDB", table: "Table", report: IntegrityReport
) -> None:
    if table.history_index is None:
        return
    name = table.name
    for node in table.history_index.all_nodes():
        for entry in node.entries:
            if not entry.child_is_leaf:
                continue
            try:
                page = db.buffer.get_page(entry.child_pid)
            except ImmortalDBError:
                report.add(
                    "tsb",
                    f"{name}: TSB entry points at missing page "
                    f"{entry.child_pid}",
                    table=name, page_id=entry.child_pid,
                )
                continue
            if not isinstance(page, DataPage) or not page.is_history:
                report.add(
                    "tsb",
                    f"{name}: TSB entry {entry.child_pid} is not a history "
                    f"page",
                    table=name, page_id=entry.child_pid,
                )
                continue
            if (entry.rect.t_low, entry.rect.t_high) != \
                    (page.split_ts, page.end_ts):
                report.add(
                    "tsb",
                    f"{name}: TSB rect time range "
                    f"[{entry.rect.t_low}, {entry.rect.t_high}) disagrees "
                    f"with page {page.page_id}'s "
                    f"[{page.split_ts}, {page.end_ts})",
                    table=name, page_id=entry.child_pid,
                )


def _check_ptt(db: "ImmortalDB", report: IntegrityReport) -> None:
    last_tid = 0
    for tid, _ts in db.ptt.entries():
        if tid <= last_tid:
            report.add(
                "ptt",
                f"PTT: entries not strictly ascending at TID {tid}",
            )
        last_tid = tid


def _check_archive(db: "ImmortalDB", report: IntegrityReport) -> None:
    """Verify every live archive block against its manifest fences.

    Blocks are read straight from the store (not through the resolver),
    so damage is reported as a finding instead of tripping quarantine.
    Archived pages must be self-consistent, fully timestamped (their
    chains were stamped before migration — no VTT/PTT resolution may be
    needed ever again), and must lie inside the key/time fences the
    manifest advertises for routing.
    """
    archive = getattr(db, "archive", None)
    if archive is None:
        return
    from repro.archive.delta import decode_block
    from repro.storage.constants import ARCHIVE_PID_BIT

    for ref_index, (run_id, block_idx) in enumerate(archive.refs):
        pid = ARCHIVE_PID_BIT | ref_index
        run = archive.runs.get(run_id)
        if run is None or block_idx >= len(run.blocks):
            report.add(
                "archive",
                f"archive ref {ref_index} names missing run {run_id} "
                f"block {block_idx}",
                page_id=pid,
            )
            continue
        meta = run.blocks[block_idx]
        try:
            page = decode_block(archive.store.read_block(meta.record), pid)
        except Exception as exc:  # noqa: BLE001 - any failure is a finding
            report.add(
                "archive",
                f"archive ref {ref_index} block is unreadable: {exc}",
                page_id=pid,
            )
            continue
        for problem in page.self_check():
            report.add(
                "archive",
                f"archive ref {ref_index}: {problem}",
                page_id=pid,
            )
        if (meta.t_low, meta.t_high) != (page.split_ts, page.end_ts):
            report.add(
                "archive",
                f"archive ref {ref_index} fences "
                f"[{meta.t_low}, {meta.t_high}) disagree with the block's "
                f"[{page.split_ts}, {page.end_ts})",
                page_id=pid,
            )
        for key in page.keys():
            if key < meta.key_low or key > meta.key_high:
                report.add(
                    "archive",
                    f"archive ref {ref_index} holds key {key!r} outside "
                    f"its fences [{meta.key_low!r}, {meta.key_high!r}]",
                    page_id=pid,
                )
        if page.has_unstamped_records():
            report.add(
                "archive",
                f"archive ref {ref_index} holds TID-marked records "
                f"(archived chains must be fully stamped)",
                page_id=pid,
            )
            continue
        for version in page.versions:
            if version.timestamp >= page.end_ts:
                report.add(
                    "archive",
                    f"archive ref {ref_index} version at "
                    f"{version.timestamp} lies past the page's end time "
                    f"{page.end_ts}",
                    page_id=pid,
                )
