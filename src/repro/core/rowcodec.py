"""Row and key codecs.

Keys are encoded **order-preserving**: comparing the encoded bytes gives the
same order as comparing the values, which is what lets the B-tree and the
TSB-tree treat keys as opaque byte strings.  Integers use offset-binary
(biased) big-endian; text compares bytewise as UTF-8.

Payloads (the non-key columns) are encoded compactly with a per-column null
byte; variable-length text is length-prefixed.
"""

from __future__ import annotations

import enum
import struct

from repro.errors import SchemaError


class ColumnType(enum.Enum):
    SMALLINT = "smallint"   # 2-byte signed
    INT = "int"             # 4-byte signed
    BIGINT = "bigint"       # 8-byte signed
    FLOAT = "float"         # 8-byte IEEE double
    TEXT = "text"           # UTF-8, variable length
    BOOL = "bool"


_INT_SPECS = {
    ColumnType.SMALLINT: (2, 1 << 15),
    ColumnType.INT: (4, 1 << 31),
    ColumnType.BIGINT: (8, 1 << 63),
}


def encode_key(value, column_type: ColumnType) -> bytes:
    """Order-preserving key encoding."""
    if column_type in _INT_SPECS:
        width, bias = _INT_SPECS[column_type]
        if not isinstance(value, int) or isinstance(value, bool):
            raise SchemaError(f"key value {value!r} is not an integer")
        if not -bias <= value < bias:
            raise SchemaError(
                f"key value {value} out of range for {column_type.value}"
            )
        return (value + bias).to_bytes(width, "big")
    if column_type is ColumnType.TEXT:
        if not isinstance(value, str):
            raise SchemaError(f"key value {value!r} is not a string")
        encoded = value.encode("utf-8")
        if b"\x00" in encoded:
            raise SchemaError("text keys may not contain NUL bytes")
        return encoded
    raise SchemaError(f"{column_type.value} cannot be a primary key type")


def decode_key(data: bytes, column_type: ColumnType):
    if column_type in _INT_SPECS:
        width, bias = _INT_SPECS[column_type]
        if len(data) != width:
            raise SchemaError(
                f"key image of {len(data)} bytes, expected {width}"
            )
        return int.from_bytes(data, "big") - bias
    if column_type is ColumnType.TEXT:
        return data.decode("utf-8")
    raise SchemaError(f"{column_type.value} cannot be a primary key type")


def _encode_value(value, column_type: ColumnType) -> bytes:
    if value is None:
        return b"\x00"
    if column_type in _INT_SPECS:
        width, bias = _INT_SPECS[column_type]
        if not isinstance(value, int) or isinstance(value, bool):
            raise SchemaError(f"{value!r} is not an integer")
        if not -bias <= value < bias:
            raise SchemaError(f"{value} out of range for {column_type.value}")
        return b"\x01" + (value + bias).to_bytes(width, "big")
    if column_type is ColumnType.FLOAT:
        return b"\x01" + struct.pack(">d", float(value))
    if column_type is ColumnType.BOOL:
        return b"\x01" + (b"\x01" if value else b"\x00")
    if column_type is ColumnType.TEXT:
        if not isinstance(value, str):
            raise SchemaError(f"{value!r} is not a string")
        encoded = value.encode("utf-8")
        if len(encoded) > 0xFFFF:
            raise SchemaError("text value exceeds 64 KiB")
        return b"\x01" + len(encoded).to_bytes(2, "big") + encoded
    raise SchemaError(f"unknown column type {column_type!r}")


def _decode_value(data: bytes, pos: int, column_type: ColumnType):
    if data[pos] == 0:
        return None, pos + 1
    pos += 1
    if column_type in _INT_SPECS:
        width, bias = _INT_SPECS[column_type]
        return int.from_bytes(data[pos : pos + width], "big") - bias, pos + width
    if column_type is ColumnType.FLOAT:
        return struct.unpack(">d", data[pos : pos + 8])[0], pos + 8
    if column_type is ColumnType.BOOL:
        return bool(data[pos]), pos + 1
    if column_type is ColumnType.TEXT:
        length = int.from_bytes(data[pos : pos + 2], "big")
        raw = data[pos + 2 : pos + 2 + length]
        return raw.decode("utf-8"), pos + 2 + length
    raise SchemaError(f"unknown column type {column_type!r}")


class RowCodec:
    """Encodes rows (dicts) for one table schema.

    The primary-key column is carried in the record's key image; the payload
    holds all remaining columns in schema order.
    """

    def __init__(
        self,
        columns: list[tuple[str, ColumnType]],
        key_column: str,
    ) -> None:
        names = [name for name, _ in columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in {names}")
        if key_column not in names:
            raise SchemaError(f"key column {key_column!r} not in schema")
        self.columns = columns
        self.key_column = key_column
        self.key_type = dict(columns)[key_column]
        self.payload_columns = [
            (name, ctype) for name, ctype in columns if name != key_column
        ]

    # -- keys ---------------------------------------------------------------

    def encode_key(self, value) -> bytes:
        return encode_key(value, self.key_type)

    def decode_key(self, data: bytes):
        return decode_key(data, self.key_type)

    # -- payloads ----------------------------------------------------------------

    def encode_payload(self, row: dict) -> bytes:
        unknown = set(row) - {name for name, _ in self.columns}
        if unknown:
            raise SchemaError(f"unknown column(s): {sorted(unknown)}")
        return b"".join(
            _encode_value(row.get(name), ctype)
            for name, ctype in self.payload_columns
        )

    def decode_payload(self, data: bytes) -> dict:
        row: dict = {}
        pos = 0
        for name, ctype in self.payload_columns:
            row[name], pos = _decode_value(data, pos, ctype)
        if pos != len(data):
            raise SchemaError(
                f"payload has {len(data) - pos} trailing byte(s)"
            )
        return row

    # -- whole rows ------------------------------------------------------------------

    def encode_row(self, row: dict) -> tuple[bytes, bytes]:
        """(key image, payload image) for a full row."""
        if self.key_column not in row or row[self.key_column] is None:
            raise SchemaError(f"row is missing key column {self.key_column!r}")
        return self.encode_key(row[self.key_column]), self.encode_payload(row)

    def decode_row(self, key_image: bytes, payload: bytes) -> dict:
        row = self.decode_payload(payload)
        row[self.key_column] = self.decode_key(key_image)
        return row
