"""Queryable backup (paper Section 7.2, after Lomet & Salzberg [22]).

A transaction-time database's history pages *are* a backup of the current
database: they are always installed (no restore step), they grow
incrementally (each time split adds exactly one read-only page), and they
can be queried directly (any AS OF query).  This module packages those
three advantages behind an explicit API:

* :meth:`QueryableBackup.status` — how much of the database is already
  "backed up" into read-only history pages vs still only in current pages,
* :meth:`QueryableBackup.freeze` — force a time split of every current page
  so the entire state as of now is captured in history pages (the paper's
  "forcing all pages to eventually time-split", also how otherwise
  uncollectable PTT entries can be retired),
* :meth:`QueryableBackup.restore_as_of` — point-in-time recovery from
  erroneous transactions: materialize the table's state at an earlier time
  into a fresh table, without touching the damaged one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.clock import Timestamp
from repro.errors import AccessMethodError
from repro.access.timesplit import time_split_page
from repro.wal.records import SMOReason

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import ImmortalDB
    from repro.core.table import Table


@dataclass
class BackupStatus:
    current_pages: int = 0
    history_pages: int = 0
    history_versions: int = 0
    oldest_covered: Timestamp | None = None
    newest_covered: Timestamp | None = None

    @property
    def total_pages(self) -> int:
        return self.current_pages + self.history_pages


class QueryableBackup:
    """Backup/restore facade over one immortal table's history pages."""

    def __init__(self, table: "Table") -> None:
        if not table.immortal:
            raise AccessMethodError(
                f"table {table.name!r} is not immortal: it keeps no history "
                f"to back anything up with"
            )
        self.table = table
        self.engine: "ImmortalDB" = table.engine

    # -- inspection -----------------------------------------------------------

    def status(self) -> BackupStatus:
        """How much state already lives in read-only history pages."""
        status = BackupStatus()
        for page in self.table.iter_all_pages():
            if page.is_history:
                status.history_pages += 1
                status.history_versions += len(page.versions)
                if (
                    status.oldest_covered is None
                    or page.split_ts < status.oldest_covered
                ):
                    status.oldest_covered = page.split_ts
                if (
                    status.newest_covered is None
                    or page.end_ts > status.newest_covered
                ):
                    status.newest_covered = page.end_ts
            else:
                status.current_pages += 1
        return status

    # -- freezing --------------------------------------------------------------------

    def freeze(self) -> int:
        """Time split every current page so history covers the present.

        Afterwards every version committed before "now" is in a read-only
        history page; the incremental backup is complete up to this moment.
        Returns the number of pages split.  Pages whose whole content is
        current (a time split would free nothing) are still split — backup
        is the one caller that *wants* the redundant copies.
        """
        split = 0
        self.engine.clock.advance_ticks(1)  # the freeze point must be fresh
        freeze_ts = self.engine.clock.now()
        btree = self.table.btree
        for leaf in list(btree.leaves()):
            self.engine.tsmgr.stamp_page_for_split(leaf)
            if freeze_ts <= leaf.split_ts or not leaf.versions:
                continue
            history_pid = self.engine.buffer.disk.allocate()
            outcome = time_split_page(leaf, freeze_ts, history_pid)
            if not outcome.history.versions:
                continue  # only uncommitted content: nothing to capture
            btree.stats.time_splits += 1
            self.engine.buffer.replace_page(outcome.current)
            self.engine.buffer.replace_page(outcome.history)
            affected = [outcome.current, outcome.history]
            if btree.history_index is not None:
                _, _, low, high = btree._descend(
                    outcome.current.min_key or b""
                )
                affected.extend(
                    btree.history_index.on_time_split(outcome.history, low, high)
                )
            btree._log_smo(SMOReason.TIME_SPLIT, affected)
            split += 1
        return split

    # -- point-in-time restore --------------------------------------------------------

    def restore_as_of(
        self, ts: Timestamp, new_table_name: str
    ) -> "Table":
        """Materialize the table's state AS OF ``ts`` into a new table.

        This is the paper's answer to erroneous transactions (compare Oracle
        Flashback, Section 6.2): no backup media, no redo-log roll-forward —
        the versions are already in the database.  The restored table is a
        plain (non-immortal) copy; the damaged original stays queryable.
        """
        schema = self.table.schema
        restored = self.engine.create_table(
            new_table_name,
            columns=[(c.name, c.column_type) for c in schema.columns],
            key=schema.key_column,
            immortal=False,
        )
        rows = self.table.scan_as_of(ts)
        with self.engine.transaction() as txn:
            for row in rows:
                restored.insert(txn, row)
        return restored
