"""The Immortal DB engine: tables, transactions, AS OF queries, backup.

This is the public face of the library.  Typical use::

    from repro import ImmortalDB, ColumnType

    db = ImmortalDB()
    db.create_table(
        "MovingObjects",
        columns=[("Oid", ColumnType.SMALLINT),
                 ("LocationX", ColumnType.INT),
                 ("LocationY", ColumnType.INT)],
        key="Oid",
        immortal=True,
    )
    with db.transaction() as txn:
        db.table("MovingObjects").insert(txn, {"Oid": 1,
                                                "LocationX": 10,
                                                "LocationY": 20})
    ...
    rows = db.table("MovingObjects").scan_as_of(some_past_timestamp)
"""

from repro.core.rowcodec import ColumnType, RowCodec
from repro.core.catalog import Catalog, ColumnDef, TableSchema
from repro.core.table import Table
from repro.core.engine import ImmortalDB
from repro.core.backup import QueryableBackup
from repro.core.inspect import TableInspection, format_report, inspect_table
from repro.core.integrity import IntegrityError, verify_integrity

__all__ = [
    "ColumnType",
    "RowCodec",
    "Catalog",
    "ColumnDef",
    "TableSchema",
    "Table",
    "ImmortalDB",
    "QueryableBackup",
    "inspect_table",
    "TableInspection",
    "format_report",
    "verify_integrity",
    "IntegrityError",
]
