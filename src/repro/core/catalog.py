"""The catalog: table schemas and durable engine roots.

"By recognizing the new keyword IMMORTAL, we set a flag in the table catalog
that indicates the immortal property of that table.  This flag is visible to
the storage engine" (Section 4.1).  The flag controls three things, all
enforced by the table/engine layers:

1. no garbage collection of historical versions,
2. a PTT entry is written for every committing update transaction,
3. AS OF historical queries are enabled.

The catalog serializes to JSON inside the boot (meta) page together with the
PTT root and the next table id, and is written through durably whenever a
table is created or a checkpoint is taken.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import CatalogError, TableExistsError, TableNotFoundError
from repro.core.rowcodec import ColumnType


@dataclass(frozen=True)
class ColumnDef:
    name: str
    column_type: ColumnType

    def to_json(self) -> dict:
        """Serialize to a JSON-compatible dict."""
        return {"name": self.name, "type": self.column_type.value}

    @classmethod
    def from_json(cls, data: dict) -> "ColumnDef":
        """Deserialize from a JSON-compatible dict."""
        return cls(data["name"], ColumnType(data["type"]))


@dataclass
class TableSchema:
    """Durable description of one table."""

    name: str
    table_id: int
    columns: list[ColumnDef]
    key_column: str
    immortal: bool = False
    snapshot_enabled: bool = False
    root_pid: int = 0          # B-tree root (fixed for the table's lifetime)
    tsb_root_pid: int = 0      # TSB history index root (0 = no TSB index)

    def to_json(self) -> dict:
        """Serialize to a JSON-compatible dict."""
        return {
            "name": self.name,
            "table_id": self.table_id,
            "columns": [c.to_json() for c in self.columns],
            "key_column": self.key_column,
            "immortal": self.immortal,
            "snapshot_enabled": self.snapshot_enabled,
            "root_pid": self.root_pid,
            "tsb_root_pid": self.tsb_root_pid,
        }

    @classmethod
    def from_json(cls, data: dict) -> "TableSchema":
        """Deserialize from a JSON-compatible dict."""
        return cls(
            name=data["name"],
            table_id=data["table_id"],
            columns=[ColumnDef.from_json(c) for c in data["columns"]],
            key_column=data["key_column"],
            immortal=data["immortal"],
            snapshot_enabled=data["snapshot_enabled"],
            root_pid=data["root_pid"],
            tsb_root_pid=data["tsb_root_pid"],
        )


@dataclass
class Catalog:
    """All durable engine roots, serialized into the boot page."""

    tables: dict[str, TableSchema] = field(default_factory=dict)
    next_table_id: int = 1
    ptt_root_pid: int = 0
    # Page ids reclaimed by archive migration, persisted opportunistically
    # (see repro.storage.freelist for the lazy crash-safety argument).
    free_pids: list[int] = field(default_factory=list)
    # High-water commit timestamp as (ttime, sn), refreshed at every boot-page
    # write.  Recovery feeds it to SimClock.adopt_floor so a restarted clock
    # can never stamp below an already-durable commit time; commits after the
    # last checkpoint are covered by the redo scan instead.
    commit_ts_hw: tuple[int, int] = (0, 0)

    def add_table(self, schema: TableSchema) -> None:
        if schema.name in self.tables:
            raise TableExistsError(f"table {schema.name!r} already exists")
        self.tables[schema.name] = schema

    def remove_table(self, name: str) -> TableSchema:
        try:
            return self.tables.pop(name)
        except KeyError:
            raise TableNotFoundError(f"table {name!r} does not exist") from None

    def get(self, name: str) -> TableSchema:
        try:
            return self.tables[name]
        except KeyError:
            raise TableNotFoundError(f"table {name!r} does not exist") from None

    def by_id(self, table_id: int) -> TableSchema:
        for schema in self.tables.values():
            if schema.table_id == table_id:
                return schema
        raise TableNotFoundError(f"no table with id {table_id}")

    def allocate_table_id(self) -> int:
        table_id = self.next_table_id
        self.next_table_id += 1
        return table_id

    # -- serialization ------------------------------------------------------

    def to_blob(self) -> bytes:
        doc = {
            "format": 1,
            "next_table_id": self.next_table_id,
            "ptt_root_pid": self.ptt_root_pid,
            "tables": [schema.to_json() for schema in self.tables.values()],
        }
        # Emitted only when non-empty so blobs without archiving stay
        # byte-identical to the pre-archive format.
        if self.free_pids:
            doc["free_pids"] = self.free_pids
        if self.commit_ts_hw != (0, 0):
            doc["commit_ts_hw"] = list(self.commit_ts_hw)
        return json.dumps(doc, separators=(",", ":")).encode("utf-8")

    @classmethod
    def from_blob(cls, blob: bytes) -> "Catalog":
        if not blob:
            return cls()
        try:
            doc = json.loads(blob.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise CatalogError(f"corrupt catalog blob: {exc}") from exc
        if doc.get("format") != 1:
            raise CatalogError(f"unknown catalog format {doc.get('format')!r}")
        catalog = cls(
            next_table_id=doc["next_table_id"],
            ptt_root_pid=doc["ptt_root_pid"],
            free_pids=list(doc.get("free_pids", [])),
            commit_ts_hw=tuple(doc.get("commit_ts_hw", (0, 0))),
        )
        for table_doc in doc["tables"]:
            catalog.add_table(TableSchema.from_json(table_doc))
        return catalog
