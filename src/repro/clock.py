"""Timestamps and the simulated clock.

Immortal DB represents a transaction timestamp exactly the way the paper's
Section 2.1 describes it:

* an 8-byte time value with **20 ms resolution** (SQL Server's ``datetime``
  has a 1/300 s ≈ 3.3 ms granularity; the paper quotes 20 ms, which we
  follow), plus
* a 4-byte **sequence number** (SN) that distinguishes up to 2**32
  transactions that commit within the same 20 ms tick.

Before a transaction commits, the 8-byte field of each record it wrote holds
the transaction id (TID) instead of a time.  We tag such values with the high
bit (:data:`TID_FLAG`) so a field can always be classified as
"timestamped" or "TID-marked" without external state.

The :class:`SimClock` is the single source of time for a database instance.
It is *logical*: tests and workloads advance it explicitly, which makes every
experiment deterministic and lets a benchmark compress "a day of updates"
into milliseconds of wall-clock.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import ClassVar

TICK_MS = 20
"""Resolution of the 8-byte time value, in milliseconds (paper Section 2.1)."""

TID_FLAG = 1 << 63
"""High bit set in an 8-byte Ttime field ⇒ the field holds a TID, not a time."""

_FIELD_MASK = TID_FLAG - 1

EPOCH = _dt.datetime(2006, 1, 1, 0, 0, 0)
"""Datetime corresponding to tick 0 (the paper's experiments ran in 2005/06)."""

SN_INVALID = 0xFFFFFFFF
"""SN value marking a VTT entry whose transaction is still active (§2.2 stage I)."""


def encode_tid_field(tid: int) -> int:
    """Return the 8-byte Ttime field value that marks a record with ``tid``."""
    if not 0 < tid <= _FIELD_MASK:
        raise ValueError(f"TID out of range: {tid}")
    return TID_FLAG | tid


def field_is_tid(field: int) -> bool:
    """True if an 8-byte Ttime field holds a TID (record not yet timestamped)."""
    return bool(field & TID_FLAG)


def field_tid(field: int) -> int:
    """Extract the TID from a TID-marked Ttime field."""
    if not field & TID_FLAG:
        raise ValueError(f"field {field:#x} is a timestamp, not a TID")
    return field & _FIELD_MASK


@dataclass(frozen=True, order=True, slots=True)
class Timestamp:
    """A transaction timestamp: (20 ms tick, sequence number).

    Total order of timestamps equals the commit (serialization) order of the
    transactions that received them, because Immortal DB chooses timestamps
    at commit time under a short critical section (§2.1, "late choice").
    """

    ttime: int
    sn: int

    MIN: ClassVar["Timestamp"]
    MAX: ClassVar["Timestamp"]

    SIZE = 12  # 8-byte ttime + 4-byte SN, as laid out in Figure 1b

    def __post_init__(self) -> None:
        if not 0 <= self.ttime <= _FIELD_MASK:
            raise ValueError(f"ttime out of range: {self.ttime}")
        if not 0 <= self.sn <= 0xFFFFFFFF:
            raise ValueError(f"sn out of range: {self.sn}")

    def to_bytes(self) -> bytes:
        """Serialize to the fixed-size on-disk image."""
        return self.ttime.to_bytes(8, "big") + self.sn.to_bytes(4, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "Timestamp":
        """Deserialize from an on-disk image."""
        if len(data) != cls.SIZE:
            raise ValueError(f"timestamp image must be {cls.SIZE} bytes")
        return cls(int.from_bytes(data[:8], "big"), int.from_bytes(data[8:], "big"))

    def to_datetime(self) -> _dt.datetime:
        """The wall-clock time this timestamp's tick corresponds to."""
        return EPOCH + _dt.timedelta(milliseconds=self.ttime * TICK_MS)

    @classmethod
    def from_datetime(cls, when: _dt.datetime, sn: int = 0) -> "Timestamp":
        """Convert a wall-clock datetime to a timestamp (20 ms ticks)."""
        delta = when - EPOCH
        ticks = int(delta.total_seconds() * 1000) // TICK_MS
        if ticks < 0:
            raise ValueError(f"datetime {when} precedes the clock epoch {EPOCH}")
        return cls(ticks, sn)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.to_datetime().isoformat(sep=' ')}+{self.sn}"


Timestamp.MIN = Timestamp(0, 0)
Timestamp.MAX = Timestamp(_FIELD_MASK, 0xFFFFFFFE)


class SimClock:
    """Deterministic logical clock with 20 ms ticks.

    The clock hands out unique, monotonically increasing timestamps: within
    one tick the 4-byte sequence number increments, and advancing the tick
    resets it.  Workload drivers move time forward with :meth:`advance_ms`;
    optionally ``ms_per_timestamp`` makes every timestamp draw advance the
    clock, which is convenient for tests that want time to "just pass".
    """

    def __init__(self, start_tick: int = 1, ms_per_timestamp: float = 0.0) -> None:
        if start_tick < 1:
            raise ValueError("start_tick must be >= 1 (tick 0 is Timestamp.MIN)")
        self._tick = start_tick
        self._issued_sn = 0        # SN of the last timestamp issued this tick
        self._ms_remainder = 0.0
        self.ms_per_timestamp = ms_per_timestamp
        self._last_issued: Timestamp | None = None

    # -- reading time -------------------------------------------------------

    @property
    def tick(self) -> int:
        """The current 20 ms tick (the raw 8-byte Ttime value)."""
        return self._tick

    def now(self) -> Timestamp:
        """The current moment, as an *inclusive* upper bound on the past.

        ``now()`` is ≥ every timestamp issued so far and strictly less than
        every timestamp that will be issued later, so "AS OF now()" sees
        exactly the transactions committed so far — snapshot horizons and
        as-of bounds can both compare with ``<=``.
        """
        return Timestamp(self._tick, self._issued_sn)

    def now_datetime(self) -> _dt.datetime:
        """The current simulated moment as a datetime."""
        return Timestamp(self._tick, 0).to_datetime()

    # -- advancing time -----------------------------------------------------

    def advance_ms(self, ms: float) -> None:
        """Move the clock forward by ``ms`` milliseconds (fractional ok)."""
        if ms < 0:
            raise ValueError("time cannot move backwards")
        self._ms_remainder += ms
        whole_ticks = int(self._ms_remainder // TICK_MS)
        if whole_ticks:
            self._ms_remainder -= whole_ticks * TICK_MS
            self._tick += whole_ticks
            self._issued_sn = 0

    def advance_ticks(self, ticks: int = 1) -> None:
        """Move the clock forward by whole 20 ms ticks."""
        if ticks < 0:
            raise ValueError("time cannot move backwards")
        if ticks:
            self._tick += ticks
            self._issued_sn = 0

    def adopt_floor(self, floor: Timestamp) -> None:
        """Never again issue (or report as ``now()``) a time below ``floor``.

        Called after crash recovery with the durable high-water commit
        timestamp (persisted in the boot page at every checkpoint, plus the
        max commit timestamp replayed from the log suffix).  A restarted
        engine's clock restarts from tick 1, so without this a fresh commit
        could stamp *below* an already-durable version — breaking the
        invariant that timestamp order equals commit order.  Monotone: a
        floor at or below the current position is a no-op.
        """
        if floor.ttime > self._tick:
            self._tick = floor.ttime
            self._issued_sn = floor.sn
            self._ms_remainder = 0.0
        elif floor.ttime == self._tick and floor.sn > self._issued_sn:
            self._issued_sn = floor.sn

    # -- issuing timestamps --------------------------------------------------

    def next_timestamp(self) -> Timestamp:
        """Issue a unique timestamp that is strictly greater than all prior ones.

        Also strictly greater than any ``now()`` read before this call, so a
        snapshot horizon taken earlier can never equal a later commit time.
        """
        if self._issued_sn >= SN_INVALID - 1:
            # Approaching 2**32 commits in one 20 ms tick: roll to the next
            # tick rather than hand out the reserved SN_INVALID value.
            self.advance_ticks(1)
        self._issued_sn += 1
        ts = Timestamp(self._tick, self._issued_sn)
        if self.ms_per_timestamp:
            self.advance_ms(self.ms_per_timestamp)
        assert self._last_issued is None or ts > self._last_issued
        self._last_issued = ts
        return ts
