"""Tests for the database integrity checker — and, through it, the engine.

Running the checker over heavily-exercised databases is itself a deep
test: every structural invariant is revalidated after splits, crashes,
and mixed workloads.  The corruption tests then prove the checker is not
vacuous (it actually catches each class of damage it claims to).
"""

from __future__ import annotations

import pytest

from repro import ColumnType, ImmortalDB
from repro.core.integrity import IntegrityError, verify_integrity


COLS = [("k", ColumnType.INT), ("v", ColumnType.TEXT)]


def build_busy_db(*, use_tsb=False, crash=False) -> ImmortalDB:
    db = ImmortalDB(buffer_pages=64, use_tsb_index=use_tsb)
    table = db.create_table("t", COLS, key="k", immortal=True)
    plain = db.create_table("p", COLS, key="k", snapshot=True)
    with db.transaction() as txn:
        for k in range(60):
            table.insert(txn, {"k": k, "v": "x" * 50})
            plain.insert(txn, {"k": k, "v": "y" * 30})
    for r in range(60):
        db.advance_time(300)
        with db.transaction() as txn:
            table.update(txn, r % 60, {"v": f"r{r}" + "z" * 50})
            plain.update(txn, r % 60, {"v": f"r{r}"})
    with db.transaction() as txn:
        table.delete(txn, 5)
    if crash:
        db.crash_and_recover()
    return db


class TestHealthyDatabases:
    def test_fresh_database_is_clean(self):
        db = ImmortalDB()
        db.create_table("t", COLS, key="k", immortal=True)
        assert verify_integrity(db) == []

    def test_busy_database_is_clean(self):
        assert verify_integrity(build_busy_db()) == []

    def test_busy_tsb_database_is_clean(self):
        assert verify_integrity(build_busy_db(use_tsb=True)) == []

    def test_database_clean_after_crash_recovery(self):
        assert verify_integrity(build_busy_db(crash=True)) == []

    def test_database_clean_with_active_transactions(self):
        db = build_busy_db()
        txn = db.begin()
        db.table("t").update(txn, 1, {"v": "in-flight"})
        assert verify_integrity(db) == []
        db.abort(txn)

    def test_database_clean_after_checkpoints_and_gc(self):
        db = build_busy_db()
        db.checkpoint(flush=True)
        db.checkpoint(flush=True)
        assert verify_integrity(db) == []

    def test_strict_mode_passes_quietly(self):
        verify_integrity(build_busy_db(), strict=True)


class TestCorruptionDetection:
    def test_detects_unsorted_slot_array(self):
        db = build_busy_db()
        table = db.table("t")
        leaf = table.btree.leftmost_leaf()
        leaf._slot_keys[0], leaf._slot_keys[1] = \
            leaf._slot_keys[1], leaf._slot_keys[0]
        leaf.slots[0], leaf.slots[1] = leaf.slots[1], leaf.slots[0]
        problems = verify_integrity(db)
        # Caught either by the slot-order check or by the codec roundtrip
        # (the decoder itself rejects unsorted slot arrays).
        assert any(
            "out of order" in p or "outside its bounds" in p
            or "fails to serialize" in p
            for p in problems
        )

    def test_detects_chain_cycle(self):
        db = build_busy_db()
        table = db.table("t")
        key = table.codec.encode_key(0)
        leaf = table.btree.search_leaf(key)
        head_index = leaf.slots[leaf.slot_of(key)]
        head = leaf.versions[head_index]
        if head.has_previous and not head.vp_in_history:
            leaf.versions[head.vp].vp = head_index  # cycle back to head
            leaf.versions[head.vp].flags &= ~2
            problems = verify_integrity(db)
            assert any("cycle" in p for p in problems)

    def test_detects_broken_history_time_range(self):
        from repro.clock import Timestamp

        db = build_busy_db()
        table = db.table("t")
        leaf = next(
            l for l in table.btree.leaves() if l.history_page_id
        )
        history = db.buffer.get_page(leaf.history_page_id)
        history.end_ts = Timestamp(1, 0)  # no longer meets the leaf's start
        problems = verify_integrity(db)
        assert any("ends at" in p or "empty time range" in p
                   for p in problems)

    def test_detects_orphaned_tid(self):
        from repro.storage.record import RecordVersion

        db = build_busy_db()
        table = db.table("t")
        leaf = table.btree.leftmost_leaf()
        ghost = RecordVersion.new(b"\x7f\xff\xff\xf0", b"x", tid=99999)
        leaf.insert_version(ghost)
        problems = verify_integrity(db)
        assert any("orphaned TID" in p for p in problems)

    def test_detects_misordered_index_separators(self):
        db = ImmortalDB(buffer_pages=256)
        table = db.create_table("t", COLS, key="k", immortal=True)
        with db.transaction() as txn:
            for k in range(400):
                table.insert(txn, {"k": k, "v": "x" * 60})
        root = db.buffer.get_page(table.btree.root_pid)
        from repro.access.btree import BTreeIndexPage

        assert isinstance(root, BTreeIndexPage)
        root.seps.reverse()
        problems = verify_integrity(db)
        assert problems  # separators and/or bounds violations

    def test_strict_mode_raises(self):
        db = build_busy_db()
        table = db.table("t")
        leaf = table.btree.leftmost_leaf()
        leaf._slot_keys.reverse()
        leaf.slots.reverse()
        with pytest.raises(IntegrityError):
            verify_integrity(db, strict=True)
