"""Tests for the Persistent Timestamp Table B+tree."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.clock import Timestamp
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDisk
from repro.storage.page import decode_page
from repro.timestamp.ptt import PersistentTimestampTable, PTTNodePage


@pytest.fixture
def buffer():
    return BufferPool(InMemoryDisk(), capacity=256)


@pytest.fixture
def ptt(buffer):
    return PersistentTimestampTable(buffer)


def ts(i: int) -> Timestamp:
    return Timestamp(i, i % 7)


class TestBasicOps:
    def test_insert_then_lookup(self, ptt):
        assert ptt.insert(5, ts(5))
        assert ptt.lookup(5) == ts(5)

    def test_missing_tid_is_none(self, ptt):
        assert ptt.lookup(42) is None

    def test_insert_is_idempotent(self, ptt):
        assert ptt.insert(5, ts(5))
        assert not ptt.insert(5, ts(99))  # logical redo must not overwrite
        assert ptt.lookup(5) == ts(5)

    def test_delete_is_idempotent(self, ptt):
        ptt.insert(5, ts(5))
        assert ptt.delete(5)
        assert not ptt.delete(5)
        assert ptt.lookup(5) is None

    def test_len_counts_entries(self, ptt):
        for tid in range(1, 21):
            ptt.insert(tid, ts(tid))
        assert len(ptt) == 20
        ptt.delete(7)
        assert len(ptt) == 19

    def test_entries_are_tid_ordered(self, ptt):
        for tid in (5, 1, 9, 3):
            ptt.insert(tid, ts(tid))
        assert [tid for tid, _ in ptt.entries()] == [1, 3, 5, 9]

    def test_max_tid(self, ptt):
        assert ptt.max_tid() == 0
        ptt.insert(3, ts(3))
        ptt.insert(10, ts(10))
        assert ptt.max_tid() == 10


class TestSplitsAndStructure:
    def test_ascending_inserts_split_and_stay_searchable(self, ptt):
        n = 2000  # > 2 leaves worth of 20-byte entries
        for tid in range(1, n + 1):
            ptt.insert(tid, ts(tid))
        assert ptt.height() >= 2
        for tid in (1, n // 2, n):
            assert ptt.lookup(tid) == ts(tid)
        assert len(ptt) == n

    def test_root_pid_never_changes(self, ptt):
        root = ptt.root_pid
        for tid in range(1, 3000):
            ptt.insert(tid, ts(tid))
        assert ptt.root_pid == root

    def test_append_mostly_split_keeps_table_compact(self, ptt):
        """TIDs ascend, so retired leaves should be ~90% full, not ~50%."""
        for tid in range(1, 2001):
            ptt.insert(tid, ts(tid))
        pages = ptt.page_ids()
        leaves = [
            p for pid in pages
            if (p := ptt._node(pid)).is_leaf
        ]
        # Average leaf fill excluding the rightmost (still filling) leaf.
        fills = [len(l.tids) / l.leaf_capacity for l in leaves]
        fills.remove(max(fills)) if len(fills) > 1 else None
        assert sum(fills) / len(fills) > 0.7

    def test_gc_deletes_from_the_head(self, ptt):
        for tid in range(1, 1500):
            ptt.insert(tid, ts(tid))
        for tid in range(1, 1000):
            ptt.delete(tid)
        assert len(ptt) == 500
        assert ptt.lookup(500) is None
        assert ptt.lookup(1200) == ts(1200)

    def test_nodes_serialize_roundtrip(self, ptt, buffer):
        for tid in range(1, 600):
            ptt.insert(tid, ts(tid))
        for pid in ptt.page_ids():
            node = ptt._node(pid)
            decoded = decode_page(node.to_bytes())
            assert isinstance(decoded, PTTNodePage)
            assert decoded.is_leaf == node.is_leaf
            if node.is_leaf:
                assert decoded.tids == node.tids
                assert decoded.sns == node.sns
            else:
                assert decoded.seps == node.seps
                assert decoded.children == node.children

    def test_survives_buffer_eviction(self):
        buffer = BufferPool(InMemoryDisk(), capacity=4)
        ptt = PersistentTimestampTable(buffer)
        for tid in range(1, 1200):
            ptt.insert(tid, ts(tid))
        for tid in (1, 600, 1199):
            assert ptt.lookup(tid) == ts(tid)


class TestPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(
        tids=st.lists(
            st.integers(1, 10_000), unique=True, min_size=1, max_size=300
        ),
        delete_mask=st.lists(st.booleans(), min_size=300, max_size=300),
    )
    def test_insert_delete_matches_dict(self, tids, delete_mask):
        buffer = BufferPool(InMemoryDisk(), capacity=64)
        ptt = PersistentTimestampTable(buffer)
        model: dict[int, Timestamp] = {}
        for tid in tids:
            ptt.insert(tid, ts(tid))
            model[tid] = ts(tid)
        for tid, kill in zip(list(model), delete_mask):
            if kill:
                ptt.delete(tid)
                del model[tid]
        assert dict(ptt.entries()) == model
        for tid in tids:
            assert ptt.lookup(tid) == model.get(tid)
