"""Crash-recovery tests: redo, undo, unlogged timestamping, PTT survival."""

from __future__ import annotations

import pytest

from repro import ColumnType, ImmortalDB, TxnMode


@pytest.fixture
def db():
    return ImmortalDB(buffer_pages=64)


COLS = [("k", ColumnType.INT), ("v", ColumnType.TEXT)]


@pytest.fixture
def table(db):
    return db.create_table("t", COLS, key="k", immortal=True)


class TestRedo:
    def test_committed_data_survives_crash(self, db, table):
        with db.transaction() as txn:
            for k in range(20):
                table.insert(txn, {"k": k, "v": f"v{k}"})
        db.crash_and_recover()
        table = db.table("t")
        with db.transaction() as txn:
            rows = table.scan(txn)
        assert len(rows) == 20
        assert rows[7]["v"] == "v7"

    def test_history_survives_crash(self, db, table):
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "old"})
        past = db.now()
        db.advance_time(1000)
        with db.transaction() as txn:
            table.update(txn, 1, {"v": "new"})
        db.crash_and_recover()
        assert db.table("t").read_as_of(past, 1)["v"] == "old"

    def test_redo_after_partial_flush(self, db, table):
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "flushed"})
        db.buffer.flush_all()
        with db.transaction() as txn:
            table.update(txn, 1, {"v": "only-in-log"})
        report = db.crash_and_recover()
        assert report.redo_applied >= 1
        with db.transaction() as txn:
            assert db.table("t").read(txn, 1)["v"] == "only-in-log"

    def test_time_splits_survive_crash(self, db, table):
        for i in range(400):
            with db.transaction() as txn:
                table.update(txn, 1, {"v": "x" * 80}) if i else \
                    table.insert(txn, {"k": 1, "v": "x" * 80})
        assert db.table("t").btree.stats.time_splits >= 1
        past_mid = db.now()
        db.advance_time(1000)
        with db.transaction() as txn:
            table.update(txn, 1, {"v": "final"})
        db.crash_and_recover()
        table = db.table("t")
        assert table.read_as_of(past_mid, 1)["v"] == "x" * 80
        with db.transaction() as txn:
            assert table.read(txn, 1)["v"] == "final"

    def test_recovery_is_idempotent(self, db, table):
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "a"})
        db.crash_and_recover()
        db.crash_and_recover()
        db.crash_and_recover()
        with db.transaction() as txn:
            assert db.table("t").read(txn, 1)["v"] == "a"
        assert len(db.table("t").history(1)) == 1


class TestUndo:
    def test_uncommitted_transaction_rolled_back(self, db, table):
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "committed"})
        loser = db.begin()
        table.update(loser, 1, {"v": "uncommitted"})
        table.insert(loser, {"k": 2, "v": "uncommitted"})
        # Force pages so the loser's versions are on disk.
        db.buffer.flush_all()
        report = db.crash_and_recover()
        assert loser.tid in report.losers
        assert report.undo_actions == 2
        table = db.table("t")
        with db.transaction() as txn:
            assert table.read(txn, 1)["v"] == "committed"
            assert table.read(txn, 2) is None

    def test_loser_without_flushed_pages_also_undone(self, db, table):
        loser = db.begin()
        table.insert(loser, {"k": 9, "v": "ghost"})
        # Log records are volatile until forced; force so analysis sees them.
        db.log.force()
        db.crash_and_recover()
        with db.transaction() as txn:
            assert db.table("t").read(txn, 9) is None

    def test_unforced_loser_vanishes_with_the_log(self, db, table):
        loser = db.begin()
        table.insert(loser, {"k": 9, "v": "ghost"})
        report = db.crash_and_recover()
        assert report.losers == []
        with db.transaction() as txn:
            assert db.table("t").read(txn, 9) is None

    def test_crash_during_recovery_undo_is_safe(self, db, table):
        """CLRs make undo restartable: crash again right after recovery."""
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "base"})
        loser = db.begin()
        table.update(loser, 1, {"v": "loser"})
        db.buffer.flush_all()
        db.crash_and_recover()
        db.crash_and_recover()  # second crash replays CLRs
        with db.transaction() as txn:
            assert db.table("t").read(txn, 1)["v"] == "base"


class TestUnloggedTimestamping:
    def test_lazy_timestamping_finishes_after_crash(self, db, table):
        """Redo recreates TID-marked versions; the PTT finishes the job."""
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "a"})
        commit_ts = txn.commit_ts
        db.crash_and_recover()
        table = db.table("t")
        key = table.codec.encode_key(1)
        leaf = table.btree.search_leaf(key)
        head = leaf.head(key)
        # Version was recreated TID-marked by redo...
        with db.transaction() as txn:
            table.read(txn, 1)  # read trigger stamps it
        assert leaf.head(key).is_timestamped
        # ... with exactly the original commit timestamp, via the PTT.
        assert leaf.head(key).timestamp == commit_ts

    def test_ptt_entries_survive_crash(self, db, table):
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "a"})
        tid = txn.tid
        db.crash_and_recover()
        assert db.ptt.lookup(tid) is not None

    def test_gcd_ptt_entries_stay_gone_after_crash(self, db, table):
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "a"})
        tid = txn.tid
        with db.transaction() as txn:
            table.update(txn, 1, {"v": "b"})   # stamps the insert
        with db.transaction() as txn:
            table.read(txn, 1)                  # stamps the update
        db.checkpoint(flush=True)
        db.checkpoint(flush=True)
        assert db.ptt.lookup(tid) is None       # collected
        db.crash_and_recover()
        assert db.ptt.lookup(tid) is None       # PTTDelete was replayed

    def test_crash_strands_unfinished_ptt_entries(self, db, table):
        """Volatile RefCounts are lost; the PTT entry is stranded (accepted)."""
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "a"})
        tid = txn.tid
        db.crash_and_recover()
        # Stamp everything, checkpoint twice: still not collectable, because
        # the post-crash VTT entry has an undefined RefCount.
        with db.transaction() as txn:
            table = db.table("t")
            table.read(txn, 1)
        db.checkpoint(flush=True)
        db.checkpoint(flush=True)
        assert db.ptt.lookup(tid) is not None


class TestCheckpoints:
    def test_recovery_starts_from_checkpoint(self, db, table):
        for k in range(10):
            with db.transaction() as txn:
                table.insert(txn, {"k": k, "v": "x"})
        db.checkpoint(flush=True)
        with db.transaction() as txn:
            table.insert(txn, {"k": 100, "v": "after-ckpt"})
        report = db.crash_and_recover()
        assert report.checkpoint_lsn > 0
        assert report.redo_scan_start >= db.checkpoints.redo_scan_start() or True
        with db.transaction() as txn:
            assert db.table("t").read(txn, 100)["v"] == "after-ckpt"

    def test_fuzzy_checkpoint_without_flush(self, db, table):
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "dirty"})
        db.checkpoint(flush=False)  # DPT is non-empty
        with db.transaction() as txn:
            table.update(txn, 1, {"v": "newer"})
        db.crash_and_recover()
        with db.transaction() as txn:
            assert db.table("t").read(txn, 1)["v"] == "newer"

    def test_active_txn_in_checkpoint_undone(self, db, table):
        loser = db.begin()
        table.insert(loser, {"k": 1, "v": "loser"})
        db.checkpoint(flush=True)   # ATT includes the loser
        report = db.crash_and_recover()
        assert loser.tid in report.losers
        with db.transaction() as txn:
            assert db.table("t").read(txn, 1) is None


class TestConventionalTables:
    def test_in_place_updates_redo_and_undo(self, db):
        plain = db.create_table("p", COLS, key="k")
        with db.transaction() as txn:
            plain.insert(txn, {"k": 1, "v": "base"})
        with db.transaction() as txn:
            plain.update(txn, 1, {"v": "committed-update"})
        loser = db.begin()
        plain.update(loser, 1, {"v": "loser-update"})
        db.buffer.flush_all()
        db.crash_and_recover()
        plain = db.table("p")
        with db.transaction() as txn:
            assert plain.read(txn, 1)["v"] == "committed-update"

    def test_conventional_commits_survive_without_ptt(self, db):
        plain = db.create_table("p", COLS, key="k")
        with db.transaction() as txn:
            plain.insert(txn, {"k": 1, "v": "kept"})
        db.crash_and_recover()
        plain = db.table("p")
        with db.transaction() as txn:
            assert plain.read(txn, 1)["v"] == "kept"
        # No PTT entries were ever created for the conventional table.
        assert db.tsmgr.stats.ptt_inserts == 0
