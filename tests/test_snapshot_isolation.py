"""Tests for snapshot isolation: lock-free reads, conflicts, version GC."""

from __future__ import annotations

import pytest

from repro import ColumnType, ImmortalDB, TxnMode
from repro.concurrency.snapshot import prune_conventional_page, visible_version
from repro.clock import Timestamp
from repro.errors import WriteConflictError
from repro.storage.page import DataPage
from repro.storage.record import RecordVersion


@pytest.fixture
def db():
    return ImmortalDB(buffer_pages=64)


@pytest.fixture
def table(db):
    return db.create_table(
        "t", columns=[("k", ColumnType.INT), ("v", ColumnType.TEXT)],
        key="k", snapshot=True,
    )


class TestSnapshotReads:
    def test_reader_sees_state_at_begin(self, db, table):
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "before"})
        reader = db.begin(TxnMode.SNAPSHOT)
        with db.transaction() as txn:
            table.update(txn, 1, {"v": "after"})
        assert table.read(reader, 1)["v"] == "before"
        db.commit(reader)

    def test_reader_not_blocked_by_concurrent_writer(self, db, table):
        """The headline benefit: reads proceed without locking."""
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "committed"})
        writer = db.begin()
        table.update(writer, 1, {"v": "in-flight"})
        reader = db.begin(TxnMode.SNAPSHOT)
        assert table.read(reader, 1)["v"] == "committed"
        db.commit(writer)
        db.commit(reader)

    def test_snapshot_reader_takes_no_locks(self, db, table):
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "x"})
        reader = db.begin(TxnMode.SNAPSHOT)
        table.read(reader, 1)
        assert db.locks.locks_held(reader.tid) == 0
        db.commit(reader)

    def test_reader_sees_deletes_after_its_snapshot(self, db, table):
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "x"})
        reader = db.begin(TxnMode.SNAPSHOT)
        with db.transaction() as txn:
            table.delete(txn, 1)
        assert table.read(reader, 1)["v"] == "x"
        db.commit(reader)
        late_reader = db.begin(TxnMode.SNAPSHOT)
        assert table.read(late_reader, 1) is None
        db.commit(late_reader)

    def test_scan_is_snapshot_consistent(self, db, table):
        with db.transaction() as txn:
            for i in range(5):
                table.insert(txn, {"k": i, "v": "old"})
        reader = db.begin(TxnMode.SNAPSHOT)
        with db.transaction() as txn:
            table.update(txn, 2, {"v": "new"})
            table.delete(txn, 4)
            table.insert(txn, {"k": 99, "v": "new"})
        rows = table.scan(reader)
        assert len(rows) == 5
        assert all(r["v"] == "old" for r in rows)
        db.commit(reader)


class TestWriteConflicts:
    def test_first_committer_wins(self, db, table):
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "base"})
        t1 = db.begin(TxnMode.SNAPSHOT)
        # A later transaction updates and commits first.
        with db.transaction() as txn:
            table.update(txn, 1, {"v": "winner"})
        with pytest.raises(WriteConflictError):
            table.update(t1, 1, {"v": "loser"})
        db.abort(t1)
        with db.transaction() as reader:
            assert table.read(reader, 1)["v"] == "winner"

    def test_non_conflicting_snapshot_writes_succeed(self, db, table):
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "a"})
            table.insert(txn, {"k": 2, "v": "b"})
        t1 = db.begin(TxnMode.SNAPSHOT)
        t2 = db.begin(TxnMode.SNAPSHOT)
        table.update(t1, 1, {"v": "t1"})
        table.update(t2, 2, {"v": "t2"})
        db.commit(t1)
        db.commit(t2)
        with db.transaction() as reader:
            assert table.read(reader, 1)["v"] == "t1"
            assert table.read(reader, 2)["v"] == "t2"


class TestVisibleVersion:
    def _chain(self, *times: int) -> list[RecordVersion]:
        out = []
        for t in times:  # newest first
            rec = RecordVersion.new(b"k", f"v{t}".encode(), tid=1)
            rec.stamp(Timestamp(t, 0))
            out.append(rec)
        return out

    def test_exclusive_horizon(self):
        chain = self._chain(30, 20, 10)
        got = visible_version(
            chain, horizon=Timestamp(20, 0), inclusive=False,
            resolve=lambda tid: (None, False),
        )
        assert got.payload == b"v10"

    def test_inclusive_horizon(self):
        chain = self._chain(30, 20, 10)
        got = visible_version(
            chain, horizon=Timestamp(20, 0), inclusive=True,
            resolve=lambda tid: (None, False),
        )
        assert got.payload == b"v20"

    def test_horizon_before_everything(self):
        chain = self._chain(30, 20, 10)
        got = visible_version(
            chain, horizon=Timestamp(5, 0), inclusive=True,
            resolve=lambda tid: (None, False),
        )
        assert got is None

    def test_own_uncommitted_version_visible_for_current_reads(self):
        mine = RecordVersion.new(b"k", b"mine", tid=7)
        got = visible_version(
            [mine], horizon=None, inclusive=False,
            resolve=lambda tid: (None, False), own_tid=7,
        )
        assert got.payload == b"mine"

    def test_other_active_writers_skipped(self):
        theirs = RecordVersion.new(b"k", b"theirs", tid=9)
        chain = [theirs] + self._chain(10)
        got = visible_version(
            chain, horizon=None, inclusive=False,
            resolve=lambda tid: (None, False), own_tid=7,
        )
        assert got.payload == b"v10"


class TestVersionGarbageCollection:
    def _page_with_chain(self, *times: int) -> DataPage:
        page = DataPage(1, table_id=1)
        for t in sorted(times):
            rec = RecordVersion.new(b"k", f"v{t}".encode(), tid=1)
            rec.stamp(Timestamp(t, 0))
            page.insert_version(rec)
        return page

    def test_no_snapshots_keeps_only_heads(self):
        page = self._page_with_chain(10, 20, 30)
        rebuilt, dropped = prune_conventional_page(
            page, None, lambda tid: (None, False)
        )
        assert dropped == 2
        assert [v.payload for v in rebuilt.chain(b"k")] == [b"v30"]

    def test_oldest_snapshot_pins_its_version(self):
        page = self._page_with_chain(10, 20, 30)
        rebuilt, dropped = prune_conventional_page(
            page, Timestamp(25, 0), lambda tid: (None, False)
        )
        # Snapshot at t=25 reads v20: keep v30 and v20, drop v10.
        assert dropped == 1
        assert [v.payload for v in rebuilt.chain(b"k")] == [b"v30", b"v20"]

    def test_uncommitted_versions_always_survive(self):
        page = self._page_with_chain(10)
        page.insert_version(RecordVersion.new(b"k", b"dirty", tid=99))
        rebuilt, dropped = prune_conventional_page(
            page, None, lambda tid: (None, False)
        )
        payloads = [v.payload for v in rebuilt.chain(b"k")]
        assert b"dirty" in payloads

    def test_dead_stub_chains_vanish_entirely(self):
        page = DataPage(1, table_id=1)
        rec = RecordVersion.new(b"k", b"x", tid=1)
        rec.stamp(Timestamp(10, 0))
        page.insert_version(rec)
        stub = RecordVersion.new(b"k", b"", tid=1, delete_stub=True)
        stub.stamp(Timestamp(20, 0))
        page.insert_version(stub)
        rebuilt, dropped = prune_conventional_page(
            page, None, lambda tid: (None, False)
        )
        assert rebuilt.keys() == []
        assert dropped == 2

    def test_engine_prunes_on_page_pressure(self, db, table):
        """A conventional snapshot table stays bounded under updates."""
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "x" * 100})
        for i in range(500):
            with db.transaction() as txn:
                table.update(txn, 1, {"v": f"{i}" + "y" * 100})
        assert table.btree.stats.prunes >= 1
        assert table.btree.stats.time_splits == 0
        # History was NOT kept: chain stays short.
        leaf = table.btree.search_leaf(table.codec.encode_key(1))
        assert len(list(leaf.chain(table.codec.encode_key(1)))) < 50

    def test_active_snapshot_protects_versions_from_pruning(self, db, table):
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "protected"})
        reader = db.begin(TxnMode.SNAPSHOT)
        for i in range(300):
            with db.transaction() as txn:
                table.update(txn, 1, {"v": f"{i}" + "z" * 120})
        # Despite pruning pressure, the reader still gets its version.
        assert table.read(reader, 1)["v"] == "protected"
        db.commit(reader)
