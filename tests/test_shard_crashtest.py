"""Shard-mode crash exploration: the 2PC protocol under the crash harness.

Two layers: a named-failpoint matrix that pins the protocol's decision
table (crash before the durable decision ⇒ abort everywhere, after ⇒
commit everywhere), and the crossing-indexed exploration the CI sweep
runs, on a small workload so the suite stays fast.
"""

from __future__ import annotations

import pytest

from repro.cluster import ShardRouter
from repro.core.integrity import verify_integrity
from repro.errors import ImmortalDBError, InDoubtError
from repro.faults.crashtest import (
    CrashTestConfig,
    ShadowOracle,
    build_cluster,
    enumerate_shard_crossings,
    explore_shards,
    main,
    replay_shard_point,
    run_shard_workload,
)
from repro.faults.failpoints import (
    FailpointRegistry,
    SimulatedCrash,
    installed,
)

SMALL = CrashTestConfig(
    seed=0, shards=2, transactions=15, keys=8, checkpoint_every=5,
    mark_every=3, buffer_pages=6, value_pad=300,
)

# The 2PC state machine's crash points, with the outcome presumed-abort
# recovery must drive every shard to when the crash lands there.
ABORT_POINTS = [
    "cluster.2pc.prepare",        # before any vote: nothing prepared
    "txn.prepare.begin",          # first participant mid-prepare
    "txn.prepare.force",          # vote appended but not durable
    "txn.prepare.done",           # one durable vote, coordinator undecided
    "cluster.2pc.prepared",       # all votes durable, no decision yet
    "cluster.2pc.decide",         # decision chosen but not forced
]
COMMIT_POINTS = [
    "cluster.2pc.decision_logged",  # the forced decision IS the commit
    "cluster.2pc.commit",           # mid fan-out: some branches committed
    "cluster.2pc.ack",              # all branches committed, pre-forget
    "cluster.2pc.forget",           # fully acknowledged
]


def _crash_cross_shard_update(router, table, point):
    registry = FailpointRegistry()
    registry.crash_on(point)
    with pytest.raises(SimulatedCrash):
        with installed(registry):
            txn = router.begin()
            table.update(txn, 10, {"v": "new"})
            table.update(txn, 60, {"v": "new"})
            router.commit(txn)


def _build_two_shard():
    router = ShardRouter.for_int_keys(2, key_space=100)
    table = router.create_table(
        "kv", [("k", "int"), ("v", "text")], key="k", immortal=True
    )
    with router.transaction() as txn:
        for k in (10, 60):
            table.insert(txn, {"k": k, "v": "base"})
    return router, table


class Test2PCCrashMatrix:
    @pytest.mark.parametrize("point", ABORT_POINTS)
    def test_crash_before_decision_aborts_everywhere(self, point):
        router, table = _build_two_shard()
        _crash_cross_shard_update(router, table, point)
        router.crash()
        router.recover()
        with router.transaction() as txn:
            state = {r["k"]: r["v"] for r in table.scan(txn)}
        assert state == {10: "base", 60: "base"}, point
        for shard in router.shards:
            verify_integrity(shard.db, strict=True)
        # Stability: a second crash/recover must not change the outcome.
        router.crash_and_recover()
        with router.transaction() as txn:
            assert {r["k"]: r["v"] for r in table.scan(txn)} == state

    @pytest.mark.parametrize("point", COMMIT_POINTS)
    def test_crash_after_decision_commits_everywhere(self, point):
        router, table = _build_two_shard()
        _crash_cross_shard_update(router, table, point)
        router.crash()
        router.recover()
        with router.transaction() as txn:
            state = {r["k"]: r["v"] for r in table.scan(txn)}
        assert state == {10: "new", 60: "new"}, point
        for shard in router.shards:
            verify_integrity(shard.db, strict=True)
        router.crash_and_recover()
        with router.transaction() as txn:
            assert {r["k"]: r["v"] for r in table.scan(txn)} == state

    def test_in_doubt_survivor_blocks_then_resolves(self):
        router, table = _build_two_shard()
        _crash_cross_shard_update(router, table, "cluster.2pc.prepared")
        router.crash()
        router.recover(resolve=False)
        assert router.in_doubt_gtids()
        probe = router.begin()
        with pytest.raises(InDoubtError):
            table.update(probe, 10, {"v": "probe"})
        router.abort(probe)
        assert router.resolve_in_doubt() >= 1
        assert not router.in_doubt_gtids()


class TestShardWorkload:
    def test_enumeration_is_deterministic_and_crosses_cluster_seams(self):
        first = enumerate_shard_crossings(SMALL)
        second = enumerate_shard_crossings(SMALL)
        assert first == second
        seams = {name.split(".")[0] for name in first}
        assert "cluster" in seams
        assert "txn" in seams
        assert "log" in seams
        assert any(n.startswith("cluster.2pc.") for n in first)
        assert any(n.startswith("cluster.router.fastpath") for n in first)

    def test_uncrashed_workload_matches_oracle(self):
        router, table = build_cluster(SMALL)
        oracle = ShadowOracle()
        run_shard_workload(router, table, SMALL, oracle)
        with router.transaction() as txn:
            got = {r["k"]: r["v"] for r in table.scan(txn)}
        assert got == oracle.committed
        for ts, snapshot in oracle.marks:
            assert {
                r["k"]: r["v"] for r in table.scan_as_of(ts)
            } == snapshot

    def test_cross_shard_mutations_actually_ran_2pc(self):
        router, table = build_cluster(SMALL)
        run_shard_workload(router, table, SMALL, ShadowOracle())
        assert router.twopc_commits > 0
        assert router.fastpath_commits > 0


class TestShardExploration:
    def test_sampled_exploration_is_clean(self):
        result = explore_shards(SMALL, max_points=12)
        assert result.total_crossings > 0
        assert len(result.explored) == 12
        assert result.ok, [f.problems for f in result.failures]

    def test_every_cluster_crossing_is_clean(self):
        names = enumerate_shard_crossings(SMALL)
        targets = [
            i for i, n in enumerate(names) if n.startswith("cluster.")
        ]
        assert any(
            names[i].startswith("cluster.2pc.") for i in targets
        ), "workload never crossed the 2PC seam"
        assert any(
            names[i].startswith("cluster.router.") for i in targets
        ), "workload never crossed the router seam"
        for crossing in targets:
            report = replay_shard_point(SMALL, crossing)
            assert report.ok, (
                f"crossing {crossing} ({report.name}): {report.problems}"
            )

    def test_unreached_crossing_reports_problem(self):
        report = replay_shard_point(SMALL, 10_000_000)
        assert not report.crashed
        assert not report.ok

    def test_cli_single_point_repro(self, capsys):
        rc = main([
            "--shards", "2", "--transactions", "15", "--keys", "8",
            "--crash-point", "5",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "OK" in out

    def test_repro_args_round_trip(self):
        cfg = CrashTestConfig(seed=3, shards=4, transactions=20)
        args = cfg.repro_args(17)
        assert "--shards 4" in args
        assert "--seed 3" in args
        assert "--crash-point 17" in args
