"""Tests for the benchmark infrastructure: cost model, harness, reporting."""

from __future__ import annotations

import json
import os

import pytest

from repro.bench.costmodel import COST_2005, CostModel, stats_delta
from repro.bench.harness import (
    apply_event,
    fresh_moving_objects_db,
    measure,
    run_moving_object_stream,
)
from repro.bench.reporting import format_table, save_results
from repro.workloads.moving_objects import MovingObjectEvent


class TestCostModel:
    def test_empty_delta_is_free(self):
        assert COST_2005.simulated_ms({}) == 0.0

    def test_log_force_dominates_small_transactions(self):
        cost = COST_2005.simulated_ms({"log_forces": 1, "commits": 1})
        assert cost == pytest.approx(
            COST_2005.log_force_ms + COST_2005.commit_cpu_ms
        )

    def test_single_record_txn_matches_paper_magnitudes(self):
        """The calibration targets of Section 5.1."""
        conventional = COST_2005.simulated_ms({
            "log_forces": 1, "commits": 1, "log_bytes": 110,
            "version_ops": 1,
        })
        immortal_extra = COST_2005.simulated_ms({
            "ptt_inserts": 1, "stamps": 1, "vtt_hits": 1, "log_bytes": 60,
        })
        assert 8.5 < conventional < 10.5        # paper: 9.6 ms
        assert 0.7 < immortal_extra < 1.5       # paper: +1.1 ms

    def test_random_vs_sequential_io(self):
        random_cost = COST_2005.simulated_ms({"disk_reads": 1})
        seq_cost = COST_2005.simulated_ms(
            {"disk_reads": 1, "disk_sequential_reads": 1}
        )
        assert random_cost > 5 * seq_cost

    def test_image_bytes_excluded_from_log_bandwidth(self):
        with_images = COST_2005.simulated_ms({
            "log_bytes": 10_000, "log_image_bytes": 10_000,
            "log_image_records": 1,
        })
        without = COST_2005.simulated_ms({"log_bytes": 10_000})
        assert with_images < without

    def test_model_is_configurable(self):
        expensive = CostModel(log_force_ms=100.0)
        assert expensive.simulated_ms({"log_forces": 1}) == 100.0

    def test_stats_delta(self):
        before = {"a": 10, "b": 5}
        after = {"a": 15, "b": 5, "c": 3}
        assert stats_delta(before, after) == {"a": 5, "b": 0, "c": 3}


class TestHarness:
    def test_apply_event_advances_clock(self):
        db, table = fresh_moving_objects_db()
        event = MovingObjectEvent(10_000.0, "insert", 1, 5, 6)
        apply_event(db, table, event)
        assert db.clock.tick * 20.0 >= 10_000.0
        with db.transaction() as txn:
            assert table.read(txn, 1) == {
                "Oid": 1, "LocationX": 5, "LocationY": 6,
            }

    def test_run_stream_marks(self):
        db, table = fresh_moving_objects_db()
        marks = run_moving_object_stream(
            db, table, objects=20, transactions=100, mark_every=25
        )
        assert len(marks) == 5  # 4 interior marks + the final one
        assert marks == sorted(marks)

    def test_measure_returns_deltas(self):
        db, table = fresh_moving_objects_db()

        def body():
            with db.transaction() as txn:
                table.insert(txn, {"Oid": 1, "LocationX": 0, "LocationY": 0})

        m = measure(db, body)
        assert m.delta["commits"] == 1
        assert m.simulated_ms > 0
        assert m.wall_seconds >= 0

    def test_conventional_engine_variant(self):
        db, table = fresh_moving_objects_db(immortal=False)
        assert not table.immortal

    def test_eager_engine_variant(self):
        from repro.timestamp.eager import EagerTimestampManager

        db, _ = fresh_moving_objects_db(timestamping="eager")
        assert isinstance(db.tsmgr, EagerTimestampManager)


class TestReporting:
    def test_format_table_aligns(self):
        text = format_table(
            "demo", ["name", "value"],
            [["short", 1.5], ["a-much-longer-name", 123456]],
            note="hello",
        )
        assert "=== demo ===" in text
        assert "note: hello" in text
        lines = [l for l in text.splitlines() if "|" in l]
        assert len({len(l) for l in lines}) == 1  # all rows equal width

    def test_format_table_number_styles(self):
        text = format_table("n", ["x"], [[0.1234], [12.5], [1234567]])
        assert "0.1234" in text
        assert "12.50" in text
        assert "1,234,567" in text

    def test_save_results_writes_json(self, tmp_path, monkeypatch):
        monkeypatch.setenv("IMMORTAL_RESULTS_DIR", str(tmp_path))
        path = save_results("unit_test", {"rows": [1, 2, 3]})
        with open(path) as fh:
            assert json.load(fh) == {"rows": [1, 2, 3]}
        assert os.path.dirname(path) == str(tmp_path)
