"""Media recovery & self-healing tests.

Covers: byte-identical single-page restore across seeds and corruption
modes, read-triggered auto-repair through the buffer fault handler, the
scrubber's detection matrix (checksum, decode, dropped-write staleness,
benign unborn pages), quarantine + graceful degradation with auto-repair
off, the transient-IO retry policy and its stats, crash-during-restore
idempotence, exception context fields, the structured IntegrityReport,
and a smoke pass of the crashtest harness's ``--media-faults`` mode.
"""

from __future__ import annotations

import random

import pytest

from repro import ColumnType, ImmortalDB
from repro.core.integrity import integrity_report, verify_integrity
from repro.errors import (
    ChecksumError,
    InjectedIOError,
    PageQuarantinedError,
)
from repro.faults.crashtest import CrashTestConfig, replay_media_point
from repro.faults.failpoints import FailpointRegistry, SimulatedCrash, installed
from repro.faults.models import FaultyDisk
from repro.repair.quarantine import Degraded
from repro.repair.scrub import Scrubber
from repro.storage.disk import InMemoryDisk, RetryPolicy
from repro.storage.page import DataPage, decode_page

COLS = [("k", ColumnType.INT), ("v", ColumnType.TEXT)]


def build_media_db(
    seed: int = 0,
    *,
    transactions: int = 120,
    keys: int = 24,
    buffer_pages: int = 16,
    value_pad: int = 400,
):
    """A quiesced self-healing database after a seeded mixed workload.

    Returns ``(db, table, disk, expected, marks)`` where ``expected`` is
    the key -> value dict of the final committed state and ``marks`` is a
    list of ``(ts, snapshot)`` as-of marks taken at flush checkpoints.
    """
    disk = FaultyDisk(InMemoryDisk(), seed=seed)
    db = ImmortalDB(
        disk=disk, buffer_pages=buffer_pages, page_checksums=True,
        media_recovery=True, io_retries=3,
    )
    table = db.create_table("t", COLS, key="k", immortal=True)
    rng = random.Random(seed)
    expected: dict[int, str] = {}
    marks: list[tuple] = []
    for i in range(transactions):
        db.advance_time(rng.uniform(5.0, 120.0))
        key = rng.randrange(keys)
        delete = key in expected and rng.random() < 0.15
        with db.transaction() as txn:
            if delete:
                table.delete(txn, key)
                del expected[key]
            elif key in expected:
                value = f"s{seed}i{i}" + "x" * rng.randrange(value_pad)
                table.update(txn, key, {"v": value})
                expected[key] = value
            else:
                value = f"s{seed}i{i}" + "x" * rng.randrange(value_pad)
                table.insert(txn, {"k": key, "v": value})
                expected[key] = value
        if i % 20 == 19:
            db.checkpoint(flush=True)
            marks.append((db.now(), dict(expected)))
    db.flush_commits()
    # Settle to a truly clean buffer: each flush checkpoint's PTT garbage
    # collection can re-dirty PTT pages, so checkpoint until none remain.
    for _ in range(4):
        db.checkpoint(flush=True)
        if not db.buffer.dirty_page_table():
            break
    assert not db.buffer.dirty_page_table()
    return db, table, disk, expected, marks


def data_page_ids(disk: FaultyDisk, *, history: bool | None = None) -> list[int]:
    """Page ids whose on-disk image decodes as a DataPage."""
    pids = []
    for pid in range(disk.page_count):
        raw = disk.inner._read(pid)
        if not any(raw):
            continue
        try:
            page = decode_page(raw)
        except Exception:
            continue
        if isinstance(page, DataPage):
            if history is None or page.is_history == history:
                pids.append(pid)
    return pids


class TestByteIdenticalRestore:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_every_page_restores_byte_identically(self, seed):
        db, table, disk, expected, _ = build_media_db(seed)
        scrubber = Scrubber(db)
        modes = ("bitrot", "garbage", "zero")
        for pid in range(disk.page_count):
            good = disk.inner._read(pid)
            disk.corrupt_stored(pid, mode=modes[pid % len(modes)])
            scrubber.full_pass()
            assert disk.inner._read(pid) == good, \
                f"seed {seed}: page {pid} not byte-identical after repair"
        assert scrubber.full_pass() == []
        assert verify_integrity(db) == []
        with db.transaction() as txn:
            assert {r["k"]: r["v"] for r in table.scan(txn)} == expected

    def test_restore_survives_archive_trimming(self):
        # The flush checkpoints inside build_media_db trim the archive; the
        # sweep above already restored through trimmed coverage, so here we
        # just pin the invariant that trimming actually happened.
        db, _, _, _, _ = build_media_db(0)
        assert db.repair.archive.records_trimmed > 0
        assert db.repair.stats.backup_refreshes > 0


class TestReadTriggeredRepair:
    def test_fault_on_read_repairs_transparently(self):
        db, table, disk, expected, _ = build_media_db(1)
        key = next(iter(expected))
        leaf = table.btree.search_leaf(table.codec.encode_key(key))
        pid = leaf.page_id
        db.buffer.discard_all()
        disk.corrupt_stored(pid, mode="garbage")
        with db.transaction() as txn:
            assert table.read(txn, key)["v"] == expected[key]
        assert db.repair.stats.page_faults >= 1
        assert db.repair.stats.pages_repaired >= 1
        assert len(db.repair.quarantine) == 0

    def test_repaired_page_lands_on_disk(self):
        db, table, disk, expected, _ = build_media_db(1)
        key = next(iter(expected))
        pid = table.btree.search_leaf(table.codec.encode_key(key)).page_id
        good = disk.inner._read(pid)
        db.buffer.discard_all()
        disk.corrupt_stored(pid, mode="bitrot")
        with db.transaction() as txn:
            table.read(txn, key)
        db.buffer.flush_all()
        assert disk.inner._read(pid) == good


class TestScrubber:
    def test_healthy_database_scrubs_clean(self):
        db, _, _, _, _ = build_media_db(0)
        scrubber = Scrubber(db)
        assert scrubber.full_pass(deep=True) == []
        assert scrubber.stats.pages_scanned > 0

    def test_checksum_damage_found_and_dispatched(self):
        db, _, disk, _, _ = build_media_db(0)
        pid = data_page_ids(disk)[0]
        disk.corrupt_stored(pid, mode="bitrot")
        scrubber = Scrubber(db)
        findings = scrubber.full_pass()
        assert any(
            f.page_id == pid and f.kind in ("checksum", "decode")
            for f in findings
        )
        assert scrubber.stats.repairs_dispatched >= 1
        assert scrubber.full_pass() == []

    def test_dropped_write_caught_by_staleness_probe(self):
        db, table, disk, expected, _ = build_media_db(0)
        key = next(iter(expected))
        pid = table.btree.search_leaf(table.codec.encode_key(key)).page_id
        old = disk.inner._read(pid)
        for i in range(3):
            with db.transaction() as txn:
                table.update(txn, key, {"v": f"fresh{i}" + "y" * 200})
        db.flush_commits()
        db.buffer.flush_all()
        new = disk.inner._read(pid)
        assert new != old
        # Silently lose the write: put the old, checksum-valid image back.
        disk.inner._write(pid, old)
        db.buffer.discard_all()
        scrubber = Scrubber(db)
        findings = scrubber.full_pass()
        assert any(
            f.page_id == pid and f.kind == "stale" for f in findings
        )
        assert disk.inner._read(pid) == new

    def test_zeroed_page_detected_as_lost_sector(self):
        db, _, disk, _, _ = build_media_db(0)
        pid = data_page_ids(disk)[0]
        good = disk.inner._read(pid)
        disk.corrupt_stored(pid, mode="zero")
        scrubber = Scrubber(db)
        findings = scrubber.full_pass()
        assert any(f.page_id == pid for f in findings)
        assert disk.inner._read(pid) == good

    def test_step_budget_is_respected(self):
        db, _, _, _, _ = build_media_db(0)
        scrubber = Scrubber(db, pages_per_step=3)
        scrubber.step()
        scanned = (
            scrubber.stats.pages_scanned + scrubber.stats.pages_skipped_dirty
        )
        assert scanned == 3


class TestQuarantineAndDegradation:
    def test_current_read_degrades_without_auto_repair(self):
        db, table, disk, expected, _ = build_media_db(2)
        db.repair.auto_repair = False
        key = next(iter(expected))
        pid = table.btree.search_leaf(table.codec.encode_key(key)).page_id
        db.buffer.discard_all()
        disk.corrupt_stored(pid, mode="garbage")
        with db.transaction() as txn:
            result = table.read(txn, key)
        assert isinstance(result, Degraded)
        assert not result           # falsy by design
        assert result.page_id == pid
        assert pid in db.repair.quarantine
        assert db.repair.stats.degraded_reads >= 1

    def test_explicit_repair_releases_quarantine(self):
        db, table, disk, expected, _ = build_media_db(2)
        db.repair.auto_repair = False
        key = next(iter(expected))
        pid = table.btree.search_leaf(table.codec.encode_key(key)).page_id
        db.buffer.discard_all()
        disk.corrupt_stored(pid, mode="garbage")
        with db.transaction() as txn:
            assert isinstance(table.read(txn, key), Degraded)
        assert db.repair.repair_page(pid)
        assert pid not in db.repair.quarantine
        with db.transaction() as txn:
            assert table.read(txn, key)["v"] == expected[key]

    def test_asof_reads_served_from_quarantined_history_page(self):
        db, table, disk, _, marks = build_media_db(
            2, transactions=200, keys=12, value_pad=600,
        )
        db.repair.auto_repair = False
        # Find a history page and a mark inside its time range: reads at
        # that horizon route to the page, and its stale quarantine image
        # (history pages are immutable) must answer them exactly.
        chosen = None
        for pid in data_page_ids(disk, history=True):
            page = decode_page(disk.inner._read(pid))
            for ts, snapshot in marks:
                if page.split_ts <= ts < page.end_ts:
                    chosen = (pid, ts, snapshot)
                    break
            if chosen:
                break
        assert chosen is not None, "workload produced no usable history page"
        pid, ts, snapshot = chosen
        db.buffer.discard_all()
        disk.corrupt_stored(pid, mode="garbage")
        degraded = 0
        for key, value in snapshot.items():
            result = table.read_as_of(ts, key)
            if isinstance(result, Degraded):
                degraded += 1       # horizon the stale image cannot vouch for
            else:
                assert result is not None and result["v"] == value
        assert pid in db.repair.quarantine
        assert degraded == 0


class TestRetryPolicy:
    def test_transient_read_errors_absorbed_and_counted(self):
        db, table, disk, expected, _ = build_media_db(3)
        key = next(iter(expected))
        db.buffer.discard_all()
        before = db.stats()
        disk.arm("read_error", 2)
        with db.transaction() as txn:
            assert table.read(txn, key)["v"] == expected[key]
        delta = db.stats()
        assert delta["io_read_retries"] - before["io_read_retries"] == 2
        assert delta["io_backoff_steps"] > before["io_backoff_steps"]

    def test_transient_write_errors_absorbed_and_counted(self):
        db, table, disk, _, _ = build_media_db(3)
        with db.transaction() as txn:
            table.insert(txn, {"k": 10_001, "v": "fresh"})
        disk.arm("write_error")
        db.flush_commits()
        db.buffer.flush_all()
        assert db.stats()["io_write_retries"] >= 1

    def test_exhausted_retries_surface_the_error(self):
        db, table, disk, expected, _ = build_media_db(3)
        key = next(iter(expected))
        db.buffer.discard_all()
        disk.arm("read_error", 10)   # more than max_attempts
        with pytest.raises(InjectedIOError):
            with db.transaction() as txn:
                table.read(txn, key)

    def test_backoff_is_deterministic(self):
        a = RetryPolicy(4, seed=7)
        b = RetryPolicy(4, seed=7)
        steps = [(a.backoff_steps(i), b.backoff_steps(i)) for i in (1, 2, 3)]
        assert all(x == y for x, y in steps)
        assert all(x > 0 for x, _ in steps)


class TestCrashDuringRestore:
    def test_crash_before_restore_write_is_idempotent(self):
        db, table, disk, expected, _ = build_media_db(4)
        pid = data_page_ids(disk)[0]
        disk.corrupt_stored(pid, mode="garbage")
        registry = FailpointRegistry()
        registry.crash_on("repair.restore.write")
        scrubber = Scrubber(db)
        with pytest.raises(SimulatedCrash):
            with installed(registry):
                scrubber.full_pass()
        db.crash()
        db.recover()
        table = db.table("t")
        # The page is still damaged on disk (the crash hit before the
        # write); a fresh scrub pass must finish the job cleanly.
        Scrubber(db).full_pass()
        assert Scrubber(db).full_pass() == []
        assert verify_integrity(db) == []
        with db.transaction() as txn:
            assert {r["k"]: r["v"] for r in table.scan(txn)} == expected


class TestExceptionContext:
    def test_checksum_error_carries_page_context(self):
        db, _, disk, _, _ = build_media_db(0)
        db.repair.auto_repair = False
        pid = data_page_ids(disk)[0]
        disk.corrupt_stored(pid, mode="bitrot")
        with pytest.raises(ChecksumError) as err:
            disk.read_page(pid)
        assert err.value.page_id == pid
        assert err.value.stored_crc != err.value.computed_crc

    def test_injected_io_error_carries_op_and_page(self):
        db, _, disk, _, _ = build_media_db(0)
        disk.arm("read_error", 10)
        with pytest.raises(InjectedIOError) as err:
            disk.read_page(1)
        assert err.value.page_id == 1
        assert err.value.op == "read"

    def test_quarantine_error_carries_page_id(self):
        db, table, disk, expected, _ = build_media_db(0)
        db.repair.auto_repair = False
        key = next(iter(expected))
        pid = table.btree.search_leaf(table.codec.encode_key(key)).page_id
        db.buffer.discard_all()
        disk.corrupt_stored(pid, mode="garbage")
        with pytest.raises(PageQuarantinedError) as err:
            db.buffer.get_page(pid)
        assert err.value.page_id == pid


class TestIntegrityReport:
    def test_structured_report_on_healthy_db(self):
        db, _, _, _, _ = build_media_db(0)
        report = integrity_report(db)
        assert report.ok
        assert report.findings == []
        assert report.messages() == []
        assert report.pages() == []

    def test_report_findings_carry_location(self):
        db, _, disk, _, _ = build_media_db(0)
        pid = data_page_ids(disk)[0]
        disk.corrupt_stored(pid, mode="bitrot")
        db.repair.auto_repair = False
        findings = Scrubber(db).full_pass()
        assert findings, "scrubber should have found the damage"
        finding = next(f for f in findings if f.page_id == pid)
        assert finding.kind in ("checksum", "decode")
        assert str(pid) in finding.detail


class TestMediaCrashtestSmoke:
    @pytest.mark.parametrize("crossing", [5, 250, 700])
    def test_media_fault_points_pass(self, crossing):
        config = CrashTestConfig(media_faults=True)
        report = replay_media_point(config, crossing)
        assert report.ok, report.problems
