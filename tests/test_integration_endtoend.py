"""End-to-end integration scenarios across the whole engine.

These exercise realistic multi-table, multi-mode lifecycles: mixed
immortal/conventional tables, interleaved snapshot and serializable
transactions, checkpoints mid-stream, crashes at adversarial points, and
both timestamping policies.
"""

from __future__ import annotations

import random

import pytest

from repro import ColumnType, ImmortalDB, TxnMode
from repro.errors import LockConflictError, WriteConflictError


COLS = [("k", ColumnType.INT), ("v", ColumnType.TEXT)]


class TestMultiTableLifecycle:
    def test_mixed_tables_share_one_engine(self):
        db = ImmortalDB(buffer_pages=96)
        ledger = db.create_table("ledger", COLS, key="k", immortal=True)
        cache = db.create_table("cache", COLS, key="k", snapshot=True)
        plain = db.create_table("plain", COLS, key="k")

        marks = []
        for round_no in range(30):
            db.advance_time(500)
            with db.transaction() as txn:
                for table in (ledger, cache, plain):
                    if round_no == 0:
                        table.insert(txn, {"k": 1, "v": "r0"})
                    else:
                        table.update(txn, 1, {"v": f"r{round_no}"})
            marks.append(db.now())

        # Only the immortal table answers deep history.
        assert ledger.read_as_of(marks[4], 1)["v"] == "r4"
        # All three agree on the present.
        with db.transaction() as txn:
            assert (
                ledger.read(txn, 1)["v"]
                == cache.read(txn, 1)["v"]
                == plain.read(txn, 1)["v"]
                == "r29"
            )
        # Only the immortal table's commits fed the PTT.
        assert db.tsmgr.stats.ptt_inserts == 30

    def test_cross_table_transaction_is_atomic(self):
        db = ImmortalDB(buffer_pages=96)
        a = db.create_table("a", COLS, key="k", immortal=True)
        b = db.create_table("b", COLS, key="k", immortal=True)
        with db.transaction() as txn:
            a.insert(txn, {"k": 1, "v": "a1"})
            b.insert(txn, {"k": 1, "v": "b1"})
        txn = db.begin()
        a.update(txn, 1, {"v": "a2"})
        b.update(txn, 1, {"v": "b2"})
        db.abort(txn)
        with db.transaction() as reader:
            assert a.read(reader, 1)["v"] == "a1"
            assert b.read(reader, 1)["v"] == "b1"
        # Both versions share one commit timestamp when committed together.
        txn = db.begin()
        a.update(txn, 1, {"v": "a3"})
        b.update(txn, 1, {"v": "b3"})
        db.commit(txn)
        assert a.history(1)[-1][0] == b.history(1)[-1][0]

    def test_checkpoints_interleaved_with_load(self):
        db = ImmortalDB(buffer_pages=96)
        table = db.create_table("t", COLS, key="k", immortal=True)
        marks = []
        for i in range(120):
            db.advance_time(200)
            with db.transaction() as txn:
                if i < 20:
                    table.insert(txn, {"k": i, "v": f"i{i}"})
                else:
                    table.update(txn, i % 20, {"v": f"u{i}"})
            if i % 25 == 24:
                db.checkpoint(flush=(i % 50 == 49))
            marks.append(db.now())
        db.crash_and_recover()
        table = db.table("t")
        assert table.read_as_of(marks[30], 10)["v"] in ("i10", "u30")
        with db.transaction() as txn:
            assert len(table.scan(txn)) == 20


class TestInterleavedIsolation:
    def test_snapshot_serializable_mix(self):
        db = ImmortalDB(buffer_pages=96)
        table = db.create_table("t", COLS, key="k", snapshot=True)
        with db.transaction() as txn:
            for k in range(10):
                table.insert(txn, {"k": k, "v": "v0"})

        snap1 = db.begin(TxnMode.SNAPSHOT)
        serial = db.begin()                       # serializable writer
        table.update(serial, 3, {"v": "serial"})
        snap2 = db.begin(TxnMode.SNAPSHOT)        # begins mid-write

        # snap1 and snap2 both predate serial's commit.
        assert table.read(snap1, 3)["v"] == "v0"
        assert table.read(snap2, 3)["v"] == "v0"
        db.commit(serial)
        # Still v0 for both: repeatable reads.
        assert table.read(snap1, 3)["v"] == "v0"
        assert table.read(snap2, 3)["v"] == "v0"
        db.commit(snap1)
        db.commit(snap2)
        snap3 = db.begin(TxnMode.SNAPSHOT)
        assert table.read(snap3, 3)["v"] == "serial"
        db.commit(snap3)

    def test_write_skew_is_possible_under_si(self):
        """Classic SI anomaly — present by design, documented behaviour."""
        db = ImmortalDB(buffer_pages=96)
        table = db.create_table("t", COLS, key="k", snapshot=True)
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "on"})
            table.insert(txn, {"k": 2, "v": "on"})
        t1 = db.begin(TxnMode.SNAPSHOT)
        t2 = db.begin(TxnMode.SNAPSHOT)
        # Each reads the other's row, then writes its own: no W-W overlap.
        assert table.read(t1, 2)["v"] == "on"
        assert table.read(t2, 1)["v"] == "on"
        table.update(t1, 1, {"v": "off"})
        table.update(t2, 2, {"v": "off"})
        db.commit(t1)
        db.commit(t2)   # SI permits this; serializable would not
        with db.transaction() as txn:
            assert table.read(txn, 1)["v"] == "off"
            assert table.read(txn, 2)["v"] == "off"

    def test_serializable_prevents_the_same_skew(self):
        db = ImmortalDB(buffer_pages=96)
        table = db.create_table("t", COLS, key="k", immortal=True)
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "on"})
            table.insert(txn, {"k": 2, "v": "on"})
        t1 = db.begin()
        t2 = db.begin()
        table.read(t1, 2)
        table.read(t2, 1)
        with pytest.raises(LockConflictError):
            table.update(t1, 1, {"v": "off"})   # t2 holds S on k=1
        db.abort(t1)
        db.abort(t2)


class TestEagerModeEndToEnd:
    def test_eager_engine_full_lifecycle(self):
        db = ImmortalDB(buffer_pages=96, timestamping="eager")
        table = db.create_table("t", COLS, key="k", immortal=True)
        marks = []
        for i in range(40):
            db.advance_time(300)
            with db.transaction() as txn:
                if i < 10:
                    table.insert(txn, {"k": i, "v": f"i{i}"})
                else:
                    table.update(txn, i % 10, {"v": f"u{i}"})
            marks.append(db.now())
        # Everything is stamped already — no lazy work pending.
        for leaf in table.btree.leaves():
            assert not leaf.has_unstamped_records()
        assert table.read_as_of(marks[15], 5)["v"] == "u15"

    def test_eager_crash_recovery_replays_stamps(self):
        db = ImmortalDB(buffer_pages=96, timestamping="eager")
        table = db.create_table("t", COLS, key="k", immortal=True)
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "a"})
        mark = db.now()
        db.advance_time(500)
        with db.transaction() as txn:
            table.update(txn, 1, {"v": "b"})
        committed_ts = txn.commit_ts
        db.crash_and_recover()
        table = db.table("t")
        # StampOp redo restamped the redone versions with original times.
        assert table.history(1)[-1][0] == committed_ts
        assert table.read_as_of(mark, 1)["v"] == "a"
        with db.transaction() as txn:
            assert table.read(txn, 1)["v"] == "b"


class TestRandomizedCrashPoints:
    def test_crash_after_every_tenth_transaction(self):
        """Crash repeatedly through a workload; committed work never regresses."""
        rng = random.Random(12)
        db = ImmortalDB(buffer_pages=48)
        table = db.create_table("t", COLS, key="k", immortal=True)
        model: dict[int, str] = {}
        marks: list[tuple] = []
        for i in range(150):
            db.advance_time(150)
            key = rng.randrange(12)
            with db.transaction() as txn:
                if key not in model:
                    table.insert(txn, {"k": key, "v": f"v{i}"})
                else:
                    table.update(txn, key, {"v": f"v{i}"})
            model[key] = f"v{i}"
            marks.append((db.now(), dict(model)))
            if i % 10 == 9:
                if rng.random() < 0.5:
                    db.buffer.flush_all()
                if rng.random() < 0.3:
                    db.checkpoint(flush=rng.random() < 0.5)
                db.crash_and_recover()
                table = db.table("t")
        for mark, snapshot_model in marks:
            got = {
                row["k"]: row["v"] for row in table.scan_as_of(mark)
            }
            assert got == snapshot_model

    def test_crash_with_open_transactions_everywhere(self):
        db = ImmortalDB(buffer_pages=48)
        table = db.create_table("t", COLS, key="k", immortal=True)
        with db.transaction() as txn:
            for k in range(6):
                table.insert(txn, {"k": k, "v": "base"})
        # Three losers in different states: unlogged, logged, flushed.
        loser_a = db.begin()
        table.update(loser_a, 0, {"v": "lost-a"})
        loser_b = db.begin()
        table.update(loser_b, 1, {"v": "lost-b"})
        db.log.force()
        loser_c = db.begin()
        table.update(loser_c, 2, {"v": "lost-c"})
        db.buffer.flush_all()
        db.crash_and_recover()
        table = db.table("t")
        with db.transaction() as txn:
            for k in range(6):
                assert table.read(txn, k)["v"] == "base", k
