"""Codec tests for every log record type."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import LogFormatError
from repro.wal.records import (
    AbortEnd,
    AbortTxn,
    BeginTxn,
    CheckpointBegin,
    CheckpointEnd,
    CommitTxn,
    CompensationRecord,
    InPlaceUpdate,
    LogRecord,
    MultiPageImage,
    PTTDelete,
    SMOReason,
    StampOp,
    VersionOp,
    VersionOpKind,
)


def roundtrip(record: LogRecord) -> LogRecord:
    return LogRecord.decode(record.to_bytes())


class TestSimpleRecords:
    def test_begin(self):
        assert roundtrip(BeginTxn(tid=7, prev_lsn=0)) == BeginTxn(tid=7)

    def test_commit_carries_timestamp_and_ptt_flag(self):
        rec = CommitTxn(tid=3, prev_lsn=10, ttime=999, sn=4, ptt=True)
        back = roundtrip(rec)
        assert (back.ttime, back.sn, back.ptt) == (999, 4, True)

    def test_commit_without_ptt(self):
        assert not roundtrip(CommitTxn(tid=1, ttime=5, sn=0, ptt=False)).ptt

    def test_abort_pair(self):
        assert roundtrip(AbortTxn(tid=2, prev_lsn=5)).prev_lsn == 5
        assert roundtrip(AbortEnd(tid=2, prev_lsn=9)).tid == 2

    def test_ptt_delete(self):
        assert roundtrip(PTTDelete(subject_tid=88)).subject_tid == 88
        assert PTTDelete.REDO_ONLY


class TestVersionOp:
    @pytest.mark.parametrize("kind", list(VersionOpKind))
    def test_roundtrip_each_kind(self, kind):
        rec = VersionOp(
            tid=5, prev_lsn=100, kind=kind,
            table_id=2, page_id=9, key=b"\x00\x01", payload=b"data",
        )
        back = roundtrip(rec)
        assert back == rec

    def test_empty_payload_ok(self):
        rec = VersionOp(tid=1, kind=VersionOpKind.DELETE, key=b"k", payload=b"")
        assert roundtrip(rec).payload == b""

    @given(
        key=st.binary(max_size=64),
        payload=st.binary(max_size=200),
        tid=st.integers(1, 2**40),
        page=st.integers(0, 2**31),
    )
    def test_roundtrip_property(self, key, payload, tid, page):
        rec = VersionOp(
            tid=tid, kind=VersionOpKind.UPDATE,
            table_id=1, page_id=page, key=key, payload=payload,
        )
        assert roundtrip(rec) == rec


class TestMultiPageImage:
    def test_roundtrip(self):
        rec = MultiPageImage(
            reason=SMOReason.TIME_SPLIT,
            images=[(3, b"abc"), (4, b"defgh")],
        )
        back = roundtrip(rec)
        assert back.reason == SMOReason.TIME_SPLIT
        assert back.images == [(3, b"abc"), (4, b"defgh")]

    def test_is_redo_only(self):
        assert MultiPageImage.REDO_ONLY

    def test_empty_images_ok(self):
        assert roundtrip(MultiPageImage()).images == []


class TestCompensation:
    def test_roundtrip_with_undo_next(self):
        rec = CompensationRecord(
            tid=6, prev_lsn=3, undo_next_lsn=77, images=[(1, b"x" * 50)],
        )
        back = roundtrip(rec)
        assert back.undo_next_lsn == 77
        assert back.images == [(1, b"x" * 50)]


class TestCheckpointEnd:
    def test_roundtrip_tables(self):
        rec = CheckpointEnd(
            begin_lsn=40,
            att={5: (100, 0), 9: (200, 1)},
            dpt={2: 33, 7: 44},
        )
        back = roundtrip(rec)
        assert back.begin_lsn == 40
        assert back.att == {5: (100, 0), 9: (200, 1)}
        assert back.dpt == {2: 33, 7: 44}

    def test_empty_tables(self):
        back = roundtrip(CheckpointEnd(begin_lsn=1))
        assert back.att == {} and back.dpt == {}

    def test_checkpoint_begin(self):
        assert isinstance(roundtrip(CheckpointBegin()), CheckpointBegin)


class TestStampAndInPlace:
    def test_stamp_op_roundtrip(self):
        rec = StampOp(tid=4, table_id=1, page_id=2, key=b"k", ttime=10, sn=3)
        back = roundtrip(rec)
        assert (back.ttime, back.sn, back.key) == (10, 3, b"k")

    def test_in_place_roundtrip(self):
        rec = InPlaceUpdate(
            tid=4, table_id=1, page_id=2, key=b"k",
            before=b"old", after=b"newer",
        )
        back = roundtrip(rec)
        assert (back.before, back.after) == (b"old", b"newer")


class TestDecodeErrors:
    def test_unknown_tag(self):
        with pytest.raises(LogFormatError):
            LogRecord.decode(b"\xf0" + b"\x00" * 16)

    def test_truncated_header(self):
        with pytest.raises(LogFormatError):
            LogRecord.decode(b"\x01\x00")
