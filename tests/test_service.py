"""Service layer: protocol, admission, sessions, faults, and the server.

The robustness contract under test: every failure a network can produce —
overload, torn frames, dropped responses, duplicate deliveries, dead
clients, slow clients, drains — must surface as a *typed* outcome, never
a stuck lock, a double execution, or a lost acked commit.
"""

from __future__ import annotations

import time

import pytest

from repro.core.engine import ImmortalDB
from repro.core.rowcodec import ColumnType
from repro.errors import (
    ConnectionLostError,
    ServiceOverloadedError,
    SessionStateError,
    TornFrameError,
)
from repro.faults.models import NETWORK_FAULT_KINDS, FaultyWire
from repro.service import protocol
from repro.service.admission import AdmissionController
from repro.service.client import ServiceClient
from repro.service.core import ServiceCore, classify_statement
from repro.service.server import ThreadedService
from repro.service.transport import LoopbackConnection


def _make_db() -> ImmortalDB:
    db = ImmortalDB(buffer_pages=64, group_commit_window=4)
    db.create_table(
        "t", [("k", ColumnType.INT), ("v", ColumnType.TEXT)],
        key="k", immortal=True,
    )
    return db


def _core(db=None, **kwargs) -> ServiceCore:
    return ServiceCore(db or _make_db(), **kwargs)


def _rows(response: dict) -> list:
    assert response["status"] == protocol.STATUS_OK, response
    return response.get("rows") or []


def _value(conn, k: int):
    rows = _rows(conn.execute(f"SELECT v FROM t WHERE k = {k}"))
    return rows[0]["v"] if rows else None


def _wait_until(predicate, timeout_s: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


# ---------------------------------------------------------------------------
# wire protocol
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_frame_round_trip(self):
        message = {"id": "c1:1", "op": "sql", "sql": "SELECT 1"}
        decoder = protocol.FrameDecoder()
        payloads = decoder.feed(protocol.encode_message(message))
        assert [protocol.decode_message(p) for p in payloads] == [message]

    def test_incremental_byte_at_a_time(self):
        frame = protocol.encode_message({"op": "ping"})
        decoder = protocol.FrameDecoder()
        collected = []
        for i in range(len(frame)):
            collected.extend(decoder.feed(frame[i:i + 1]))
        assert len(collected) == 1
        assert decoder.pending_bytes == 0

    def test_corrupt_byte_is_a_typed_tear(self):
        frame = bytearray(protocol.encode_message({"op": "ping"}))
        frame[-1] ^= 0x40
        with pytest.raises(TornFrameError):
            protocol.FrameDecoder().feed(bytes(frame))

    def test_absurd_length_is_a_typed_tear(self):
        bad = (protocol.MAX_FRAME + 1).to_bytes(4, "big") + b"\0" * 8
        with pytest.raises(TornFrameError):
            protocol.FrameDecoder().feed(bad)

    def test_classify_statement(self):
        assert classify_statement("  select * from t") == "read"
        assert classify_statement("UPDATE t SET v='x' WHERE k=1") == "write"


# ---------------------------------------------------------------------------
# admission control
# ---------------------------------------------------------------------------


class TestAdmission:
    def test_reads_shed_before_writes_deterministically(self):
        ctl = AdmissionController(max_inflight=4, read_shed_fraction=0.75)
        for _ in range(3):
            ctl.try_admit("write")
        # Read high-water is 3 of 4: the next read sheds, a write fits.
        with pytest.raises(ServiceOverloadedError) as excinfo:
            ctl.try_admit("read")
        assert excinfo.value.shed_kind == "read"
        assert excinfo.value.retry_after_ms > 0
        ctl.try_admit("write")
        with pytest.raises(ServiceOverloadedError):
            ctl.try_admit("write")
        ctl.release()
        ctl.try_admit("write")   # a freed slot re-admits
        assert ctl.stats.rejected_reads == 1
        assert ctl.stats.rejected_writes == 1
        assert ctl.stats.peak_inflight == 4

    def test_retry_hint_scales_with_saturation(self):
        ctl = AdmissionController(max_inflight=2, retry_after_ms=50.0)
        empty_hint = ctl._hint_ms()
        ctl.try_admit("write")
        ctl.try_admit("write")
        assert ctl._hint_ms() > empty_hint

    def test_drain_rejects_everything(self):
        ctl = AdmissionController(max_inflight=8)
        ctl.begin_drain()
        with pytest.raises(ServiceOverloadedError):
            ctl.try_admit("write")
        assert ctl.stats.rejected_draining == 1


class TestOverloadResponses:
    def test_saturated_core_returns_typed_overload(self):
        core = _core(admission=AdmissionController(
            max_inflight=2, read_shed_fraction=0.5
        ))
        conn = LoopbackConnection(core)
        # Occupy one slot by hand: reads (limit 1) shed, writes (limit 2)
        # still drain — the read-first policy, observable on the wire.
        core.admission.try_admit("write")
        shed = conn.execute("SELECT * FROM t WHERE k = 1")
        assert shed["status"] == protocol.STATUS_OVERLOADED
        assert shed["retryable"] is True
        assert shed["shed_kind"] == "read"
        assert shed["retry_after_ms"] > 0
        ok = conn.execute("INSERT INTO t (k, v) VALUES (1, 'w')")
        assert ok["status"] == protocol.STATUS_OK
        assert core.db.stats()["service_rejects"] == 1
        core.admission.release()

    def test_rejected_request_id_can_be_retried(self):
        core = _core(admission=AdmissionController(max_inflight=1))
        conn = LoopbackConnection(core)
        core.admission.try_admit("write")
        message = {"id": "rt:1", "op": "sql",
                   "sql": "INSERT INTO t (k, v) VALUES (5, 'x')"}
        assert conn.request(dict(message))["status"] == \
            protocol.STATUS_OVERLOADED
        core.admission.release()
        # Same id after the shed: re-admitted and executed, not replayed
        # from the idempotency cache as a stale rejection.
        assert conn.request(dict(message))["status"] == protocol.STATUS_OK
        assert _value(conn, 5) == "x"

    def test_bracket_continuations_bypass_admission(self):
        core = _core(admission=AdmissionController(max_inflight=1))
        conn = LoopbackConnection(core)
        assert conn.execute(
            "INSERT INTO t (k, v) VALUES (1, 'a')"
        )["status"] == protocol.STATUS_OK
        assert conn.execute("BEGIN TRAN")["status"] == protocol.STATUS_OK
        core.admission.try_admit("write")   # saturate mid-bracket
        try:
            # Shedding these would strand the bracket's locks.
            update = conn.execute("UPDATE t SET v = 'b' WHERE k = 1")
            assert update["status"] == protocol.STATUS_OK
            assert conn.execute("COMMIT")["status"] == protocol.STATUS_OK
        finally:
            core.admission.release()
        assert _value(conn, 1) == "b"


# ---------------------------------------------------------------------------
# idempotency
# ---------------------------------------------------------------------------


class TestIdempotency:
    def test_duplicate_id_replays_cached_response(self):
        core = _core()
        conn = LoopbackConnection(core)
        message = {"id": "dup:1", "op": "sql",
                   "sql": "INSERT INTO t (k, v) VALUES (1, 'once')"}
        first = core.handle_message(conn.session, dict(message))
        second = core.handle_message(conn.session, dict(message))
        assert first == second
        assert core.stats.duplicate_hits == 1
        # Executed once: a second execution would be a duplicate-key error.
        assert _value(conn, 1) == "once"

    def test_in_bracket_statements_are_never_cached(self):
        core = _core()
        conn = LoopbackConnection(core)
        conn.execute("INSERT INTO t (k, v) VALUES (1, 'a')")
        conn.execute("BEGIN TRAN")
        message = {"id": "brk:1", "op": "sql",
                   "sql": "SELECT v FROM t WHERE k = 1"}
        core.handle_message(conn.session, dict(message))
        core.handle_message(conn.session, dict(message))
        # Both executed live: bracket-scoped outcomes die with the session,
        # so caching them would lie to a cross-session retry.
        assert core.stats.duplicate_hits == 0
        conn.execute("ROLLBACK")

    def test_error_responses_are_not_cached(self):
        core = _core()
        conn = LoopbackConnection(core)
        message = {"id": "err:1", "op": "sql",
                   "sql": "SELECT * FROM missing_table"}
        first = core.handle_message(conn.session, dict(message))
        assert first["status"] == protocol.STATUS_ERROR
        conn.execute("CREATE IMMORTAL TABLE missing_table "
                     "(k INT PRIMARY KEY, v TEXT)")
        retry = core.handle_message(conn.session, dict(message))
        assert retry["status"] == protocol.STATUS_OK


# ---------------------------------------------------------------------------
# session lifecycle
# ---------------------------------------------------------------------------


class TestSessionLifecycle:
    def test_mid_transaction_disconnect_releases_locks(self):
        core = _core()
        victim = LoopbackConnection(core, client_key="victim")
        other = LoopbackConnection(core, client_key="other")
        victim.execute("INSERT INTO t (k, v) VALUES (1, 'base')")
        victim.execute("BEGIN TRAN")
        victim.execute("UPDATE t SET v = 'stranded' WHERE k = 1")
        victim.drop_connection()
        # The abort released the row lock: the other session writes
        # immediately instead of deadlocking against a dead client.
        ok = other.execute("UPDATE t SET v = 'alive' WHERE k = 1")
        assert ok["status"] == protocol.STATUS_OK
        assert _value(other, 1) == "alive"
        stats = core.db.stats()
        assert stats["service_aborted_on_disconnect"] == 1

    def test_disconnect_during_execution_defers_to_worker(self):
        core = _core()
        conn = LoopbackConnection(core)
        session = conn.session
        session.lock.acquire()    # a request body is "executing"
        try:
            core.on_disconnect(session, "reset")
            assert session.defunct and not session.closed
        finally:
            session.lock.release()
        # The worker finishing its request observes the flag and retires
        # the session (handle_message's defunct check).
        core.handle_message(session, {"id": "d:1", "op": "ping"})
        assert session.closed
        assert core.db.stats()["service_aborted_on_disconnect"] == 0

    def test_close_session_is_idempotent(self):
        core = _core()
        conn = LoopbackConnection(core)
        session = conn.session
        core.close_session(session, "disconnect")
        core.close_session(session, "disconnect")
        assert core.stats.sessions_closed == 2
        assert core.stats.aborted_on_disconnect == 0

    def test_reap_idle_aborts_stale_brackets(self):
        clock = [0.0]
        core = _core(now=lambda: clock[0])
        conn = LoopbackConnection(core)
        conn.execute("INSERT INTO t (k, v) VALUES (1, 'x')")
        conn.execute("BEGIN TRAN")
        conn.execute("UPDATE t SET v = 'stale' WHERE k = 1")
        stale_id = conn.session.id
        clock[0] += 10.0
        fresh = LoopbackConnection(core, client_key="fresh")
        fresh.execute("SELECT * FROM t WHERE k = 1")
        victims = core.reap_idle(5.0)
        assert [v.id for v in victims] == [stale_id]
        assert core.stats.idle_closes == 1
        assert core.stats.aborted_on_disconnect == 1
        # The reaped bracket's lock is free again.
        ok = fresh.execute("UPDATE t SET v = 'fresh' WHERE k = 1")
        assert ok["status"] == protocol.STATUS_OK

    def test_drain_refuses_new_sessions_and_new_work(self):
        core = _core()
        conn = LoopbackConnection(core)
        conn.execute("INSERT INTO t (k, v) VALUES (1, 'pre')")
        core.begin_drain()
        shed = conn.execute("INSERT INTO t (k, v) VALUES (2, 'post')")
        assert shed["status"] == protocol.STATUS_OVERLOADED
        with pytest.raises(SessionStateError):
            core.open_session()
        core.finish_drain()
        assert core.db.txn_mgr.unacked_commits == 0


# ---------------------------------------------------------------------------
# network faults through the loopback wire
# ---------------------------------------------------------------------------


class TestNetworkFaults:
    @pytest.mark.parametrize("kind", NETWORK_FAULT_KINDS)
    def test_each_fault_kind_is_exactly_once(self, kind):
        core = _core()
        wire = FaultyWire(seed=7)
        conn = LoopbackConnection(core, wire=wire, client_key=f"nf-{kind}")
        conn.execute("INSERT INTO t (k, v) VALUES (1, 'seed')")
        wire.arm(kind)
        response = conn.execute("UPDATE t SET v = 'faulted' WHERE k = 1")
        assert response["status"] == protocol.STATUS_OK
        assert wire.injected[kind] == 1
        # Exactly-once: the row moved to the new value, history grew by
        # exactly one version despite the duplicate/retry.
        assert _value(conn, 1) == "faulted"
        history = _rows(conn.execute("SELECT HISTORY OF t WHERE k = 1"))
        assert len(history) == 2

    def test_mid_bracket_connection_loss_is_surfaced_not_retried(self):
        core = _core()
        wire = FaultyWire(seed=3)
        conn = LoopbackConnection(core, wire=wire, client_key="brk")
        conn.execute("INSERT INTO t (k, v) VALUES (1, 'base')")
        conn.execute("BEGIN TRAN")
        wire.arm("drop_response")
        # The response is lost while the bracket is open: the server
        # aborted the bracket; a blind retry would run the statement
        # autocommit.  The client must raise instead.
        with pytest.raises(ConnectionLostError):
            conn.execute("UPDATE t SET v = 'poison' WHERE k = 1")
        assert _value(conn, 1) == "base"
        assert core.db.stats()["service_aborted_on_disconnect"] == 1

    def test_autocommit_retry_rides_the_idempotency_cache(self):
        core = _core()
        wire = FaultyWire(seed=5)
        conn = LoopbackConnection(core, wire=wire, client_key="auto")
        wire.arm("drop_response")
        response = conn.execute("INSERT INTO t (k, v) VALUES (9, 'ack')")
        assert response["status"] == protocol.STATUS_OK
        assert conn.reconnects == 1
        assert core.stats.duplicate_hits == 1
        assert _value(conn, 9) == "ack"


# ---------------------------------------------------------------------------
# the asyncio server, end to end over real sockets
# ---------------------------------------------------------------------------


def _serve(db, **kwargs) -> ThreadedService:
    kwargs.setdefault("pool_workers", 2)
    kwargs.setdefault("queue_depth", 32)
    return ThreadedService(db, port=0, **kwargs)


class TestServerEndToEnd:
    def test_quickstart_sql_temporal_and_ingest(self):
        db = _make_db()
        with _serve(db) as svc:
            with ServiceClient("127.0.0.1", svc.port) as client:
                assert client.ping()["message"] == "pong"
                client.execute("INSERT INTO t (k, v) VALUES (1, 'v1')")
                db.advance_time(100)
                mark = db.clock.now_datetime().isoformat(sep=" ")
                db.clock.advance_ticks(1)
                client.execute("UPDATE t SET v = 'v2' WHERE k = 1")
                now_rows = _rows(
                    client.execute("SELECT v FROM t WHERE k = 1")
                )
                assert now_rows == [{"v": "v2"}]
                asof = _rows(client.execute(
                    f"SELECT v FROM t AS OF '{mark}' WHERE k = 1"
                ))
                assert asof == [{"v": "v1"}]
                history = _rows(
                    client.execute("SELECT HISTORY OF t WHERE k = 1")
                )
                assert len(history) == 2
                ingest = client.ingest(
                    "t", "k,v\n10,ten\n11,eleven\n12,twelve\n", batch=2
                )
                assert ingest["rowcount"] == 3
                count = _rows(client.execute("SELECT k FROM t"))
                assert len(count) == 4
                stats = client.stats()["rows"][0]
                assert stats["service_accepts"] > 0
        # Drain forced group commit: every acked write is durable.
        assert db.txn_mgr.unacked_commits == 0

    def test_socket_disconnect_mid_bracket_releases_locks(self):
        db = _make_db()
        with _serve(db) as svc:
            rude = ServiceClient("127.0.0.1", svc.port)
            rude.execute("INSERT INTO t (k, v) VALUES (1, 'base')")
            rude.execute("BEGIN TRAN")
            rude.execute("UPDATE t SET v = 'stranded' WHERE k = 1")
            rude._disconnect()   # vanish without COMMIT or close
            assert _wait_until(
                lambda: db.stats()["service_aborted_on_disconnect"] == 1
            )
            with ServiceClient("127.0.0.1", svc.port) as polite:
                ok = polite.execute("UPDATE t SET v = 'alive' WHERE k = 1")
                assert ok["status"] == protocol.STATUS_OK
                assert _value(polite, 1) == "alive"

    def test_idle_session_is_reaped_and_bracket_aborted(self):
        db = _make_db()
        with _serve(db, idle_timeout_s=0.3) as svc:
            lazy = ServiceClient("127.0.0.1", svc.port)
            lazy.execute("INSERT INTO t (k, v) VALUES (1, 'base')")
            lazy.execute("BEGIN TRAN")
            lazy.execute("UPDATE t SET v = 'stale' WHERE k = 1")
            assert _wait_until(lambda: svc.core.stats.idle_closes == 1)
            assert db.stats()["service_aborted_on_disconnect"] == 1
            with ServiceClient("127.0.0.1", svc.port) as fresh:
                ok = fresh.execute("UPDATE t SET v = 'fresh' WHERE k = 1")
                assert ok["status"] == protocol.STATUS_OK
            lazy._disconnect()

    def test_request_timeout_returns_typed_response(self):
        db = _make_db()
        with _serve(db, request_timeout_s=0.3, pool_workers=0) as svc:
            holder = ServiceClient("127.0.0.1", svc.port)
            holder.execute("INSERT INTO t (k, v) VALUES (1, 'held')")
            holder.execute("BEGIN TRAN")
            holder.execute("UPDATE t SET v = 'locked' WHERE k = 1")
            with ServiceClient("127.0.0.1", svc.port) as blocked:
                response = blocked.execute(
                    "UPDATE t SET v = 'waiting' WHERE k = 1"
                )
                assert response["status"] == protocol.STATUS_TIMEOUT
                assert response["deadline_ms"] == pytest.approx(300.0)
            assert _wait_until(
                lambda: db.stats()["service_timeouts"] == 1
            )
            holder._disconnect()

    def test_drain_refuses_new_connections_with_typed_bye(self):
        db = _make_db()
        with _serve(db) as svc:
            with ServiceClient("127.0.0.1", svc.port) as early:
                early.execute("INSERT INTO t (k, v) VALUES (1, 'pre')")
                svc.begin_drain()
                assert _wait_until(lambda: svc.core.draining)
                shed = early.execute("INSERT INTO t (k, v) VALUES (2, 'x')")
                assert shed["status"] == protocol.STATUS_OVERLOADED
                late = ServiceClient("127.0.0.1", svc.port)
                with pytest.raises((SessionStateError, ConnectionLostError)):
                    late.execute("SELECT k FROM t")
                late._disconnect()
        assert db.txn_mgr.unacked_commits == 0

    def test_torn_frame_on_the_socket_kills_the_connection(self):
        db = _make_db()
        with _serve(db) as svc:
            client = ServiceClient("127.0.0.1", svc.port)
            client.execute("INSERT INTO t (k, v) VALUES (1, 'pre')")
            frame = bytearray(protocol.encode_message(
                {"id": "torn:1", "op": "ping"}
            ))
            frame[-1] ^= 0x01
            client._connect().sendall(bytes(frame))
            assert _wait_until(lambda: svc.core.stats.torn_frames == 1)
            client._disconnect()
            # The engine never saw the request; a clean retry succeeds.
            with ServiceClient("127.0.0.1", svc.port) as retry:
                assert retry.ping()["message"] == "pong"
