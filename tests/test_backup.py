"""Tests for queryable backup (paper Section 7.2)."""

from __future__ import annotations

import pytest

from repro import ColumnType, ImmortalDB
from repro.core.backup import QueryableBackup
from repro.errors import AccessMethodError


COLS = [("k", ColumnType.INT), ("v", ColumnType.TEXT)]


@pytest.fixture
def db():
    return ImmortalDB(buffer_pages=128)


@pytest.fixture
def table(db):
    return db.create_table("t", COLS, key="k", immortal=True)


def seed(db, table, keys=20, rounds=3):
    with db.transaction() as txn:
        for k in range(keys):
            table.insert(txn, {"k": k, "v": "r0"})
    for r in range(1, rounds + 1):
        db.advance_time(1000)
        with db.transaction() as txn:
            for k in range(keys):
                table.update(txn, k, {"v": f"r{r}"})


class TestStatus:
    def test_conventional_tables_rejected(self, db):
        plain = db.create_table("p", COLS, key="k")
        with pytest.raises(AccessMethodError):
            QueryableBackup(plain)

    def test_status_counts_pages(self, db, table):
        seed(db, table, keys=30, rounds=40)
        backup = QueryableBackup(table)
        status = backup.status()
        assert status.current_pages >= 1
        assert status.history_pages >= 1
        assert status.history_versions > 0
        assert status.oldest_covered is not None
        assert status.oldest_covered < status.newest_covered


class TestFreeze:
    def test_freeze_captures_everything(self, db, table):
        seed(db, table)
        backup = QueryableBackup(table)
        before = backup.status().history_pages
        split = backup.freeze()
        assert split >= 1
        after = backup.status()
        assert after.history_pages > before
        # Every pre-freeze version now lives in a read-only history page.
        assert after.newest_covered is not None

    def test_freeze_preserves_current_reads(self, db, table):
        seed(db, table, rounds=2)
        QueryableBackup(table).freeze()
        with db.transaction() as txn:
            assert table.read(txn, 5)["v"] == "r2"

    def test_freeze_preserves_history_reads(self, db, table):
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "old"})
        mark = db.now()
        db.advance_time(1000)
        with db.transaction() as txn:
            table.update(txn, 1, {"v": "new"})
        QueryableBackup(table).freeze()
        assert table.read_as_of(mark, 1)["v"] == "old"

    def test_double_freeze_is_safe(self, db, table):
        seed(db, table, rounds=1)
        backup = QueryableBackup(table)
        backup.freeze()
        second = backup.freeze()  # nothing new committed since
        with db.transaction() as txn:
            assert table.read(txn, 0)["v"] == "r1"

    def test_freeze_retires_stranded_ptt_entries(self, db, table):
        """Paper: forcing pages to time-split lets stuck entries be deleted."""
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "a"})
        tid = txn.tid
        QueryableBackup(table).freeze()  # stamps + splits everything
        db.checkpoint(flush=True)
        db.checkpoint(flush=True)
        assert db.ptt.lookup(tid) is None


class TestRestore:
    def test_restore_as_of_materializes_past_state(self, db, table):
        seed(db, table, keys=10, rounds=1)
        mark = db.now()
        db.advance_time(1000)
        # An "erroneous transaction" corrupts everything.
        with db.transaction() as txn:
            for k in range(10):
                table.update(txn, k, {"v": "CORRUPTED"})
        backup = QueryableBackup(table)
        restored = backup.restore_as_of(mark, "t_restored")
        with db.transaction() as txn:
            rows = restored.scan(txn)
        assert len(rows) == 10
        assert all(row["v"] == "r1" for row in rows)
        # The damaged original is untouched (still queryable for forensics).
        with db.transaction() as txn:
            assert table.read(txn, 0)["v"] == "CORRUPTED"

    def test_restore_excludes_deleted_records(self, db, table):
        seed(db, table, keys=6, rounds=1)
        db.advance_time(1000)
        with db.transaction() as txn:
            table.delete(txn, 0)
        mark = db.now()
        restored = QueryableBackup(table).restore_as_of(mark, "t2")
        with db.transaction() as txn:
            assert len(restored.scan(txn)) == 5

    def test_restore_survives_recovery(self, db, table):
        seed(db, table, keys=5, rounds=1)
        mark = db.now()
        restored = QueryableBackup(table).restore_as_of(mark, "t3")
        db.crash_and_recover()
        restored = db.table("t3")
        with db.transaction() as txn:
            assert len(restored.scan(txn)) == 5
