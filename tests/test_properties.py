"""Property-based tests of the engine's cross-module invariants.

These drive the *whole engine* with randomized operation sequences and
check the paper's structural guarantees afterwards:

* temporal correctness: AS OF any past mark reproduces the model state
  captured at that mark, no matter how pages split in between;
* the coverage invariant: every data page contains all versions alive in
  its time range (the "essential point" of Section 3.3);
* chain/slot structural sanity on every page;
* crash-recovery equivalence: a crash at an arbitrary point never changes
  committed state or history.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import ColumnType, ImmortalDB, Timestamp
from repro.storage.constants import NO_PREVIOUS


COLS = [("k", ColumnType.INT), ("v", ColumnType.TEXT)]

# One random operation: (kind, key_choice, value_salt)
op_strategy = st.tuples(
    st.sampled_from(["insert", "update", "delete", "mark", "tick"]),
    st.integers(0, 11),
    st.integers(0, 999),
)


def _apply_ops(db, table, ops):
    """Apply random ops, maintaining a model dict; returns [(mark, model)]."""
    model: dict[int, str] = {}
    marks: list[tuple[Timestamp, dict[int, str]]] = []
    for kind, key, salt in ops:
        if kind == "mark":
            marks.append((db.now(), dict(model)))
            continue
        if kind == "tick":
            db.advance_time(37.0 * (salt % 10 + 1))
            continue
        value = f"v{salt}-" + "x" * (salt % 40)
        with db.transaction() as txn:
            if kind == "insert":
                if key in model:
                    continue
                table.insert(txn, {"k": key, "v": value})
                model[key] = value
            elif kind == "update":
                if key not in model:
                    continue
                table.update(txn, key, {"v": value})
                model[key] = value
            else:  # delete
                if key not in model:
                    continue
                table.delete(txn, key)
                del model[key]
    marks.append((db.now(), dict(model)))
    return marks


def _rows_as_dict(rows):
    return {row["k"]: row["v"] for row in rows}


class TestTemporalCorrectness:
    @settings(
        max_examples=25, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(ops=st.lists(op_strategy, min_size=5, max_size=120))
    def test_asof_scan_matches_model(self, ops):
        db = ImmortalDB(buffer_pages=32)  # small pool: force real paging
        table = db.create_table("t", COLS, key="k", immortal=True)
        marks = _apply_ops(db, table, ops)
        for mark, expected in marks:
            assert _rows_as_dict(table.scan_as_of(mark)) == expected

    @settings(
        max_examples=15, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(ops=st.lists(op_strategy, min_size=5, max_size=100))
    def test_asof_point_reads_match_model(self, ops):
        db = ImmortalDB(buffer_pages=32)
        table = db.create_table("t", COLS, key="k", immortal=True)
        marks = _apply_ops(db, table, ops)
        for mark, expected in marks:
            for key in range(12):
                row = table.read_as_of(mark, key)
                if key in expected:
                    assert row is not None and row["v"] == expected[key]
                else:
                    assert row is None

    @settings(
        max_examples=12, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        ops=st.lists(op_strategy, min_size=5, max_size=80),
        use_tsb=st.booleans(),
    )
    def test_crash_recovery_preserves_all_marks(self, ops, use_tsb):
        db = ImmortalDB(buffer_pages=32, use_tsb_index=use_tsb)
        table = db.create_table("t", COLS, key="k", immortal=True)
        marks = _apply_ops(db, table, ops)
        db.crash_and_recover()
        table = db.table("t")
        for mark, expected in marks:
            assert _rows_as_dict(table.scan_as_of(mark)) == expected


class TestStructuralInvariants:
    @settings(
        max_examples=15, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(ops=st.lists(op_strategy, min_size=20, max_size=150))
    def test_page_invariants_hold_everywhere(self, ops):
        db = ImmortalDB(buffer_pages=32)
        table = db.create_table("t", COLS, key="k", immortal=True)
        _apply_ops(db, table, ops)
        for page in table.iter_all_pages():
            # Slot array sorted and pointing at valid versions.
            keys = page.keys()
            assert keys == sorted(keys)
            assert all(0 <= h < len(page.versions) for h in page.slots)
            # Chains walk newest -> older without cycles.
            for key in keys:
                seen = set()
                for version in page.chain(key):
                    vid = id(version)
                    assert vid not in seen
                    seen.add(vid)
                    assert version.key == key
            # Time range sanity.
            if page.is_history:
                assert page.split_ts < page.end_ts
                # History pages hold no uncommitted (TID-marked) versions.
                assert not page.has_unstamped_records()

    @settings(
        max_examples=10, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(ops=st.lists(op_strategy, min_size=30, max_size=150))
    def test_coverage_invariant(self, ops):
        """Each page contains every version alive in its time range.

        For every key and every history page P on that key's chain: the
        version of the key visible at any time within P's range must be
        findable inside P itself (no cross-page search needed) — exactly
        what the time split's case-2 redundancy guarantees.
        """
        db = ImmortalDB(buffer_pages=64)
        table = db.create_table("t", COLS, key="k", immortal=True)
        _apply_ops(db, table, ops)
        # Gather the global truth: every committed version of every key.
        truth: dict[int, list] = {}
        for key_num in range(12):
            history = table.history(key_num)
            if history:
                truth[key_num] = history
        for page in table.iter_all_pages():
            if not page.is_history:
                continue
            for key in page.keys():
                key_num = table.codec.decode_key(key)
                history = truth[key_num]
                # Non-stub versions whose lifetime [ts_i, ts_{i+1}) overlaps
                # this page's [split_ts, end_ts).  (Delete stubs follow a
                # different placement rule — Figure 3 removes old stubs from
                # current pages — so only live versions are required.)
                alive = [
                    ts for i, (ts, row) in enumerate(history)
                    if row is not None
                    and ts < page.end_ts
                    and (i + 1 == len(history)
                         or history[i + 1][0] > page.split_ts)
                ]
                in_page = {
                    v.timestamp
                    for v in page.chain(key)
                    if v.is_timestamped
                }
                for ts in alive:
                    assert ts in in_page, (
                        f"version {ts} of key {key_num} alive in "
                        f"[{page.split_ts}, {page.end_ts}) missing from "
                        f"page {page.page_id}"
                    )


class TestConventionalEquivalence:
    @settings(
        max_examples=15, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(ops=st.lists(op_strategy, min_size=5, max_size=100))
    def test_immortal_and_plain_agree_on_current_state(self, ops):
        """An immortal table and a plain table see identical present."""
        db = ImmortalDB(buffer_pages=64)
        immortal = db.create_table("imm", COLS, key="k", immortal=True)
        plain = db.create_table("pl", COLS, key="k")
        marks_a = _apply_ops(db, immortal, ops)
        marks_b = _apply_ops(db, plain, ops)
        assert marks_a[-1][1] == marks_b[-1][1]
        with db.transaction() as txn:
            assert (
                _rows_as_dict(immortal.scan(txn))
                == _rows_as_dict(plain.scan(txn))
                == marks_a[-1][1]
            )
