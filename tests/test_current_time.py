"""Tests for the CURRENT TIME extension (paper Section 7.2).

"A SQL query can ask for CURRENT TIME within a transaction.  This request
needs to return a time consistent with the transaction's timestamp.  This
forces a transaction's timestamp to be chosen earlier than its commit
time."  Our implementation pins the timestamp at the CURRENT TIME call and
validates every later access against it — accesses to data committed after
the pin abort the transaction, the classic cost of early choice.
"""

from __future__ import annotations

import pytest

from repro import ColumnType, ImmortalDB
from repro.errors import TimestampOrderError


COLS = [("k", ColumnType.INT), ("v", ColumnType.TEXT)]


@pytest.fixture
def db():
    return ImmortalDB(buffer_pages=64)


@pytest.fixture
def table(db):
    return db.create_table("t", COLS, key="k", immortal=True)


class TestPinning:
    def test_current_time_equals_commit_timestamp(self, db, table):
        txn = db.begin()
        table.insert(txn, {"k": 1, "v": "a"})
        asked = db.txn_mgr.current_time(txn)
        committed = db.commit(txn)
        assert committed == asked

    def test_repeated_asks_return_the_same_time(self, db, table):
        txn = db.begin()
        first = db.txn_mgr.current_time(txn)
        db.advance_time(5000)
        second = db.txn_mgr.current_time(txn)
        assert first == second
        db.commit(txn)

    def test_version_stamped_with_pinned_time(self, db, table):
        txn = db.begin()
        asked = db.txn_mgr.current_time(txn)
        table.insert(txn, {"k": 1, "v": "a"})
        db.commit(txn)
        assert table.history(1)[0][0] == asked

    def test_as_of_transactions_answer_their_as_of_time(self, db, table):
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "a"})
        mark = db.now()
        historical = db.begin(as_of=mark)
        assert db.txn_mgr.current_time(historical) == mark
        db.commit(historical)

    def test_unpinned_transactions_still_choose_late(self, db, table):
        txn = db.begin()
        table.insert(txn, {"k": 1, "v": "a"})
        before = db.now()
        ts = db.commit(txn)
        assert ts > before


class TestValidation:
    def test_reading_future_data_aborts(self, db, table):
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "old"})
        pinned = db.begin()
        db.txn_mgr.current_time(pinned)
        # Another transaction commits after the pin.
        with db.transaction() as txn:
            table.insert(txn, {"k": 2, "v": "future"})
        with db.transaction() as reader:
            pass
        # Reading pre-pin data is fine...
        assert table.read(pinned, 1)["v"] == "old"
        # ... reading data committed after the pin is not.
        with pytest.raises(TimestampOrderError):
            table.read(pinned, 2)
        db.abort(pinned)

    def test_overwriting_future_data_aborts(self, db, table):
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "base"})
        pinned = db.begin()
        db.txn_mgr.current_time(pinned)
        with db.transaction() as txn:
            table.update(txn, 1, {"v": "newer"})
        with pytest.raises(TimestampOrderError):
            table.update(pinned, 1, {"v": "mine"})
        db.abort(pinned)

    def test_pinned_transaction_can_write_untouched_data(self, db, table):
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "base"})
        pinned = db.begin()
        asked = db.txn_mgr.current_time(pinned)
        with db.transaction() as txn:
            table.insert(txn, {"k": 99, "v": "elsewhere"})
        table.update(pinned, 1, {"v": "mine"})   # untouched since the pin
        assert db.commit(pinned) == asked
        # History records the pinned (earlier) time even though another
        # transaction committed in between — serialization order is still
        # correct because the data sets are disjoint.
        assert table.history(1)[-1][0] == asked
