"""Tests for slotted data pages and version chains (paper Figure 2)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.clock import Timestamp
from repro.errors import PageFullError
from repro.storage.constants import DATA_HEADER_SIZE, PAGE_SIZE, SLOT_SIZE
from repro.storage.page import DataPage, MetaPage, decode_page
from repro.storage.record import RecordVersion


def rec(key: bytes, payload: bytes = b"v", tid: int = 1) -> RecordVersion:
    return RecordVersion.new(key, payload, tid)


class TestSlotArray:
    def test_insert_keeps_slots_sorted_by_key(self):
        page = DataPage(1)
        for key in (b"m", b"a", b"z", b"c"):
            page.insert_version(rec(key))
        assert page.keys() == [b"a", b"c", b"m", b"z"]

    def test_head_finds_record(self):
        page = DataPage(1)
        page.insert_version(rec(b"a", b"one"))
        assert page.head(b"a").payload == b"one"
        assert page.head(b"missing") is None

    def test_min_max_key(self):
        page = DataPage(1)
        assert page.min_key is None
        page.insert_version(rec(b"b"))
        page.insert_version(rec(b"a"))
        assert (page.min_key, page.max_key) == (b"a", b"b")


class TestVersionChains:
    def test_update_chains_to_previous_version(self):
        """Figure 2: the slot points at the newest version; VP links back."""
        page = DataPage(1)
        page.insert_version(rec(b"A", b"v0", tid=1))
        page.insert_version(rec(b"B", b"b0", tid=1))
        page.insert_version(rec(b"A", b"v1", tid=2))
        chain = list(page.chain(b"A"))
        assert [v.payload for v in chain] == [b"v1", b"v0"]
        # B's chain is untouched.
        assert [v.payload for v in page.chain(b"B")] == [b"b0"]

    def test_slot_array_sees_only_newest(self):
        page = DataPage(1)
        page.insert_version(rec(b"A", b"v0"))
        page.insert_version(rec(b"A", b"v1"))
        page.insert_version(rec(b"A", b"v2"))
        assert page.head(b"A").payload == b"v2"
        assert len(page.slots) == 1

    def test_three_transaction_scenario_from_figure_2(self):
        page = DataPage(1)
        # Transaction I: insert A, insert B
        page.insert_version(rec(b"A", b"a0", tid=1))
        page.insert_version(rec(b"B", b"b0", tid=1))
        # Transaction II: update A
        page.insert_version(rec(b"A", b"a1", tid=2))
        # Transaction III: update A, update B
        page.insert_version(rec(b"A", b"a2", tid=3))
        page.insert_version(rec(b"B", b"b1", tid=3))
        assert [v.payload for v in page.chain(b"A")] == [b"a2", b"a1", b"a0"]
        assert [v.payload for v in page.chain(b"B")] == [b"b1", b"b0"]

    def test_remove_newest_version_restores_previous(self):
        page = DataPage(1)
        page.insert_version(rec(b"A", b"v0"))
        page.insert_version(rec(b"A", b"v1"))
        removed = page.remove_newest_version(b"A")
        assert removed.payload == b"v1"
        assert page.head(b"A").payload == b"v0"

    def test_remove_only_version_removes_slot(self):
        page = DataPage(1)
        page.insert_version(rec(b"A"))
        page.remove_newest_version(b"A")
        assert page.head(b"A") is None
        assert page.keys() == []

    def test_remove_compacts_indices_correctly(self):
        page = DataPage(1)
        page.insert_version(rec(b"A", b"a0"))
        page.insert_version(rec(b"B", b"b0"))
        page.insert_version(rec(b"B", b"b1"))
        page.insert_version(rec(b"C", b"c0"))
        page.remove_newest_version(b"A")
        assert [v.payload for v in page.chain(b"B")] == [b"b1", b"b0"]
        assert page.head(b"C").payload == b"c0"


class TestSpaceAccounting:
    def test_used_bytes_tracks_inserts(self):
        page = DataPage(1)
        before = page.used_bytes
        r = rec(b"k", b"x" * 100)
        page.insert_version(r)
        assert page.used_bytes == before + r.size_on_page + SLOT_SIZE

    def test_page_full_raises(self):
        page = DataPage(1)
        big = b"x" * 1000
        with pytest.raises(PageFullError):
            for i in range(100):
                page.insert_version(rec(f"k{i:03}".encode(), big))

    def test_full_page_still_fits_smaller_records(self):
        page = DataPage(1)
        n = 0
        try:
            while True:
                page.insert_version(rec(f"k{n:05}".encode(), b"y" * 500))
                n += 1
        except PageFullError:
            pass
        assert page.free_bytes < rec(b"k", b"y" * 500).size_on_page + SLOT_SIZE

    def test_current_version_bytes_counts_heads_only(self):
        page = DataPage(1)
        page.insert_version(rec(b"A", b"x" * 10))
        head_size = rec(b"A", b"x" * 10).size_on_page
        page.insert_version(rec(b"A", b"x" * 10))
        page.insert_version(rec(b"A", b"x" * 10))
        assert page.current_version_bytes() == head_size


class TestInPlaceUpdates:
    def test_replace_payload(self):
        page = DataPage(1)
        page.insert_version(rec(b"A", b"old!"))
        page.replace_payload_in_place(b"A", b"new-longer")
        assert page.head(b"A").payload == b"new-longer"

    def test_replace_adjusts_used_bytes(self):
        page = DataPage(1)
        page.insert_version(rec(b"A", b"aaaa"))
        used = page.used_bytes
        page.replace_payload_in_place(b"A", b"aa")
        assert page.used_bytes == used - 2

    def test_replace_missing_key_raises(self):
        page = DataPage(1)
        with pytest.raises(KeyError):
            page.replace_payload_in_place(b"A", b"x")


class TestCodec:
    def test_roundtrip_with_chains_and_headers(self):
        page = DataPage(7, table_id=3, immortal=True)
        page.split_ts = Timestamp(100, 2)
        page.history_page_id = 42
        page.next_leaf_id = 43
        page.lsn = 999
        page.insert_version(rec(b"A", b"a0"))
        page.insert_version(rec(b"A", b"a1"))
        page.insert_version(rec(b"B", b"b0"))
        decoded = decode_page(page.to_bytes())
        assert isinstance(decoded, DataPage)
        assert decoded.page_id == 7
        assert decoded.table_id == 3
        assert decoded.immortal
        assert decoded.split_ts == Timestamp(100, 2)
        assert decoded.history_page_id == 42
        assert decoded.next_leaf_id == 43
        assert decoded.lsn == 999
        assert [v.payload for v in decoded.chain(b"A")] == [b"a1", b"a0"]
        assert decoded.used_bytes == page.used_bytes

    def test_image_is_exactly_page_size(self):
        page = DataPage(1)
        page.insert_version(rec(b"A"))
        assert len(page.to_bytes()) == PAGE_SIZE

    def test_history_page_type_roundtrips(self):
        page = DataPage(5, is_history=True)
        page.end_ts = Timestamp(200, 0)
        decoded = decode_page(page.to_bytes())
        assert isinstance(decoded, DataPage)
        assert decoded.is_history
        assert decoded.end_ts == Timestamp(200, 0)

    @settings(max_examples=40, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 9), st.binary(min_size=0, max_size=40)),
            min_size=1,
            max_size=60,
        )
    )
    def test_roundtrip_property(self, ops):
        page = DataPage(3)
        for keynum, payload in ops:
            page.insert_version(rec(f"key{keynum}".encode(), payload))
        decoded = decode_page(page.to_bytes())
        assert decoded.keys() == page.keys()
        for key in page.keys():
            assert [v.payload for v in decoded.chain(key)] == [
                v.payload for v in page.chain(key)
            ]
        assert decoded.used_bytes == page.used_bytes


class TestMetaPage:
    def test_blob_roundtrip(self):
        meta = MetaPage(0, b'{"hello": 1}')
        decoded = decode_page(meta.to_bytes())
        assert isinstance(decoded, MetaPage)
        assert decoded.blob == b'{"hello": 1}'

    def test_zero_page_decodes_as_empty_meta(self):
        decoded = decode_page(bytes(PAGE_SIZE))
        assert isinstance(decoded, MetaPage)
        assert decoded.blob == b""

    def test_oversized_blob_rejected(self):
        from repro.errors import PageFormatError

        with pytest.raises(PageFormatError):
            MetaPage(0, b"x" * PAGE_SIZE).to_bytes()


class TestHeaderSizes:
    def test_data_header_leaves_room(self):
        page = DataPage(1)
        assert page.used_bytes == DATA_HEADER_SIZE
        assert page.free_bytes == PAGE_SIZE - DATA_HEADER_SIZE
