"""Tests for the lazy timestamping protocol (paper Section 2.2)."""

from __future__ import annotations

import pytest

from repro.clock import SimClock, Timestamp
from repro.errors import UnknownTransactionError
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDisk
from repro.storage.page import DataPage, decode_page
from repro.storage.record import RecordVersion
from repro.timestamp.manager import TimestampManager
from repro.timestamp.ptt import PersistentTimestampTable
from repro.wal.log import LogManager


@pytest.fixture
def env():
    class Env:
        def __init__(self):
            self.disk = InMemoryDisk()
            self.buffer = BufferPool(self.disk, capacity=64)
            self.log = LogManager()
            self.clock = SimClock()
            self.ptt = PersistentTimestampTable(self.buffer)
            self.tsmgr = TimestampManager(self.log, self.buffer, self.ptt)

        def commit(self, tid: int, *, persistent: bool = True) -> Timestamp:
            ts = self.clock.next_timestamp()
            lsn = self.log.append(
                __import__("repro.wal.records", fromlist=["CommitTxn"])
                .CommitTxn(tid=tid, ttime=ts.ttime, sn=ts.sn, ptt=persistent)
            )
            self.log.force()
            self.tsmgr.on_commit(tid, ts, lsn, persistent=persistent)
            return ts

    return Env()


def new_page(env, *, immortal=True) -> DataPage:
    return env.buffer.new_page(
        lambda pid: DataPage(pid, immortal=immortal, table_id=1)
    )


class TestFourStages:
    def test_commit_writes_single_ptt_entry(self, env):
        env.tsmgr.on_begin(1)
        for _ in range(5):
            env.tsmgr.on_version_created(1, 1, 2, b"k")
        ts = env.commit(1)
        assert env.ptt.lookup(1) == ts
        assert env.tsmgr.stats.ptt_inserts == 1

    def test_resolve_active_transaction(self, env):
        env.tsmgr.on_begin(1)
        assert env.tsmgr.resolve(1) == (None, False)

    def test_resolve_committed_from_vtt(self, env):
        env.tsmgr.on_begin(1)
        ts = env.commit(1)
        assert env.tsmgr.resolve(1) == (ts, True)
        assert env.tsmgr.stats.vtt_hits == 1

    def test_resolve_falls_back_to_ptt_after_crash(self, env):
        env.tsmgr.on_begin(1)
        ts = env.commit(1)
        env.tsmgr.rebuild_after_crash()   # VTT is volatile
        assert env.tsmgr.resolve(1) == (ts, True)
        assert env.tsmgr.stats.ptt_lookups == 1
        # ... and the answer is now cached with undefined refcount.
        assert env.tsmgr.vtt.get(1).refcount is None

    def test_resolve_unknown_tid_raises(self, env):
        with pytest.raises(UnknownTransactionError):
            env.tsmgr.resolve(404)

    def test_stamping_decrements_refcount(self, env):
        page = new_page(env)
        env.tsmgr.on_begin(1)
        for key in (b"a", b"b"):
            page.insert_version(RecordVersion.new(key, b"v", 1))
            env.tsmgr.on_version_created(1, 1, page.page_id, key)
        ts = env.commit(1)
        assert env.tsmgr.stamp_page(page) == 2
        assert page.head(b"a").timestamp == ts
        entry = env.tsmgr.vtt.get(1)
        assert entry.refcount == 0 and entry.done_lsn is not None

    def test_stamping_skips_active_transactions(self, env):
        page = new_page(env)
        env.tsmgr.on_begin(1)
        page.insert_version(RecordVersion.new(b"a", b"v", 1))
        env.tsmgr.on_version_created(1, 1, page.page_id, b"a")
        assert env.tsmgr.stamp_page(page) == 0
        assert not page.head(b"a").is_timestamped


class TestFlushTrigger:
    def test_flush_stamps_committed_versions(self, env):
        """Pages never reach disk with committed-but-unstamped records."""
        page = new_page(env)
        env.tsmgr.on_begin(1)
        page.insert_version(RecordVersion.new(b"a", b"v", 1))
        env.tsmgr.on_version_created(1, 1, page.page_id, b"a")
        ts = env.commit(1)
        env.buffer.flush_page(page.page_id)
        decoded = decode_page(env.disk.read_page(page.page_id))
        assert decoded.head(b"a").is_timestamped
        assert decoded.head(b"a").timestamp == ts

    def test_flush_leaves_active_tids_in_place(self, env):
        page = new_page(env)
        env.tsmgr.on_begin(1)
        page.insert_version(RecordVersion.new(b"a", b"v", 1))
        env.tsmgr.on_version_created(1, 1, page.page_id, b"a")
        env.buffer.flush_page(page.page_id)
        decoded = decode_page(env.disk.read_page(page.page_id))
        assert not decoded.head(b"a").is_timestamped
        assert decoded.head(b"a").tid == 1


class TestGarbageCollection:
    def _one_stamped_txn(self, env, tid: int):
        page = new_page(env)
        env.tsmgr.on_begin(tid)
        page.insert_version(RecordVersion.new(b"a", b"v", tid))
        env.tsmgr.on_version_created(tid, 1, page.page_id, b"a")
        env.commit(tid)
        env.tsmgr.stamp_page(page)
        return page

    def test_gc_waits_for_redo_scan_point(self, env):
        self._one_stamped_txn(env, 1)
        done_lsn = env.tsmgr.vtt.get(1).done_lsn
        # Redo scan start point has not passed the done LSN yet: no GC.
        assert env.tsmgr.garbage_collect(done_lsn) == 0
        assert env.ptt.lookup(1) is not None
        # Once it passes, the entry goes.
        assert env.tsmgr.garbage_collect(done_lsn + 1) == 1
        assert env.ptt.lookup(1) is None
        assert 1 not in env.tsmgr.vtt

    def test_gc_skips_entries_with_pending_stamps(self, env):
        page = new_page(env)
        env.tsmgr.on_begin(1)
        page.insert_version(RecordVersion.new(b"a", b"v", 1))
        env.tsmgr.on_version_created(1, 1, page.page_id, b"a")
        env.commit(1)
        # Not stamped yet: no done_lsn, never collected.
        assert env.tsmgr.garbage_collect(10**9) == 0
        assert env.ptt.lookup(1) is not None

    def test_gc_logs_ptt_deletes(self, env):
        from repro.wal.records import PTTDelete

        self._one_stamped_txn(env, 1)
        env.tsmgr.garbage_collect(env.log.end_lsn + 1)
        deletes = [r for r in env.log.records_from(0) if isinstance(r, PTTDelete)]
        assert [d.subject_tid for d in deletes] == [1]

    def test_undefined_refcount_is_never_collected(self, env):
        """Post-crash entries stay in the PTT forever (paper accepts this)."""
        env.tsmgr.on_begin(1)
        env.commit(1)
        env.tsmgr.rebuild_after_crash()
        env.tsmgr.resolve(1)  # caches with undefined refcount
        assert env.tsmgr.garbage_collect(10**9) == 0
        assert env.ptt.lookup(1) is not None


class TestSnapshotTransactions:
    def test_snapshot_txn_gets_no_ptt_entry(self, env):
        env.tsmgr.on_begin(1, is_snapshot=True)
        env.commit(1, persistent=False)
        assert env.ptt.lookup(1) is None

    def test_snapshot_entry_dropped_at_refcount_zero(self, env):
        page = new_page(env, immortal=False)
        env.tsmgr.on_begin(1, is_snapshot=True)
        page.insert_version(RecordVersion.new(b"a", b"v", 1))
        env.tsmgr.on_version_created(1, 1, page.page_id, b"a")
        env.commit(1, persistent=False)
        assert 1 in env.tsmgr.vtt
        env.tsmgr.stamp_page(page)
        # Paper: "we can drop the VTT entry for a snapshot transaction
        # immediately upon its reference count going to zero."
        assert 1 not in env.tsmgr.vtt


class TestRecoveryFallback:
    def test_conventional_pages_can_use_fallback(self, env):
        page = new_page(env, immortal=False)
        page.insert_version(RecordVersion.new(b"a", b"v", 77))
        env.tsmgr.recovery_fallback = Timestamp(123, 0)
        assert env.tsmgr.stamp_page(page) == 1
        assert page.head(b"a").timestamp == Timestamp(123, 0)

    def test_immortal_pages_never_fall_back(self, env):
        page = new_page(env, immortal=True)
        page.insert_version(RecordVersion.new(b"a", b"v", 77))
        env.tsmgr.recovery_fallback = Timestamp(123, 0)
        with pytest.raises(UnknownTransactionError):
            env.tsmgr.stamp_page(page)
