"""Tests for the TSB-tree history index: rectangles, search, node splits."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.access.tsbtree import Rect, TSBEntry, TSBHistoryIndex, TSBIndexPage
from repro.clock import Timestamp
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDisk
from repro.storage.page import decode_page


def T(i: int) -> Timestamp:
    return Timestamp(i, 0)


class TestRect:
    def test_point_containment(self):
        rect = Rect(b"a", b"m", T(10), T(20))
        assert rect.contains_point(b"a", T(10))
        assert rect.contains_point(b"g", T(15))
        assert not rect.contains_point(b"m", T(15))   # key_high exclusive
        assert not rect.contains_point(b"g", T(20))   # t_high exclusive
        assert not rect.contains_point(b"g", T(9))

    def test_open_key_high(self):
        rect = Rect(b"m", None, T(0), T(10))
        assert rect.contains_point(b"zzzz", T(5))
        assert not rect.contains_point(b"a", T(5))

    def test_rect_containment(self):
        outer = Rect(b"", None, T(0), T(100))
        inner = Rect(b"c", b"f", T(10), T(20))
        assert outer.contains_rect(inner)
        assert not inner.contains_rect(outer)

    def test_overlap(self):
        a = Rect(b"a", b"m", T(0), T(10))
        b = Rect(b"g", b"z", T(5), T(15))
        c = Rect(b"m", b"z", T(0), T(10))
        assert a.overlaps(b)
        assert not a.overlaps(c)  # key ranges touch but don't overlap

    def test_historical_means_closed_time(self):
        assert Rect(b"", None, T(0), T(10)).is_historical
        assert not Rect(b"", None, T(0), Timestamp.MAX).is_historical


class TestCodec:
    def test_node_roundtrip(self):
        node = TSBIndexPage(3, Rect(b"a", b"z", T(0), T(100)))
        node.entries = [
            TSBEntry(Rect(b"a", b"m", T(0), T(50)), 10, True),
            TSBEntry(Rect(b"m", None, T(0), Timestamp.MAX), 11, False),
        ]
        node.lsn = 55
        decoded = decode_page(node.to_bytes())
        assert isinstance(decoded, TSBIndexPage)
        assert decoded.rect == node.rect
        assert decoded.entries == node.entries
        assert decoded.lsn == 55


@pytest.fixture
def index():
    buffer = BufferPool(InMemoryDisk(), capacity=512)
    return TSBHistoryIndex(buffer, table_id=1)


def history_rect(lo: int, hi: int, klo=b"", khi=None) -> Rect:
    return Rect(klo, khi, T(lo), T(hi))


class TestSearchAndInsert:
    def test_empty_index_finds_nothing(self, index):
        assert index.search(b"k", T(5)) is None

    def test_single_entry(self, index):
        index.insert(history_rect(0, 100), page_id=50)
        assert index.search(b"anything", T(50)) == 50
        assert index.search(b"anything", T(100)) is None

    def test_disjoint_time_slices(self, index):
        index.insert(history_rect(0, 10), 50)
        index.insert(history_rect(10, 20), 51)
        index.insert(history_rect(20, 30), 52)
        assert index.search(b"k", T(5)) == 50
        assert index.search(b"k", T(10)) == 51
        assert index.search(b"k", T(29)) == 52
        assert index.search(b"k", T(30)) is None

    def test_key_partitioned_slices(self, index):
        index.insert(history_rect(0, 10, b"", b"m"), 60)
        index.insert(history_rect(0, 10, b"m", None), 61)
        assert index.search(b"a", T(5)) == 60
        assert index.search(b"x", T(5)) == 61

    def test_leaf_entry_count(self, index):
        for i in range(5):
            index.insert(history_rect(i * 10, (i + 1) * 10), 100 + i)
        assert index.leaf_entry_count() == 5


class TestNodeSplits:
    def test_many_entries_split_the_root(self, index):
        """Enough historical entries to overflow several nodes."""
        n = 500
        for i in range(n):
            index.insert(history_rect(i * 10, (i + 1) * 10), 1000 + i)
        nodes = index.all_nodes()
        assert len(nodes) > 1
        # Every slice still findable.
        for i in (0, n // 3, n - 1):
            assert index.search(b"k", T(i * 10 + 5)) == 1000 + i

    def test_root_pid_never_changes(self, index):
        root = index.root_pid
        for i in range(500):
            index.insert(history_rect(i * 10, (i + 1) * 10), 1000 + i)
        assert index.root_pid == root

    def test_key_and_time_mixed(self, index):
        pid = 1000
        expected = {}
        for i in range(60):
            for klo, khi in ((b"", b"m"), (b"m", None)):
                index.insert(history_rect(i * 10, (i + 1) * 10, klo, khi), pid)
                probe = (b"a" if klo == b"" else b"z", i * 10 + 5)
                expected[probe] = pid
                pid += 1
        for (key, t), want in expected.items():
            assert index.search(key, T(t)) == want

    def test_children_tile_parent_rectangles(self, index):
        for i in range(500):
            index.insert(history_rect(i * 10, (i + 1) * 10), 1000 + i)
        for node in index.all_nodes():
            for entry in node.entries:
                if not entry.child_is_leaf:
                    child = index._node(entry.child_pid)
                    assert entry.rect == child.rect

    def test_non_leaf_entries_contained_in_node_rect(self, index):
        for i in range(500):
            index.insert(history_rect(i * 10, (i + 1) * 10), 1000 + i)
        for node in index.all_nodes():
            for entry in node.entries:
                if entry.child_is_leaf:
                    # Leaf rects may be replicated across a split boundary,
                    # so they only need to overlap the node's rectangle.
                    assert node.rect.overlaps(entry.rect)


class TestPropertyBased:
    @settings(max_examples=10, deadline=None)
    @given(
        slices=st.integers(20, 150),
        probes=st.lists(st.integers(0, 149), min_size=5, max_size=30),
    )
    def test_search_agrees_with_linear_scan(self, slices, probes):
        buffer = BufferPool(InMemoryDisk(), capacity=512)
        index = TSBHistoryIndex(buffer, table_id=1)
        rects = []
        for i in range(slices):
            rect = history_rect(i * 10, (i + 1) * 10)
            rects.append((rect, 2000 + i))
            index.insert(rect, 2000 + i)
        for p in probes:
            t = T(p * 10 + 3)
            want = next(
                (pid for rect, pid in rects if rect.contains_point(b"k", t)),
                None,
            )
            assert index.search(b"k", t) == want
